#include "core/evidence.h"

#include <sstream>

namespace p2prep::core {

std::string RingEvidence::to_string() const {
  std::ostringstream os;
  os << "ring(";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) os << ", ";
    os << members[i];
  }
  os << ") N_in=" << internal_ratings
     << " a_in=" << internal_positive_fraction
     << " minN=" << min_internal_frequency << " N_out=" << outside_ratings
     << " b_out=" << outside_positive_fraction;
  return os.str();
}

std::string PairEvidence::to_string() const {
  std::ostringstream os;
  os << "pair(" << first << ", " << second << ")"
     << " N(i,j)=" << ratings_to_first << " a_i=" << positive_fraction_first
     << " b_i=" << complement_fraction_first
     << " N(j,i)=" << ratings_to_second
     << " a_j=" << positive_fraction_second
     << " b_j=" << complement_fraction_second << " R_i=" << global_rep_first
     << " R_j=" << global_rep_second;
  return os.str();
}

}  // namespace p2prep::core
