#include "core/evidence.h"

#include <sstream>

namespace p2prep::core {

std::string PairEvidence::to_string() const {
  std::ostringstream os;
  os << "pair(" << first << ", " << second << ")"
     << " N(i,j)=" << ratings_to_first << " a_i=" << positive_fraction_first
     << " b_i=" << complement_fraction_first
     << " N(j,i)=" << ratings_to_second
     << " a_j=" << positive_fraction_second
     << " b_j=" << complement_fraction_second << " R_i=" << global_rep_first
     << " R_j=" << global_rep_second;
  return os.str();
}

}  // namespace p2prep::core
