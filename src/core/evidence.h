// Detection outputs: per-pair evidence records and the report a detection
// pass returns. Evidence carries every quantity the decision used so that
// operators (and tests) can audit why a pair was flagged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "rating/types.h"
#include "util/cost.h"

namespace p2prep::core {

/// Why a pair was flagged: all the paper's quantities, both directions.
struct PairEvidence {
  rating::NodeId first = rating::kInvalidNode;   ///< n_i (lower id).
  rating::NodeId second = rating::kInvalidNode;  ///< n_j (higher id).

  // Direction j -> i (ratings received by `first` from `second`).
  std::uint32_t ratings_to_first = 0;    ///< N_(i,j).
  double positive_fraction_first = 0.0;  ///< a for n_i.
  double complement_fraction_first = 0.0; ///< b for n_i (others' positives).

  // Direction i -> j.
  std::uint32_t ratings_to_second = 0;
  double positive_fraction_second = 0.0;
  double complement_fraction_second = 0.0;

  double global_rep_first = 0.0;
  double global_rep_second = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Why a ring was flagged: a cycle of 3+ nodes each boosting the next
/// (detect::RingDetector). Pairwise predicates C2-C4 are structurally
/// blind to this shape — no single partner dominates a member's row — so
/// the evidence is per-ring, not per-pair: the internal quantities
/// aggregate over the boost edges of the cycle, the outside quantities
/// over everything the members received from non-members (joint C2).
struct RingEvidence {
  std::vector<rating::NodeId> members;  ///< Ascending; >= ring_size_min.

  std::uint64_t internal_ratings = 0;        ///< Sum N over boost edges.
  double internal_positive_fraction = 0.0;   ///< a over the boost edges.
  std::uint32_t min_internal_frequency = 0;  ///< Weakest edge's N (peel bound).

  std::uint64_t outside_ratings = 0;       ///< N members got from non-members.
  double outside_positive_fraction = 0.0;  ///< b over those ratings (C2).

  [[nodiscard]] bool contains(rating::NodeId id) const {
    return std::binary_search(members.begin(), members.end(), id);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Canonical unordered-pair key for dedup/set membership.
[[nodiscard]] constexpr std::uint64_t pair_key(rating::NodeId a,
                                               rating::NodeId b) noexcept {
  const auto lo = a < b ? a : b;
  const auto hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

struct DetectionReport {
  std::vector<PairEvidence> pairs;
  std::vector<RingEvidence> rings;  ///< Empty for pairwise detectors.
  util::CostCounter cost;

  [[nodiscard]] bool contains(rating::NodeId a, rating::NodeId b) const {
    return std::any_of(pairs.begin(), pairs.end(), [&](const PairEvidence& e) {
      return pair_key(e.first, e.second) == pair_key(a, b);
    });
  }

  /// All distinct nodes implicated — pair members and ring members alike —
  /// ascending. Suppression and the colluder-query RPC consume this, so a
  /// ring member is quarantined exactly like a flagged pair.
  [[nodiscard]] std::vector<rating::NodeId> colluders() const {
    std::vector<rating::NodeId> out;
    out.reserve(pairs.size() * 2);
    for (const auto& e : pairs) {
      out.push_back(e.first);
      out.push_back(e.second);
    }
    for (const auto& r : rings) {
      out.insert(out.end(), r.members.begin(), r.members.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Sorts pairs by (first, second) and rings by member list for
  /// deterministic output regardless of detection order (serial vs.
  /// parallel sweeps).
  void canonicalize() {
    for (auto& e : pairs) {
      if (e.first > e.second) {
        std::swap(e.first, e.second);
        std::swap(e.ratings_to_first, e.ratings_to_second);
        std::swap(e.positive_fraction_first, e.positive_fraction_second);
        std::swap(e.complement_fraction_first, e.complement_fraction_second);
        std::swap(e.global_rep_first, e.global_rep_second);
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const PairEvidence& x, const PairEvidence& y) {
                return pair_key(x.first, x.second) <
                       pair_key(y.first, y.second);
              });
    pairs.erase(std::unique(pairs.begin(), pairs.end(),
                            [](const PairEvidence& x, const PairEvidence& y) {
                              return pair_key(x.first, x.second) ==
                                     pair_key(y.first, y.second);
                            }),
                pairs.end());
    for (auto& r : rings) std::sort(r.members.begin(), r.members.end());
    std::sort(rings.begin(), rings.end(),
              [](const RingEvidence& x, const RingEvidence& y) {
                return x.members < y.members;
              });
    rings.erase(std::unique(rings.begin(), rings.end(),
                            [](const RingEvidence& x, const RingEvidence& y) {
                              return x.members == y.members;
                            }),
                rings.end());
  }
};

}  // namespace p2prep::core
