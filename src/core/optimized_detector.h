// The Optimized collusion detection method, paper Sec. IV-C.
//
// Replaces the Basic method's O(n) complement row scan with the closed-form
// Formula (2) bound: for a high-reputed node n_i and a frequent rater n_j,
// the pair is suspicious when the node's summation reputation over the
// window falls inside
//
//   [ 2 T_a N_(i,j) - N_i ,  2 T_b (N_i - N_(i,j)) + 2 N_(i,j) - N_i ]
//
// which needs only R_i, N_i and N_(i,j) — values the manager already holds.
// The symmetric condition is then checked for n_j, and the pair is flagged
// when both hold. Complexity O(m n) (Proposition 4.2).
//
// Two complement modes (DetectorConfig::joint_complement):
//  * true (default) — the joint-complement generalization: C3 from the
//    pair cell's positive count and C2 from the row's incrementally-
//    maintained frequent-rater aggregate, both O(1) per pair. Evaluates
//    exactly the same predicate as the Basic method in the same mode, so
//    the two methods flag identical pairs by construction.
//  * false — the paper-literal Formula (2) bound above. That bound
//    describes a superset of the (a, b) region the paper-literal Basic
//    predicate accepts (any a >= T_a, b < T_b point satisfies it, but
//    boundary mixtures with a < T_a compensated by larger b can also fall
//    inside): Optimized never misses a pair Basic finds (tested), and on
//    collusion workloads the two flag identical pairs.
//
// Neutral (0) ratings: Formula (1) is derived for +/-1 ratings. Neutrals
// inflate N_i without moving R_i, which widens the admitted interval; the
// P2P simulation model emits only +/-1 ratings, and the trace layer maps
// marketplace scores to +/-1 before detection, so the bound is exact where
// it is used.
#pragma once

#include "core/detector.h"
#include "util/thread_pool.h"

namespace p2prep::core {

class OptimizedCollusionDetector final : public CollusionDetector {
 public:
  explicit OptimizedCollusionDetector(DetectorConfig config,
                                      util::ThreadPool* pool = nullptr)
      : CollusionDetector(config), pool_(pool) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Optimized";
  }

  [[nodiscard]] DetectionReport detect(
      const rating::RatingMatrix& matrix) const override;

 private:
  /// One-directional Formula (2) check for ratee i against rater j.
  bool directional_check(const rating::RatingMatrix& matrix,
                         rating::NodeId i, rating::NodeId j,
                         util::CostCounter& cost) const;

  void detect_rows(const rating::RatingMatrix& matrix, std::size_t row_begin,
                   std::size_t row_end, DetectionReport& out) const;

  util::ThreadPool* pool_;
};

}  // namespace p2prep::core
