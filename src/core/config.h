// Detection thresholds (paper Table I discussion and Sec. IV-B).
//
//  T_a — minimum fraction of positive ratings from the suspected partner
//        (C3; the crawled suspicious pairs averaged a = 98.37%).
//  T_b — maximum fraction of positive ratings from everyone else
//        (C2; the crawl averaged b = 1.63%).
//  T_N — minimum number of ratings from one rater within the update window
//        T to count as "frequent" (C4; the trace gives 20/year).
//  T_R — global-reputation threshold above which a node is high-reputed
//        (C1; the paper's simulations use 0.05 on normalized reputations).
//
// Lowering T_a / raising T_b reduces false negatives; the opposite reduces
// false positives (paper Sec. IV-B).
#pragma once

#include <cstdint>

namespace p2prep::core {

struct DetectorConfig {
  double positive_fraction_min = 0.80;   ///< T_a.
  double complement_fraction_max = 0.20; ///< T_b.
  std::uint32_t frequency_min = 20;      ///< T_N.
  double high_rep_threshold = 0.05;      ///< T_R.

  /// Treat a pair as suspicious when nobody besides the partner rated the
  /// node (N_(i,-j) = 0). The Optimized method's Formula (2) implies this
  /// (the b-term vanishes), so keeping it on preserves Basic == Optimized
  /// on such inputs; it is also the purest collusion signature.
  bool empty_complement_is_suspicious = true;

  /// Require the collusion evidence in BOTH directions before flagging a
  /// pair (the paper's method: n_i's side, then the same process from
  /// n_j's line). Mutuality is what keeps honest client->server rating
  /// relationships out, but a Sybil-style one-directional boost (a
  /// throwaway identity that rates the beneficiary and is never rated
  /// back, never earning reputation itself) evades it by construction.
  /// Setting this to false flags a pair on one side's evidence alone —
  /// catching one-way boosts at the price of implicating the boosting
  /// identity of any node whose only fans are that devoted
  /// (bench_ablation_sybil quantifies the trade).
  bool require_mutual = true;

  /// Exclude ALL frequent raters (every k with N_(i,k) >= T_N) from the
  /// complement b, not just the partner j under test. With a single
  /// frequent rater this is exactly the paper's predicate / Formula (2);
  /// with several (a colluder boosted by two partners, e.g. its pair
  /// partner plus a compromised pretrusted node, Fig. 7/11) the paper's
  /// j-only complement is contaminated by the other partner's positives
  /// and the pair escapes detection. The Basic method pays nothing extra
  /// (the row scan tests each cell against T_N as it passes); the
  /// Optimized method uses the frequent-rater aggregate the manager
  /// maintains incrementally (RatingMatrix row metadata), staying O(1)
  /// per pair. Set to false for the paper-literal predicate.
  bool joint_complement = true;

  /// After the pairwise pass, flag nodes in a mutual frequent
  /// mostly-positive rating relationship with an already-flagged colluder
  /// (fixpoint). Needed to catch compromised pretrusted nodes, whose good
  /// service erases the C2 evidence (paper Fig. 11; see core/accomplice.h).
  bool flag_accomplices = true;

  // --- Ring detection (detect::RingDetector; ignored by the pairwise
  // detectors) ---

  /// Smallest strongly-connected boost cycle reported as a ring. 3 by
  /// construction: 2-cycles are exactly the pairwise detectors' domain,
  /// so excluding them keeps ring reports disjoint from pair reports and
  /// pair-only traces free of ring flags.
  std::uint32_t ring_size_min = 3;

  /// Minimum per-edge rating count for a boost edge to survive the ring
  /// peel. 0 (the default) means "use frequency_min" — the paper's T_N —
  /// so the effective internal threshold is
  /// max(frequency_min, ring_internal_frequency_min).
  std::uint32_t ring_internal_frequency_min = 0;

  /// Gate each candidate ring on the joint complement (C2): the fraction
  /// of positive ratings its members received from NON-members must stay
  /// <= complement_fraction_max. Mirrors the group detector's
  /// component-level C2 and keeps organically popular cliques out.
  bool ring_outside_check = true;

  /// Use inclusive bounds in Formula (2) (upper >= R >= lower). The paper
  /// states strict inequalities, but at the boundary a = 1, N_i = N_(i,j)
  /// (partner-only, all-positive ratings) the strict upper bound
  /// degenerates and misses the most blatant colluders; inclusive bounds
  /// avoid that while admitting only the measure-zero boundary.
  bool inclusive_bounds = true;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return positive_fraction_min > 0.0 && positive_fraction_min <= 1.0 &&
           complement_fraction_max >= 0.0 && complement_fraction_max < 1.0 &&
           frequency_min > 0;
  }
};

}  // namespace p2prep::core
