// CollusionDetector: the common interface of the paper's two methods.
// A detector consumes one snapshot of the manager's RatingMatrix (window
// aggregates + global reputations) and returns the flagged pairs plus the
// operation cost it incurred (the Figure 13 metric).
#pragma once

#include <string_view>

#include "core/config.h"
#include "core/evidence.h"
#include "rating/matrix.h"

namespace p2prep::core {

class CollusionDetector {
 public:
  explicit CollusionDetector(DetectorConfig config) : config_(config) {}
  virtual ~CollusionDetector() = default;

  CollusionDetector(const CollusionDetector&) = delete;
  CollusionDetector& operator=(const CollusionDetector&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Runs one detection pass. Deterministic: the returned report is
  /// canonicalized (pairs sorted, lower id first).
  [[nodiscard]] virtual DetectionReport detect(
      const rating::RatingMatrix& matrix) const = 0;

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }

 protected:
  DetectorConfig config_;
};

}  // namespace p2prep::core
