#include "core/optimized_detector.h"

#include "core/accomplice.h"
#include "core/formula.h"
#include "core/predicates.h"
#include "util/mutex.h"

namespace p2prep::core {

bool OptimizedCollusionDetector::directional_check(
    const rating::RatingMatrix& matrix, rating::NodeId i, rating::NodeId j,
    util::CostCounter& cost) const {
  const rating::PairStats& from_j = matrix.cell(i, j);
  cost.add_scan();  // read the a_ij cell <ID_i, R_i, N_(i,j), N+_(i,j)>

  cost.add_check();
  if (from_j.total < config_.frequency_min) return false;  // C4

  if (!config_.joint_complement) {
    // Paper-literal Formula (2) on the window summation reputation: only
    // R_i, N_i and N_(i,j) are consulted.
    const auto r_i = static_cast<double>(matrix.window_reputation(i));
    const std::uint64_t n_i = matrix.totals(i).total;
    cost.add_check();
    return formula2_satisfied(r_i, config_.positive_fraction_min,
                              config_.complement_fraction_max, n_i,
                              from_j.total, config_.inclusive_bounds);
  }

  // Joint-complement generalization (DetectorConfig::joint_complement):
  // C3 from the cell's own positive count, C2 from the row's
  // incrementally-maintained frequent-rater aggregate — still O(1) per
  // pair, no row scan. Reduces to Formula (2)'s accept region when the
  // pair partner is the row's only frequent rater.
  cost.add_check();
  if (!positive_fraction_ok(from_j, config_)) return false;

  rating::PairStats frequent;
  if (matrix.frequency_threshold() == config_.frequency_min) {
    frequent = matrix.frequent_totals(i);
    cost.add_scan();  // one aggregate read
  } else {
    // The matrix snapshot was built without (or with a different)
    // frequency threshold: recompute the aggregate from the row. A
    // deployed manager never takes this path; it exists so standalone
    // matrices remain usable, and it charges its true cost — the row's
    // storage size (n dense, row nnz sparse), via the backend-agnostic
    // cell visitor.
    matrix.for_each_cell(
        i, [&](rating::NodeId k, const rating::PairStats& stats) {
          if (k == i) return;
          cost.add_scan();
          if (stats.total >= config_.frequency_min) frequent += stats;
        });
  }
  const rating::PairStats complement = matrix.totals(i) - frequent;
  cost.add_check();
  return complement_ok(complement, config_);
}

void OptimizedCollusionDetector::detect_rows(const rating::RatingMatrix& matrix,
                                             std::size_t row_begin,
                                             std::size_t row_end,
                                             DetectionReport& out) const {
  const std::size_t n = matrix.size();
  for (std::size_t row = row_begin; row < row_end; ++row) {
    const auto i = static_cast<rating::NodeId>(row);
    out.cost.add_check();
    if (!matrix.high_reputed(i)) continue;  // C1

    for (rating::NodeId j = 0; j < n; ++j) {
      if (j == i) continue;

      if (!directional_check(matrix, i, j, out.cost)) continue;

      // Symmetric side: n_j must be high-reputed, rated frequently by n_i,
      // and satisfy Formula (2) as well (skipped in one-sided mode).
      if (config_.require_mutual) {
        out.cost.add_check();
        if (!matrix.high_reputed(j)) continue;
        if (!directional_check(matrix, j, i, out.cost)) continue;
      }

      PairEvidence ev;
      ev.first = i;
      ev.second = j;
      ev.ratings_to_first = matrix.cell(i, j).total;
      ev.ratings_to_second = matrix.cell(j, i).total;
      ev.positive_fraction_first = matrix.cell(i, j).positive_fraction();
      ev.positive_fraction_second = matrix.cell(j, i).positive_fraction();
      // Evidence-only fields (not part of the method's cost): complement
      // fractions derived from the row totals the matrix carries.
      const auto comp_i = matrix.totals(i) - matrix.cell(i, j);
      const auto comp_j = matrix.totals(j) - matrix.cell(j, i);
      ev.complement_fraction_first = comp_i.positive_fraction();
      ev.complement_fraction_second = comp_j.positive_fraction();
      ev.global_rep_first = matrix.global_reputation(i);
      ev.global_rep_second = matrix.global_reputation(j);
      out.pairs.push_back(ev);
    }
  }
}

DetectionReport OptimizedCollusionDetector::detect(
    const rating::RatingMatrix& matrix) const {
  const std::size_t n = matrix.size();
  DetectionReport report;

  if (pool_ == nullptr || n < 64) {
    detect_rows(matrix, 0, n, report);
  } else {
    util::Mutex mu;
    pool_->parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
      DetectionReport local;
      detect_rows(matrix, lo, hi, local);
      const util::MutexLock lock(mu);
      report.cost += local.cost;
      report.pairs.insert(report.pairs.end(), local.pairs.begin(),
                          local.pairs.end());
    });
  }

  report.canonicalize();
  propagate_accomplices(matrix, config_, report);
  return report;
}

}  // namespace p2prep::core
