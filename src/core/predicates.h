// The C1-C5 threshold predicates as small pure functions over PairStats.
// Both detectors and both manager deployments (centralized / DHT) funnel
// through these, so the centralized and decentralized protocols flag
// exactly the same pairs on the same data.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/formula.h"
#include "rating/pair_stats.h"

namespace p2prep::core {

/// C4: rater j rated node i at least T_N times within the window.
[[nodiscard]] constexpr bool frequency_ok(const rating::PairStats& pair,
                                          const DetectorConfig& cfg) noexcept {
  return pair.total >= cfg.frequency_min;
}

/// C3: fraction of positive ratings from the partner is at least T_a.
[[nodiscard]] constexpr bool positive_fraction_ok(
    const rating::PairStats& pair, const DetectorConfig& cfg) noexcept {
  return pair.total > 0 &&
         pair.positive_fraction() >= cfg.positive_fraction_min;
}

/// C2: fraction of positive ratings from everyone else is below T_b.
/// `complement` is N_(i,-j) (totals minus the partner's contribution).
[[nodiscard]] constexpr bool complement_ok(const rating::PairStats& complement,
                                           const DetectorConfig& cfg) noexcept {
  if (complement.total == 0) return cfg.empty_complement_is_suspicious;
  return complement.positive_fraction() < cfg.complement_fraction_max;
}

/// The Basic method's full one-directional predicate (C4 && C3 && C2) for
/// ratee i against rater j, given the pair cell and the complement row sum.
[[nodiscard]] constexpr bool basic_directional(
    const rating::PairStats& pair, const rating::PairStats& complement,
    const DetectorConfig& cfg) noexcept {
  return frequency_ok(pair, cfg) && positive_fraction_ok(pair, cfg) &&
         complement_ok(complement, cfg);
}

/// The Optimized method's one-directional predicate: C4 plus Formula (2)
/// evaluated on the window summation reputation r_i and totals n_i.
[[nodiscard]] constexpr bool optimized_directional(
    const rating::PairStats& pair, std::uint64_t n_i, std::int64_t r_i,
    const DetectorConfig& cfg) noexcept {
  return frequency_ok(pair, cfg) &&
         formula2_satisfied(static_cast<double>(r_i),
                            cfg.positive_fraction_min,
                            cfg.complement_fraction_max, n_i, pair.total,
                            cfg.inclusive_bounds);
}

}  // namespace p2prep::core
