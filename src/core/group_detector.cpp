#include "core/group_detector.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/predicates.h"

namespace p2prep::core {

bool CollusionGroup::contains(rating::NodeId id) const {
  return std::binary_search(members.begin(), members.end(), id);
}

std::string CollusionGroup::to_string() const {
  std::ostringstream os;
  os << "group{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) os << ", ";
    os << members[i];
  }
  os << "} edges=" << edges.size() << " inside=" << inside_ratings
     << " outside=" << outside_ratings
     << " outside_pos=" << outside_positive_fraction;
  return os.str();
}

std::vector<rating::NodeId> GroupDetectionReport::colluders() const {
  std::vector<rating::NodeId> out;
  for (const CollusionGroup& g : groups)
    out.insert(out.end(), g.members.begin(), g.members.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const CollusionGroup* GroupDetectionReport::group_of(rating::NodeId id) const {
  for (const CollusionGroup& g : groups) {
    if (g.contains(id)) return &g;
  }
  return nullptr;
}

GroupDetectionReport GroupCollusionDetector::detect(
    const rating::RatingMatrix& matrix) const {
  GroupDetectionReport report;
  const std::size_t n = matrix.size();

  // 1. Mutual-boosting edges among high-reputed nodes. All matrix access
  // is point lookups through the backend-agnostic cell() accessor (an
  // absent sparse cell reads as the empty aggregate), so the pass — and
  // the component C2 sums below — is bit-identical across backends.
  auto boosts = [&](rating::NodeId target, rating::NodeId by) {
    const rating::PairStats& cell = matrix.cell(target, by);
    report.cost.add_scan();
    report.cost.add_check();
    return frequency_ok(cell, config_) && positive_fraction_ok(cell, config_);
  };

  std::vector<std::pair<rating::NodeId, rating::NodeId>> edges;
  for (rating::NodeId i = 0; i < n; ++i) {
    report.cost.add_check();
    if (!matrix.high_reputed(i)) continue;
    for (rating::NodeId j = i + 1; j < n; ++j) {
      report.cost.add_check();
      if (!matrix.high_reputed(j)) continue;
      if (boosts(i, j) && boosts(j, i)) edges.emplace_back(i, j);
    }
  }

  // 2. Connected components via union-find.
  std::vector<rating::NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](rating::NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : edges) parent[find(a)] = find(b);

  std::vector<std::vector<rating::NodeId>> components(n);
  for (const auto& [a, b] : edges) {
    // Collect members lazily: every edge endpoint joins its root's bucket.
    components[find(a)].push_back(a);
    components[find(a)].push_back(b);
  }

  // 3. Component-level C2: the outside world's opinion of the collective.
  for (auto& raw_members : components) {
    if (raw_members.empty()) continue;
    std::sort(raw_members.begin(), raw_members.end());
    raw_members.erase(std::unique(raw_members.begin(), raw_members.end()),
                      raw_members.end());
    if (raw_members.size() < 2) continue;

    CollusionGroup group;
    group.members = raw_members;
    for (const auto& [a, b] : edges) {
      if (group.contains(a) && group.contains(b)) group.edges.emplace_back(a, b);
    }

    rating::PairStats outside;
    for (rating::NodeId member : group.members) {
      rating::PairStats inside_for_member;
      for (rating::NodeId other : group.members) {
        if (other == member) continue;
        report.cost.add_scan();
        inside_for_member += matrix.cell(member, other);
      }
      group.inside_ratings += inside_for_member.total;
      outside += matrix.totals(member) - inside_for_member;
      report.cost.add_arith();
    }
    group.outside_ratings = outside.total;
    group.outside_positive_fraction = outside.positive_fraction();

    report.cost.add_check();
    if (!complement_ok(outside, config_)) continue;
    report.groups.push_back(std::move(group));
  }

  std::sort(report.groups.begin(), report.groups.end(),
            [](const CollusionGroup& a, const CollusionGroup& b) {
              return a.members.front() < b.members.front();
            });
  return report;
}

}  // namespace p2prep::core
