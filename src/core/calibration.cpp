#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace p2prep::core {

CalibrationReport calibrate_thresholds(const rating::RatingStore& history,
                                       const CalibrationOptions& options,
                                       const DetectorConfig& base) {
  CalibrationReport report;
  report.suggested = base;

  struct PairSample {
    rating::NodeId ratee;
    rating::NodeId rater;
    rating::PairStats stats;
  };
  std::vector<PairSample> pairs;
  rating::PairStats global;
  for (rating::NodeId ratee = 0; ratee < history.num_nodes(); ++ratee) {
    history.for_each_window_rater(
        ratee, [&](rating::NodeId rater, const rating::PairStats& stats) {
          pairs.push_back({ratee, rater, stats});
          global += stats;
        });
  }
  report.rated_pairs = pairs.size();
  if (pairs.empty()) return report;

  report.global_positive_fraction = global.positive_fraction();

  // --- T_N: upper-tail quantile of the pair-frequency distribution ---
  std::vector<std::uint32_t> counts;
  counts.reserve(pairs.size());
  double sum = 0.0;
  for (const PairSample& p : pairs) {
    counts.push_back(p.stats.total);
    sum += p.stats.total;
  }
  std::sort(counts.begin(), counts.end());
  report.mean_pair_count = sum / static_cast<double>(counts.size());
  report.max_pair_count = static_cast<double>(counts.back());
  const auto cut_index = static_cast<std::size_t>(
      (1.0 - options.frequent_pair_fraction) *
      static_cast<double>(counts.size() - 1));
  std::uint32_t t_n = std::max(options.min_frequency, counts[cut_index] + 1);
  report.suggested.frequency_min = t_n;

  // --- Population statistics of the frequent pairs ---
  double a_sum = 0.0;
  double b_sum = 0.0;
  std::size_t frequent = 0;
  for (const PairSample& p : pairs) {
    if (p.stats.total < t_n) continue;
    ++frequent;
    a_sum += p.stats.positive_fraction();
    const rating::PairStats complement =
        history.window_totals(p.ratee) - p.stats;
    b_sum += complement.positive_fraction();
  }
  report.frequent_pairs = frequent;
  if (frequent == 0) {
    // No frequent pairs at all: keep the base thresholds; T_N above the
    // observed maximum so nothing triggers until behaviour changes.
    report.suggested.frequency_min =
        static_cast<std::uint32_t>(report.max_pair_count) + 1;
    return report;
  }
  report.frequent_positive_fraction = a_sum / static_cast<double>(frequent);
  report.frequent_complement_fraction = b_sum / static_cast<double>(frequent);

  // --- T_a / T_b: midpoints between populations (paper Sec. IV-B) ---
  const double t_a = 0.5 * (report.frequent_positive_fraction +
                            report.global_positive_fraction);
  const double t_b = 0.5 * (report.frequent_complement_fraction +
                            report.global_positive_fraction);
  report.suggested.positive_fraction_min = std::clamp(t_a, 0.05, 1.0);
  report.suggested.complement_fraction_max = std::clamp(t_b, 0.0, 0.99);
  return report;
}

}  // namespace p2prep::core
