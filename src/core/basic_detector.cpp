#include "core/basic_detector.h"

#include <cassert>
#include <vector>

#include "core/accomplice.h"
#include "util/mutex.h"

namespace p2prep::core {

BasicCollusionDetector::RowScanResult
BasicCollusionDetector::scan_row_excluding(const rating::RatingMatrix& matrix,
                                           rating::NodeId ratee,
                                           rating::NodeId excluded,
                                           util::CostCounter& cost) const {
  RowScanResult r;
  // Backend-agnostic row scan: visits every stored cell, so the cost is
  // the row's storage size — n on the dense oracle (the paper's full-row
  // scan this method is defined by), row nnz on the sparse backend. The
  // sums are identical either way (absent cells contribute zero).
  matrix.for_each_cell(
      ratee, [&](rating::NodeId k, const rating::PairStats& stats) {
        if (k == ratee || k == excluded) return;
        cost.add_scan();
        // Joint-complement mode: other frequent raters are suspected
        // partners themselves and must not pollute the "everyone else"
        // sample.
        if (config_.joint_complement && stats.total >= config_.frequency_min)
          return;
        r.complement_total += stats.total;
        r.complement_positive += stats.positive;
      });
#ifndef NDEBUG
  if (!config_.joint_complement) {
    const auto expected = matrix.totals(ratee) - matrix.cell(ratee, excluded);
    assert(r.complement_total == expected.total);
    assert(r.complement_positive == expected.positive);
  } else if (matrix.frequency_threshold() == config_.frequency_min) {
    // The incremental aggregate and the scan must agree, modulo the
    // excluded column when it is itself below the threshold.
    auto expected = matrix.totals(ratee) - matrix.frequent_totals(ratee);
    const auto& excluded_cell = matrix.cell(ratee, excluded);
    if (excluded_cell.total < config_.frequency_min)
      expected -= excluded_cell;
    assert(r.complement_total == expected.total);
    assert(r.complement_positive == expected.positive);
  }
#endif
  return r;
}

bool BasicCollusionDetector::directional_check(
    const rating::RatingMatrix& matrix, rating::NodeId i, rating::NodeId j,
    double& positive_fraction, double& complement_fraction,
    util::CostCounter& cost) const {
  const rating::PairStats& from_j = matrix.cell(i, j);
  cost.add_scan();  // read a_ij

  // C2 evidence: the per-pair complement sums N_(i,-j) and N+_(i,-j). The
  // paper's method computes these by scanning the whole row of n_i per
  // examined pair — the O(n) inner step that makes Proposition 4.1's
  // O(m n^2) bound tight and dominates the Unoptimized curve in Fig. 13.
  // The scan runs before the cheap C4/C3 gates, matching the per-pair
  // element count the proposition charges; the flagged set is unaffected
  // (the predicate is a pure conjunction).
  const RowScanResult scan = scan_row_excluding(matrix, i, j, cost);

  // C4: n_j rates n_i frequently within the window.
  cost.add_check();
  if (from_j.total < config_.frequency_min) return false;

  // C3: a large portion of n_j's ratings for n_i are positive.
  positive_fraction = from_j.positive_fraction();
  cost.add_check();
  if (positive_fraction < config_.positive_fraction_min) return false;

  // C2: a large portion of everyone else's ratings are negative.
  cost.add_check();
  if (scan.complement_total == 0) {
    complement_fraction = 0.0;
    return config_.empty_complement_is_suspicious;
  }
  complement_fraction = static_cast<double>(scan.complement_positive) /
                        static_cast<double>(scan.complement_total);
  return complement_fraction < config_.complement_fraction_max;
}

void BasicCollusionDetector::detect_rows(const rating::RatingMatrix& matrix,
                                         std::size_t row_begin,
                                         std::size_t row_end,
                                         std::vector<std::uint8_t>* marks,
                                         DetectionReport& out) const {
  const std::size_t n = matrix.size();
  auto marked = [&](rating::NodeId a, rating::NodeId b) {
    return marks != nullptr && (*marks)[a * n + b] != 0;
  };
  auto mark = [&](rating::NodeId a, rating::NodeId b) {
    if (marks != nullptr) {
      (*marks)[a * n + b] = 1;
      (*marks)[b * n + a] = 1;
    }
  };

  for (std::size_t row = row_begin; row < row_end; ++row) {
    const auto i = static_cast<rating::NodeId>(row);
    // C1: only high-reputed rows are live in the manager's matrix.
    out.cost.add_check();
    if (!matrix.high_reputed(i)) continue;

    for (rating::NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      if (marked(i, j)) continue;

      // The partner must itself be high-reputed (C1) before any deep work
      // — except in one-sided mode, where a Sybil booster never earns
      // reputation and must not be exempted by its own obscurity.
      // Reading R_j is an element access like the Optimized method's
      // N_(i,j) read, so both methods charge the same per-cell base cost.
      out.cost.add_scan();
      out.cost.add_check();
      if (config_.require_mutual && !matrix.high_reputed(j)) continue;

      PairEvidence ev;
      ev.first = i;
      ev.second = j;
      ev.ratings_to_first = matrix.cell(i, j).total;
      ev.ratings_to_second = matrix.cell(j, i).total;
      ev.global_rep_first = matrix.global_reputation(i);
      ev.global_rep_second = matrix.global_reputation(j);

      const bool i_side =
          directional_check(matrix, i, j, ev.positive_fraction_first,
                            ev.complement_fraction_first, out.cost);
      // "After an a_ij is checked, the manager marks a_ij and a_ji": the
      // pair predicate is a symmetric conjunction, so an early failure
      // from one side settles the pair from both.
      mark(i, j);
      if (!i_side) continue;

      // n_i's high reputation is mainly caused by n_j's deviating ratings;
      // repeat the same process from n_j's line (unless one-sided mode).
      if (config_.require_mutual) {
        const bool j_side =
            directional_check(matrix, j, i, ev.positive_fraction_second,
                              ev.complement_fraction_second, out.cost);
        if (!j_side) continue;
      }

      out.pairs.push_back(ev);
    }
  }
}

DetectionReport BasicCollusionDetector::detect(
    const rating::RatingMatrix& matrix) const {
  const std::size_t n = matrix.size();
  DetectionReport report;

  if (pool_ == nullptr || n < 64) {
    std::vector<std::uint8_t> marks(n * n, 0);
    detect_rows(matrix, 0, n, &marks, report);
  } else {
    // Parallel sweep: workers own disjoint row ranges and local reports.
    // Pair marks are not shared across workers (a pair spanning two ranges
    // may be examined twice); duplicates are removed by canonicalize().
    util::Mutex mu;
    pool_->parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
      DetectionReport local;
      detect_rows(matrix, lo, hi, nullptr, local);
      const util::MutexLock lock(mu);
      report.cost += local.cost;
      report.pairs.insert(report.pairs.end(), local.pairs.begin(),
                          local.pairs.end());
    });
  }

  report.canonicalize();
  propagate_accomplices(matrix, config_, report);
  return report;
}

}  // namespace p2prep::core
