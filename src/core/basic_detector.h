// The Basic ("Unoptimized") collusion detection method, paper Sec. IV-B.
//
// The manager scans the rating matrix top-down, row by row. For each
// high-reputed node n_i (C1) it examines every rater n_j: if n_j is also
// high-reputed and rates n_i frequently (C4, N_(i,j) >= T_N) and mostly
// positively (C3, a >= T_a), the manager scans the whole row of n_i
// *excluding* n_j to compute the complement fraction b; if b < T_b (C2) it
// repeats the entire check from n_j's side, and flags the pair when both
// directions hold. Checked pairs are marked (a_ij and a_ji) so they are not
// re-examined within the pass.
//
// The complement row scan is deliberately performed element-by-element even
// though this implementation's matrix happens to carry row totals: the
// paper's manager stores only <ID_i, R_i, N_(i,j), N+_(i,j)> per cell, and
// that scan is precisely the O(n) inner cost that makes the method
// O(m n^2) (Proposition 4.1) and that the Optimized method removes. A debug
// assertion cross-checks the scanned sums against the row totals.
//
// An optional thread pool parallelizes the outer row sweep; flagged pairs
// are identical to the serial pass (the report is canonicalized), but the
// charged cost can differ slightly because cross-row pair marks are not
// shared between workers.
#pragma once

#include "core/detector.h"
#include "util/thread_pool.h"

namespace p2prep::core {

class BasicCollusionDetector final : public CollusionDetector {
 public:
  explicit BasicCollusionDetector(DetectorConfig config,
                                  util::ThreadPool* pool = nullptr)
      : CollusionDetector(config), pool_(pool) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Unoptimized";
  }

  [[nodiscard]] DetectionReport detect(
      const rating::RatingMatrix& matrix) const override;

 private:
  struct RowScanResult {
    std::uint64_t complement_total = 0;
    std::uint64_t complement_positive = 0;
  };

  /// Scans row `ratee` excluding column `excluded`, charging one element
  /// scan per cell visited. In joint-complement mode every frequent rater
  /// (cell total >= T_N) is excluded as well (DetectorConfig docs).
  RowScanResult scan_row_excluding(const rating::RatingMatrix& matrix,
                                   rating::NodeId ratee,
                                   rating::NodeId excluded,
                                   util::CostCounter& cost) const;

  /// One-directional deep check: does n_i's high reputation look like it is
  /// mainly caused by n_j's frequent deviating ratings? Fills the
  /// corresponding evidence fields on success.
  bool directional_check(const rating::RatingMatrix& matrix,
                         rating::NodeId i, rating::NodeId j,
                         double& positive_fraction, double& complement_fraction,
                         util::CostCounter& cost) const;

  /// Detection pass over rows [row_begin, row_end).
  void detect_rows(const rating::RatingMatrix& matrix, std::size_t row_begin,
                   std::size_t row_end, std::vector<std::uint8_t>* marks,
                   DetectionReport& out) const;

  util::ThreadPool* pool_;
};

}  // namespace p2prep::core
