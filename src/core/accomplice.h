// Accomplice propagation (reproduction note, see DESIGN.md §5 and the
// Fig. 11 entry in EXPERIMENTS.md).
//
// The paper claims its methods "can detect colluders even when they
// compromise pretrusted high-reputed nodes" (Fig. 11: compromised
// pretrusted nodes n1/n2 end with reputation 0). A compromised pretrusted
// node, however, cannot satisfy the C2 complement condition: it serves
// authentic files, everyone else rates it positively, so b ≈ 1 for any
// pair it appears in. The pairwise predicate alone therefore never flags
// it — detection of such nodes requires using the verdicts already made.
//
// This pass implements that as a fixpoint: once a node d is flagged, any
// node k in a *mutual frequent mostly-positive* rating relationship with d
// (N_(d,k) >= T_N with a >= T_a, and symmetrically N_(k,d) >= T_N with
// a >= T_a) is flagged as d's accomplice, and propagation continues from
// k. Mutual high-frequency positive rating with a confirmed colluder is
// precisely the collusion signature (C3 + C4) minus the C2 evidence the
// compromised node's good service erases. Normal client->server rating
// edges are one-directional in the paper's model, so honest relationships
// cannot satisfy the mutual-frequency requirement.
#pragma once

#include "core/config.h"
#include "core/evidence.h"
#include "rating/matrix.h"

namespace p2prep::core {

/// Extends `report` (in place) with accomplice pairs reachable from its
/// currently flagged nodes. Charges scans/checks to report.cost. Does
/// nothing when `config.flag_accomplices` is false or no pairs are flagged.
void propagate_accomplices(const rating::RatingMatrix& matrix,
                           const DetectorConfig& config,
                           DetectionReport& report);

}  // namespace p2prep::core
