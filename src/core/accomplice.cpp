#include "core/accomplice.h"

#include <unordered_set>
#include <vector>

#include "core/predicates.h"

namespace p2prep::core {

void propagate_accomplices(const rating::RatingMatrix& matrix,
                           const DetectorConfig& config,
                           DetectionReport& report) {
  if (!config.flag_accomplices ||
      (report.pairs.empty() && report.rings.empty())) {
    return;
  }

  std::unordered_set<std::uint64_t> known_pairs;
  std::vector<rating::NodeId> worklist;
  std::unordered_set<rating::NodeId> queued;
  for (const PairEvidence& e : report.pairs) {
    known_pairs.insert(pair_key(e.first, e.second));
    if (queued.insert(e.first).second) worklist.push_back(e.first);
    if (queued.insert(e.second).second) worklist.push_back(e.second);
  }
  // Ring members seed the fixpoint too: an accomplice of a ring colluder
  // is as culpable as one of a pair colluder.
  for (const RingEvidence& r : report.rings) {
    for (rating::NodeId m : r.members) {
      if (queued.insert(m).second) worklist.push_back(m);
    }
  }

  auto mutual_boosting = [&](rating::NodeId d, rating::NodeId k,
                             const rating::PairStats& from_k) {
    report.cost.add_scan();
    report.cost.add_check();
    if (!frequency_ok(from_k, config) ||
        !positive_fraction_ok(from_k, config)) {
      return false;
    }
    const rating::PairStats& from_d = matrix.cell(k, d);
    report.cost.add_scan();
    report.cost.add_check();
    return frequency_ok(from_d, config) &&
           positive_fraction_ok(from_d, config);
  };

  while (!worklist.empty()) {
    const rating::NodeId d = worklist.back();
    worklist.pop_back();
    // Candidate accomplices are raters of d's row: a node that never rated
    // d cannot be in a mutual frequent relationship with it (C4 needs
    // N_(d,k) >= T_N >= 1). The backend-agnostic visitor walks the stored
    // cells — all n on the dense oracle (the paper's scan), row nnz on the
    // sparse backend — with identical flagging either way.
    matrix.for_each_cell(
        d, [&](rating::NodeId k, const rating::PairStats& from_k) {
          if (k == d || known_pairs.contains(pair_key(d, k))) return;
          if (!mutual_boosting(d, k, from_k)) return;

          PairEvidence ev;
          ev.first = d;
          ev.second = k;
          ev.ratings_to_first = from_k.total;
          ev.ratings_to_second = matrix.cell(k, d).total;
          ev.positive_fraction_first = from_k.positive_fraction();
          ev.positive_fraction_second = matrix.cell(k, d).positive_fraction();
          ev.complement_fraction_first =
              (matrix.totals(d) - from_k).positive_fraction();
          ev.complement_fraction_second =
              (matrix.totals(k) - matrix.cell(k, d)).positive_fraction();
          ev.global_rep_first = matrix.global_reputation(d);
          ev.global_rep_second = matrix.global_reputation(k);
          report.pairs.push_back(ev);
          known_pairs.insert(pair_key(d, k));
          if (queued.insert(k).second) worklist.push_back(k);
        });
  }

  report.canonicalize();
}

}  // namespace p2prep::core
