// Group collusion detection — the paper's stated future work ("we will
// also investigate how to detect a collusion collective having more than
// two nodes such as Sybil attack").
//
// Builds the mutual-boosting graph over high-reputed nodes: an edge joins
// i and j when each rates the other frequently (C4) and almost always
// positively (C3) within the window. Connected components of this graph
// are candidate collectives; a component is flagged when the ratings it
// receives from OUTSIDE itself are mostly negative (C2 lifted from pairs
// to sets). Pairwise collusion appears as 2-node components, so this
// detector strictly generalizes the pairwise methods' accept region while
// also naming the collective structure (rings, stars, chains).
//
// Cost: one pass over the live rows to build edges (O(m n)) plus O(edge)
// component work — the same order as the Optimized method.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "rating/matrix.h"
#include "util/cost.h"

namespace p2prep::core {

struct CollusionGroup {
  /// Members, ascending. Size >= 2.
  std::vector<rating::NodeId> members;
  /// Mutual-boosting edges inside the group (lower id first).
  std::vector<std::pair<rating::NodeId, rating::NodeId>> edges;
  /// Ratings the group received from non-members: positive fraction.
  double outside_positive_fraction = 0.0;
  std::uint64_t outside_ratings = 0;
  /// Ratings exchanged inside the group.
  std::uint64_t inside_ratings = 0;

  [[nodiscard]] bool contains(rating::NodeId id) const;
  [[nodiscard]] std::string to_string() const;
};

struct GroupDetectionReport {
  std::vector<CollusionGroup> groups;
  util::CostCounter cost;

  [[nodiscard]] std::vector<rating::NodeId> colluders() const;
  [[nodiscard]] const CollusionGroup* group_of(rating::NodeId id) const;
};

class GroupCollusionDetector {
 public:
  explicit GroupCollusionDetector(DetectorConfig config) : config_(config) {}

  [[nodiscard]] GroupDetectionReport detect(
      const rating::RatingMatrix& matrix) const;

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  DetectorConfig config_;
};

}  // namespace p2prep::core
