// Formula (1) and Formula (2) of the paper — the closed-form relation
// between a node's summation reputation and the positive-rating fractions
// of one rater versus everyone else, and the detection bound derived from
// it. These are the heart of the Optimized method.
//
// With N_i all ratings for n_i in window T, N_(i,j) of them from n_j,
// a the positive fraction from n_j, b the positive fraction from others,
// and every rating +/-1 (neutrals excluded by the model):
//
//   R_i = 2 b (N_i - N_(i,j)) + 2 a N_(i,j) - N_i                      (1)
//
// For a in (T_a, 1] and b in [0, T_b):
//
//   2 T_b (N_i - N_(i,j)) + 2 N_(i,j) - N_i  >  R_i  >  2 T_a N_(i,j) - N_i   (2)
#pragma once

#include <cstdint>

namespace p2prep::core {

/// Formula (1): summation reputation implied by (a, b, N_i, N_(i,j)).
[[nodiscard]] constexpr double formula1_reputation(double a, double b,
                                                   std::uint64_t n_i,
                                                   std::uint64_t n_ij) noexcept {
  const auto ni = static_cast<double>(n_i);
  const auto nij = static_cast<double>(n_ij);
  return 2.0 * b * (ni - nij) + 2.0 * a * nij - ni;
}

struct Formula2Bounds {
  double lower = 0.0;  ///< 2 T_a N_(i,j) - N_i.
  double upper = 0.0;  ///< 2 T_b (N_i - N_(i,j)) + 2 N_(i,j) - N_i.
};

/// The Formula (2) interval for given thresholds and counts.
[[nodiscard]] constexpr Formula2Bounds formula2_bounds(
    double t_a, double t_b, std::uint64_t n_i, std::uint64_t n_ij) noexcept {
  const auto ni = static_cast<double>(n_i);
  const auto nij = static_cast<double>(n_ij);
  return {
      .lower = 2.0 * t_a * nij - ni,
      .upper = 2.0 * t_b * (ni - nij) + 2.0 * nij - ni,
  };
}

/// Whether reputation `r_i` falls inside the Formula (2) interval.
/// `inclusive` admits the boundary (see DetectorConfig::inclusive_bounds).
[[nodiscard]] constexpr bool formula2_satisfied(double r_i, double t_a,
                                                double t_b, std::uint64_t n_i,
                                                std::uint64_t n_ij,
                                                bool inclusive = true) noexcept {
  const Formula2Bounds bounds = formula2_bounds(t_a, t_b, n_i, n_ij);
  if (inclusive) return r_i >= bounds.lower && r_i <= bounds.upper;
  return r_i > bounds.lower && r_i < bounds.upper;
}

}  // namespace p2prep::core
