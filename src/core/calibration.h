// Threshold calibration from historical rating data — the paper's first
// stated future work ("how to determine the threshold values used in this
// paper effectively and efficiently according to the given system
// parameters").
//
// The paper's own procedure for its trace (Sec. III/IV-B): look at the
// per-pair interaction-frequency distribution (normal buyer-seller pairs
// average ~1 transaction/year; colluders 20-55), pick T_N above the
// normal population, then take the a/b statistics of the pairs above T_N
// (crawl averages a = 98.37%, b = 1.63%) and place T_a / T_b between the
// frequent-pair population and the global baseline. This module implements
// exactly that procedure over a RatingStore window:
//
//  * T_N  — the smallest count such that at most `frequent_pair_fraction`
//           of rated pairs reach it (an upper-tail quantile of the pair
//           frequency distribution).
//  * T_a  — midway between the mean positive fraction of frequent pairs
//           and the global positive fraction (colluders sit near 1, the
//           baseline near service quality).
//  * T_b  — midway between the mean complement fraction of frequent
//           ratees and the global positive fraction.
//
// The result is a suggestion: calibrate() reports the population
// statistics it derived so an operator can audit them.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "rating/store.h"

namespace p2prep::core {

struct CalibrationOptions {
  /// Upper-tail mass of the per-pair frequency distribution treated as
  /// "frequent" (the paper's 18-of-many sellers filter is ~this order).
  double frequent_pair_fraction = 0.01;
  /// Floor for T_N so single-digit noise never counts as frequent.
  std::uint32_t min_frequency = 3;
};

struct CalibrationReport {
  /// The suggested thresholds (other DetectorConfig fields untouched).
  DetectorConfig suggested;

  // Derived population statistics, for auditing.
  std::uint64_t rated_pairs = 0;       ///< Distinct (rater, ratee) pairs.
  std::uint64_t frequent_pairs = 0;    ///< Pairs at/above suggested T_N.
  double mean_pair_count = 0.0;        ///< Mean ratings per pair.
  double max_pair_count = 0.0;
  double global_positive_fraction = 0.0;
  double frequent_positive_fraction = 0.0;  ///< Mean a over frequent pairs.
  double frequent_complement_fraction = 0.0;///< Mean b over their ratees.
};

/// Derives thresholds from the window horizon of `history`. `base` supplies
/// the non-threshold fields of the returned config.
[[nodiscard]] CalibrationReport calibrate_thresholds(
    const rating::RatingStore& history, const CalibrationOptions& options = {},
    const DetectorConfig& base = {});

}  // namespace p2prep::core
