// Dense row-major matrix used for reputation/rating aggregates. Kept
// deliberately small: fixed element type per instantiation, contiguous
// storage (cache-friendly row scans are the hot path of the Unoptimized
// detector), bounds-checked access in debug builds only.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace p2prep::util {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row — the unit of work for parallel sweeps.
  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  /// Grows (or shrinks) to rows x cols, preserving the overlapping
  /// upper-left block. New cells are value-initialized.
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    std::vector<T> next(rows * cols, T{});
    const std::size_t copy_rows = rows < rows_ ? rows : rows_;
    const std::size_t copy_cols = cols < cols_ ? cols : cols_;
    for (std::size_t r = 0; r < copy_rows; ++r)
      for (std::size_t c = 0; c < copy_cols; ++c)
        next[r * cols + c] = data_[r * cols_ + c];
    data_ = std::move(next);
    rows_ = rows;
    cols_ = cols;
  }

  [[nodiscard]] std::span<const T> flat() const noexcept { return data_; }
  [[nodiscard]] std::span<T> flat() noexcept { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace p2prep::util
