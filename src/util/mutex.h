// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying Clang Thread Safety capability
// attributes (util/thread_annotations.h), so lock discipline over
// P2PREP_GUARDED_BY data is checked at compile time under
// -Wthread-safety. Zero overhead relative to the standard types.
//
// Conventions used across the codebase:
//  * Every mutex-protected data member is declared P2PREP_GUARDED_BY(mu_).
//  * Condition waits are written as explicit while-loops around
//    CondVar::wait(mu) instead of the predicate overloads of
//    std::condition_variable — the analysis cannot see through a lambda,
//    so predicates reading guarded state would defeat the checking.
//  * notify_one/notify_all are called after the MutexLock scope closes.
//  * Components that ever hold two mutexes declare the order with
//    P2PREP_ACQUIRED_AFTER / P2PREP_ACQUIRED_BEFORE on the members (see
//    ReputationService's hierarchy in service/service.h); under the Clang
//    gate (-Wthread-safety-beta) an inverted acquisition then fails to
//    compile (canary: tests/static_analysis/lock_order_fail.cpp).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace p2prep::util {

/// std::mutex with capability annotations. Non-recursive, non-movable.
class P2PREP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() P2PREP_ACQUIRE() { mu_.lock(); }
  void unlock() P2PREP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() P2PREP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (scoped capability). Supports early release via
/// unlock(); the destructor only unlocks when still held.
class P2PREP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) P2PREP_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() P2PREP_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before the end of scope (at most once).
  void unlock() P2PREP_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

/// Condition variable whose waits take an annotated Mutex the caller
/// already holds. Spurious wakeups happen; always wait in a while-loop
/// re-checking the guarded condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning — to the analysis (and the caller) the lock is held
  /// throughout.
  void wait(Mutex& mu) P2PREP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace p2prep::util
