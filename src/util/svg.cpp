#include "util/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace p2prep::util {

namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 60;

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                          "#9467bd", "#8c564b"};

std::string escape(const std::string& text) {
  std::string out;
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// "Nice" tick step covering `span` in ~`target` steps.
double nice_step(double span, int target) {
  if (span <= 0.0) return 1.0;
  const double raw = span / target;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * mult >= raw) return mag * mult;
  }
  return mag * 10.0;
}

}  // namespace

SvgChart::SvgChart(std::string title, std::string x_label,
                   std::string y_label, int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {}

void SvgChart::set_categories(std::vector<std::string> labels) {
  categories_ = std::move(labels);
}

void SvgChart::add_bar_series(std::string name, std::vector<double> values) {
  bars_.push_back({std::move(name), std::move(values)});
}

void SvgChart::add_line_series(std::string name, std::vector<double> xs,
                               std::vector<double> ys) {
  lines_.push_back({std::move(name), std::move(xs), std::move(ys)});
}

std::string SvgChart::render() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << " "
     << height_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  os << "<text x=\"" << width_ / 2 << "\" y=\"22\" text-anchor=\"middle\" "
     << "font-family=\"sans-serif\" font-size=\"15\" font-weight=\"bold\">"
     << escape(title_) << "</text>\n";
  // Axis labels.
  os << "<text x=\"" << width_ / 2 << "\" y=\"" << height_ - 8
     << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
     << "font-size=\"12\">" << escape(x_label_) << "</text>\n";
  os << "<text x=\"16\" y=\"" << height_ / 2
     << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
     << "font-size=\"12\" transform=\"rotate(-90 16 " << height_ / 2
     << ")\">" << escape(y_label_) << "</text>\n";

  if (!bars_.empty()) os << render_bars();
  if (!lines_.empty()) os << render_lines();

  // Legend.
  const std::size_t series_count = bars_.size() + lines_.size();
  int legend_y = kMarginTop;
  std::size_t color = 0;
  auto legend_entry = [&](const std::string& name) {
    os << "<rect x=\"" << width_ - kMarginRight - 130 << "\" y=\""
       << legend_y << "\" width=\"12\" height=\"12\" fill=\""
       << kPalette[color % 6] << "\"/>\n";
    os << "<text x=\"" << width_ - kMarginRight - 112 << "\" y=\""
       << legend_y + 10
       << "\" font-family=\"sans-serif\" font-size=\"11\">" << escape(name)
       << "</text>\n";
    legend_y += 18;
    ++color;
  };
  if (series_count > 1) {
    for (const auto& s : bars_) legend_entry(s.name);
    for (const auto& s : lines_) legend_entry(s.name);
  }

  os << "</svg>\n";
  return os.str();
}

std::string SvgChart::render_bars() const {
  std::ostringstream os;
  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;

  double y_max = 0.0;
  for (const auto& s : bars_)
    for (double v : s.values) y_max = std::max(y_max, v);
  if (y_max <= 0.0) y_max = 1.0;
  const double step = nice_step(y_max, 5);
  y_max = std::ceil(y_max / step) * step;

  auto y_of = [&](double v) {
    return kMarginTop + plot_h * (1.0 - v / y_max);
  };

  // Gridlines + y ticks.
  for (double tick = 0.0; tick <= y_max + 1e-12; tick += step) {
    const double y = y_of(tick);
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << fmt(y) << "\" x2=\""
       << width_ - kMarginRight << "\" y2=\"" << fmt(y)
       << "\" stroke=\"#dddddd\"/>\n";
    os << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << fmt(y + 4)
       << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
       << "font-size=\"10\">" << fmt(tick) << "</text>\n";
  }

  const std::size_t n = categories_.size();
  if (n == 0) return os.str();
  const double slot = plot_w / static_cast<double>(n);
  const double group_w = slot * 0.8;
  const double bar_w =
      group_w / static_cast<double>(std::max<std::size_t>(1, bars_.size()));

  for (std::size_t c = 0; c < n; ++c) {
    const double x0 = kMarginLeft + slot * static_cast<double>(c) +
                      slot * 0.1;
    for (std::size_t s = 0; s < bars_.size(); ++s) {
      if (c >= bars_[s].values.size()) continue;
      const double v = std::max(0.0, bars_[s].values[c]);
      const double y = y_of(v);
      os << "<rect x=\"" << fmt(x0 + bar_w * static_cast<double>(s))
         << "\" y=\"" << fmt(y) << "\" width=\"" << fmt(bar_w * 0.92)
         << "\" height=\"" << fmt(kMarginTop + plot_h - y) << "\" fill=\""
         << kPalette[s % 6] << "\"/>\n";
    }
    // Category label (skip some when crowded).
    const std::size_t label_stride = n > 30 ? n / 20 : 1;
    if (c % label_stride == 0) {
      os << "<text x=\"" << fmt(x0 + group_w / 2) << "\" y=\""
         << height_ - kMarginBottom + 14
         << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         << "font-size=\"9\">" << escape(categories_[c]) << "</text>\n";
    }
  }
  // Axis line.
  os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << kMarginTop
     << "\" x2=\"" << kMarginLeft << "\" y2=\""
     << height_ - kMarginBottom << "\" stroke=\"black\"/>\n";
  os << "<line x1=\"" << kMarginLeft << "\" y1=\""
     << height_ - kMarginBottom << "\" x2=\"" << width_ - kMarginRight
     << "\" y2=\"" << height_ - kMarginBottom << "\" stroke=\"black\"/>\n";
  return os.str();
}

std::string SvgChart::render_lines() const {
  std::ostringstream os;
  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;

  double x_min = 1e300;
  double x_max = -1e300;
  double y_min = 1e300;
  double y_max = -1e300;
  for (const auto& s : lines_) {
    for (double x : s.xs) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (double y : s.ys) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_min > x_max) return os.str();
  if (x_max == x_min) x_max = x_min + 1.0;
  if (log_y_) {
    y_min = std::log10(std::max(y_min, 1e-12));
    y_max = std::log10(std::max(y_max, 1e-12));
  } else {
    y_min = std::min(0.0, y_min);
  }
  if (y_max <= y_min) y_max = y_min + 1.0;

  auto x_of = [&](double v) {
    return kMarginLeft + plot_w * (v - x_min) / (x_max - x_min);
  };
  auto y_of = [&](double v) {
    const double value = log_y_ ? std::log10(std::max(v, 1e-12)) : v;
    return kMarginTop + plot_h * (1.0 - (value - y_min) / (y_max - y_min));
  };

  // Y gridlines/ticks.
  const double step = nice_step(y_max - y_min, 5);
  for (double tick = std::ceil(y_min / step) * step; tick <= y_max + 1e-12;
       tick += step) {
    const double y = kMarginTop + plot_h * (1.0 - (tick - y_min) /
                                                      (y_max - y_min));
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << fmt(y) << "\" x2=\""
       << width_ - kMarginRight << "\" y2=\"" << fmt(y)
       << "\" stroke=\"#dddddd\"/>\n";
    os << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << fmt(y + 4)
       << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
       << "font-size=\"10\">"
       << (log_y_ ? ("1e" + fmt(tick)) : fmt(tick)) << "</text>\n";
  }
  // X ticks from the first series' xs.
  if (!lines_.empty()) {
    for (double x : lines_[0].xs) {
      os << "<text x=\"" << fmt(x_of(x)) << "\" y=\""
         << height_ - kMarginBottom + 14
         << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         << "font-size=\"10\">" << fmt(x) << "</text>\n";
    }
  }

  for (std::size_t s = 0; s < lines_.size(); ++s) {
    const auto& series = lines_[s];
    os << "<polyline fill=\"none\" stroke=\"" << kPalette[s % 6]
       << "\" stroke-width=\"2\" points=\"";
    for (std::size_t k = 0; k < series.xs.size() && k < series.ys.size();
         ++k) {
      os << fmt(x_of(series.xs[k])) << "," << fmt(y_of(series.ys[k])) << " ";
    }
    os << "\"/>\n";
    for (std::size_t k = 0; k < series.xs.size() && k < series.ys.size();
         ++k) {
      os << "<circle cx=\"" << fmt(x_of(series.xs[k])) << "\" cy=\""
         << fmt(y_of(series.ys[k])) << "\" r=\"3\" fill=\""
         << kPalette[s % 6] << "\"/>\n";
    }
  }

  os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << kMarginTop
     << "\" x2=\"" << kMarginLeft << "\" y2=\""
     << height_ - kMarginBottom << "\" stroke=\"black\"/>\n";
  os << "<line x1=\"" << kMarginLeft << "\" y1=\""
     << height_ - kMarginBottom << "\" x2=\"" << width_ - kMarginRight
     << "\" y2=\"" << height_ - kMarginBottom << "\" stroke=\"black\"/>\n";
  return os.str();
}

bool SvgChart::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace p2prep::util
