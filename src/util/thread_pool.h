// Minimal work-stealing-free thread pool plus a parallel_for helper.
//
// The pool exists for the two CPU-heavy inner loops in the library: the
// EigenTrust power iteration (dense mat-vec per iteration) and the
// Unoptimized detector's row sweeps. Both decompose into independent row
// ranges, so a simple chunked parallel_for with a completion latch is all
// that is needed — no futures, no task graph.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; it may run on any worker at any later point.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. If any task
  /// threw, rethrows the first captured exception (and clears it, leaving
  /// the pool usable); further exceptions from the same batch are dropped.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end), split into `size()*4` chunks and
  /// executed on the pool. Blocks until complete. fn must be safe to call
  /// concurrently for distinct i. Rethrows the first exception any chunk
  /// threw (after all chunks finished); remaining indices of a throwing
  /// chunk are skipped.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(lo, hi) receives contiguous ranges. Lower overhead
  /// when per-index work is tiny.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  std::queue<std::function<void()>> tasks_ P2PREP_GUARDED_BY(mu_);
  CondVar task_ready_;
  CondVar idle_;
  std::size_t in_flight_ P2PREP_GUARDED_BY(mu_) = 0;
  bool stopping_ P2PREP_GUARDED_BY(mu_) = false;
  /// First exception thrown by any task.
  std::exception_ptr first_error_ P2PREP_GUARDED_BY(mu_);
};

/// Serial fallback with the same signature as ThreadPool::parallel_for, used
/// by components that take an optional pool pointer.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn);

}  // namespace p2prep::util
