#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace p2prep::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(lo < hi && bins > 0);
}

std::size_t Histogram::bin_of(double x) const noexcept {
  if (x < lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double x) noexcept { add(x, 1); }

void Histogram::add(double x, std::size_t weight) noexcept {
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return bin + 1 == counts_.size() ? hi_ : bin_low(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 0;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") ";
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[i] * width / max_count;
    for (std::size_t k = 0; k < bar; ++k) os << '#';
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace p2prep::util
