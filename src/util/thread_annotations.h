// Clang Thread Safety Analysis annotation macros (P2PREP_ prefix).
//
// Under Clang with -Wthread-safety these expand to the capability
// attributes the analysis consumes; under every other compiler they expand
// to nothing, so annotated code builds everywhere while race conditions
// and lock-discipline violations become *compile errors* on Clang
// (-Werror=thread-safety, see the top-level CMakeLists and
// tools/run_static_analysis.sh).
//
// Use the annotated wrappers in util/mutex.h (Mutex, MutexLock, CondVar)
// rather than raw std::mutex: the standard library types carry no
// capability attributes, so the analysis cannot see through them.
//
// Annotation cheat sheet (full docs: clang.llvm.org/docs/ThreadSafetyAnalysis):
//   P2PREP_GUARDED_BY(mu)      data member may only be touched with mu held
//   P2PREP_PT_GUARDED_BY(mu)   pointee of the member is guarded by mu
//   P2PREP_REQUIRES(mu)        caller must hold mu before calling
//   P2PREP_ACQUIRE(mu)         function acquires mu and does not release it
//   P2PREP_RELEASE(mu)         function releases mu
//   P2PREP_EXCLUDES(mu)        caller must NOT hold mu (deadlock guard)
//   P2PREP_CAPABILITY("mutex") class is a lockable capability
//   P2PREP_SCOPED_CAPABILITY   RAII class that acquires in ctor / releases in dtor
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define P2PREP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define P2PREP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define P2PREP_CAPABILITY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define P2PREP_SCOPED_CAPABILITY \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define P2PREP_GUARDED_BY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define P2PREP_PT_GUARDED_BY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define P2PREP_ACQUIRED_BEFORE(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define P2PREP_ACQUIRED_AFTER(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define P2PREP_REQUIRES(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define P2PREP_REQUIRES_SHARED(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define P2PREP_ACQUIRE(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define P2PREP_ACQUIRE_SHARED(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define P2PREP_RELEASE(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define P2PREP_RELEASE_SHARED(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define P2PREP_RELEASE_GENERIC(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define P2PREP_TRY_ACQUIRE(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define P2PREP_TRY_ACQUIRE_SHARED(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define P2PREP_EXCLUDES(...) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define P2PREP_ASSERT_CAPABILITY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define P2PREP_ASSERT_SHARED_CAPABILITY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define P2PREP_RETURN_CAPABILITY(x) \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define P2PREP_NO_THREAD_SAFETY_ANALYSIS \
  P2PREP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
