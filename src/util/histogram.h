// Fixed-width binned histogram for reputation-distribution figures and
// trace analysis. Values outside [lo, hi) are clamped to the edge bins so
// no sample is silently dropped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p2prep::util {

class Histogram {
 public:
  /// Builds `bins` equal-width bins over [lo, hi). Requires lo < hi, bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(double x, std::size_t weight) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_high(std::size_t bin) const noexcept;
  /// Index of the bin x falls in (after clamping to the edge bins).
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;
  /// Fraction of samples in `bin`; 0 if the histogram is empty.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering, one row per bin, bar scaled to `width`.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace p2prep::util
