// Dependency-free SVG chart writer for the figure harnesses: grouped bar
// charts (the paper's reputation distributions) and multi-series line
// charts (Fig. 12/13 sweeps). Layout is deliberately simple — margins,
// linear scales, ticks, legend — producing self-contained .svg files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p2prep::util {

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label,
           int width = 760, int height = 420);

  /// Adds one bar series. Multiple series render as grouped bars; all
  /// series must have the same length as the category labels.
  void set_categories(std::vector<std::string> labels);
  void add_bar_series(std::string name, std::vector<double> values);

  /// Adds one line series (x sorted ascending recommended).
  void add_line_series(std::string name, std::vector<double> xs,
                       std::vector<double> ys);

  /// Logarithmic y axis (line charts; values must be > 0).
  void set_log_y(bool log_y) { log_y_ = log_y; }

  [[nodiscard]] std::string render() const;

  /// Renders to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct BarSeries {
    std::string name;
    std::vector<double> values;
  };
  struct LineSeries {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  [[nodiscard]] std::string render_bars() const;
  [[nodiscard]] std::string render_lines() const;

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  bool log_y_ = false;
  std::vector<std::string> categories_;
  std::vector<BarSeries> bars_;
  std::vector<LineSeries> lines_;
};

}  // namespace p2prep::util
