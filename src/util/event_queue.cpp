#include "util/event_queue.h"

#include <algorithm>

namespace p2prep::util {

void EventQueue::schedule(double at, Handler handler) {
  heap_.push(Event{std::max(at, now_), next_seq_++, std::move(handler)});
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (!heap_.empty()) {
    // priority_queue::top is const; the handler must be moved out before
    // pop, so copy the metadata and steal the handler.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.at;
    event.handler();
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.at;
    event.handler();
    ++count;
    ++processed_;
  }
  now_ = std::max(now_, until);
  return count;
}

}  // namespace p2prep::util
