#include "util/event_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace p2prep::util {

void EventQueue::schedule(double at, Handler handler) {
  MutexLock lock(mu_);
  schedule_locked(at, std::move(handler));
}

void EventQueue::schedule_in(double delay, Handler handler) {
  MutexLock lock(mu_);
  schedule_locked(now_ + delay, std::move(handler));
}

void EventQueue::schedule_locked(double at, Handler handler) {
  heap_.push(Event{std::max(at, now_), next_seq_++, std::move(handler)});
}

bool EventQueue::pop_due_locked(double until, Event& event) {
  if (heap_.empty() || heap_.top().at > until) return false;
  // priority_queue::top is const; the handler must be moved out before
  // pop, so copy the metadata and steal the handler.
  event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.at;
  return true;
}

std::size_t EventQueue::run() {
  return run_until(std::numeric_limits<double>::infinity());
}

std::size_t EventQueue::run_until(double until) {
  std::size_t count = 0;
  for (;;) {
    Event event;
    {
      MutexLock lock(mu_);
      if (!pop_due_locked(until, event)) break;
    }
    // The mutex is released while the handler runs so it may re-enter
    // schedule()/now() (and other threads may produce concurrently).
    event.handler();
    ++count;
    MutexLock lock(mu_);
    ++processed_;
  }
  if (std::isfinite(until)) {
    MutexLock lock(mu_);
    now_ = std::max(now_, until);
  }
  return count;
}

double EventQueue::now() const {
  MutexLock lock(mu_);
  return now_;
}

bool EventQueue::empty() const {
  MutexLock lock(mu_);
  return heap_.empty();
}

std::size_t EventQueue::pending() const {
  MutexLock lock(mu_);
  return heap_.size();
}

std::size_t EventQueue::processed() const {
  MutexLock lock(mu_);
  return processed_;
}

}  // namespace p2prep::util
