// Small statistics toolkit used by the trace analysis and experiment
// harnesses: streaming moments (Welford), order statistics, and a compact
// five-number summary.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace p2prep::util {

/// Streaming mean/variance accumulator (Welford's algorithm) that also
/// tracks min/max. O(1) memory regardless of sample count.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample (copies + sorts).
/// q must be in [0, 1]; returns 0 for an empty span.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// min / p25 / median / p75 / max plus mean and count.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace p2prep::util
