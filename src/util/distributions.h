// Non-uniform sampling helpers on top of util::Rng.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace p2prep::util {

/// Poisson sample. Knuth's product method for small means, normal
/// approximation (rounded, clamped at 0) for large ones.
[[nodiscard]] inline std::uint32_t poisson(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = rng.next_double();
    std::uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= rng.next_double();
    }
    return count;
  }
  // Box-Muller normal approximation N(mean, mean).
  const double u1 = rng.next_double();
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-18)) * std::cos(6.283185307179586 * u2);
  const double x = mean + std::sqrt(mean) * z;
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(std::llround(x));
}

/// Zipf-like rank sample over [0, n): P(k) proportional to 1/(k+1)^s.
/// Uses rejection-inversion-free CDF walk; O(n) setup avoided by the
/// harmonic approximation, adequate for workload skew generation.
[[nodiscard]] inline std::size_t zipf(Rng& rng, std::size_t n, double s = 1.0) {
  if (n <= 1) return 0;
  // Inverse-CDF via the continuous approximation of the generalized
  // harmonic number: H(x) ~ (x^(1-s) - 1)/(1-s) for s != 1, ln(x) for s = 1.
  const auto nd = static_cast<double>(n);
  double u = rng.next_double();
  double x;
  if (std::abs(s - 1.0) < 1e-9) {
    x = std::exp(u * std::log(nd));
  } else {
    const double h = (std::pow(nd, 1.0 - s) - 1.0) / (1.0 - s);
    x = std::pow(u * h * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
  }
  // x lies in [1, n]; rank k = floor(x) - 1 in [0, n).
  auto k = static_cast<std::size_t>(x);
  k = k >= 1 ? k - 1 : 0;
  return k >= n ? n - 1 : k;
}

}  // namespace p2prep::util
