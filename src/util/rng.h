// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng (or a seed
// from which it derives one), so any experiment is reproducible bit-for-bit
// given its seed. The generator is xoshiro256**, seeded via SplitMix64 as
// recommended by its authors; both are implemented here so the library has
// no dependency on platform-varying std::mt19937 streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace p2prep::util {

/// SplitMix64: a tiny, fast 64-bit generator used to expand a single seed
/// into the larger state of xoshiro256**. Also usable standalone for hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes a 64-bit value through one SplitMix64 round. Useful for deriving
/// independent stream seeds: `mix64(seed ^ stream_id)`.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return SplitMix64(x).next();
}

/// xoshiro256**: the library-wide PRNG. Satisfies the C++ named requirement
/// UniformRandomBitGenerator so it can drive <random> distributions, though
/// the convenience members below are preferred (they are portable across
/// standard library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9b60933458e17d7dULL) noexcept
      : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method, which is unbiased and needs no division in the common case.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply-high rejection sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Bernoulli trial: true with probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

  /// Derives an independent generator for a named substream. Two substreams
  /// of the same Rng never share state, so parallel components can each own
  /// one without synchronization.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(mix64(next() ^ mix64(stream_id)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace p2prep::util
