#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace p2prep::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.p25 = quantile_sorted(copy, 0.25);
  s.median = quantile_sorted(copy, 0.5);
  s.p75 = quantile_sorted(copy, 0.75);
  s.mean = mean_of(copy);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " min=" << min << " p25=" << p25
     << " median=" << median << " p75=" << p75 << " max=" << max;
  return os.str();
}

}  // namespace p2prep::util
