#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace p2prep::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) idle_.wait(mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) task_ready_.wait(mu_);
      if (tasks_.empty()) return;  // stopping, queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&fn, lo, hi] { fn(lo, hi); });
  }
  wait_idle();
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace p2prep::util
