// Plain-text aligned table printer for the figure-regeneration harnesses.
// Each bench binary prints the same rows/series the paper's figure shows;
// this keeps that output readable and machine-parsable (also emits CSV).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace p2prep::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string num(double v, int precision = 4);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string num(int v);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Space-aligned rendering with a header underline.
  [[nodiscard]] std::string render() const;
  /// RFC-4180-ish CSV (fields with commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2prep::util
