// Operation-cost accounting, the metric behind Figure 13 of the paper.
//
// The paper defines operation cost as "the number of computer cycles for
// thwarting collusion". We reproduce it as an abstract work-unit counter:
// every reputation-calculation step, matrix-element scan, threshold check,
// and manager message charges a named counter. The counters are plain
// (non-atomic) by default because the hot detection loops are partitioned
// per thread and merged afterwards.
#pragma once

#include <cstdint>
#include <string>

namespace p2prep::util {

/// Work-unit tally for one detection/calculation pass.
struct CostCounter {
  /// Matrix elements read (row scans, rater enumeration).
  std::uint64_t element_scans = 0;
  /// Threshold / formula predicate evaluations.
  std::uint64_t checks = 0;
  /// Arithmetic ops in reputation aggregation (power-iteration mults, sums).
  std::uint64_t arithmetic = 0;
  /// Manager-to-manager messages (decentralized detection only).
  std::uint64_t messages = 0;

  constexpr void add_scan(std::uint64_t n = 1) noexcept { element_scans += n; }
  constexpr void add_check(std::uint64_t n = 1) noexcept { checks += n; }
  constexpr void add_arith(std::uint64_t n = 1) noexcept { arithmetic += n; }
  constexpr void add_message(std::uint64_t n = 1) noexcept { messages += n; }

  /// Single scalar reported in Figure 13-style plots.
  [[nodiscard]] constexpr std::uint64_t total() const noexcept {
    return element_scans + checks + arithmetic + messages;
  }

  constexpr CostCounter& operator+=(const CostCounter& o) noexcept {
    element_scans += o.element_scans;
    checks += o.checks;
    arithmetic += o.arithmetic;
    messages += o.messages;
    return *this;
  }

  friend constexpr CostCounter operator+(CostCounter a,
                                         const CostCounter& b) noexcept {
    a += b;
    return a;
  }

  friend constexpr bool operator==(const CostCounter&,
                                   const CostCounter&) = default;

  [[nodiscard]] std::string to_string() const {
    return "scans=" + std::to_string(element_scans) +
           " checks=" + std::to_string(checks) +
           " arith=" + std::to_string(arithmetic) +
           " msgs=" + std::to_string(messages) +
           " total=" + std::to_string(total());
  }
};

}  // namespace p2prep::util
