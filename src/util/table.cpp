#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace p2prep::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t underline = 0;
  for (std::size_t w : widths) underline += w + 2;
  os << std::string(underline, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace p2prep::util
