// Minimal discrete-event simulation kernel: schedule handlers at virtual
// timestamps, run them in time order. Handlers may schedule further
// events. Ties break in scheduling (FIFO) order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p2prep::util {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute virtual time `at` (>= now()).
  /// Scheduling in the past is clamped to now().
  void schedule(double at, Handler handler);

  /// Convenience: schedule at now() + delay.
  void schedule_in(double delay, Handler handler) {
    schedule(now_ + delay, std::move(handler));
  }

  /// Processes events in (time, insertion) order until none remain.
  /// Returns the number of events processed.
  std::size_t run();

  /// Processes events with time <= `until`; later events stay queued.
  std::size_t run_until(double until);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t processed() const noexcept { return processed_; }

 private:
  struct Event {
    double at;
    std::uint64_t seq;  // FIFO tie-break
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace p2prep::util
