// Minimal discrete-event simulation kernel: schedule handlers at virtual
// timestamps, run them in time order. Handlers may schedule further
// events. Ties break in scheduling (FIFO) order so runs are deterministic.
//
// Thread safety: internally synchronized. schedule()/schedule_in() may be
// called from any thread — including from handlers executing inside
// run(), because the queue's mutex is dropped while a handler runs. Only
// one thread should drive run()/run_until() at a time (two concurrent
// drivers would interleave handlers arbitrarily); concurrent producers
// against one consumer are the supported topology, mirroring the service
// layer's ingest model.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::util {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute virtual time `at` (>= now()).
  /// Scheduling in the past is clamped to now().
  void schedule(double at, Handler handler);

  /// Convenience: schedule at now() + delay.
  void schedule_in(double delay, Handler handler);

  /// Processes events in (time, insertion) order until none remain.
  /// Returns the number of events processed.
  std::size_t run();

  /// Processes events with time <= `until`; later events stay queued.
  std::size_t run_until(double until);

  [[nodiscard]] double now() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t processed() const;

 private:
  struct Event {
    double at = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void schedule_locked(double at, Handler handler) P2PREP_REQUIRES(mu_);
  /// Pops the next event due (<= `until`) and advances now_; false when
  /// nothing qualifies.
  bool pop_due_locked(double until, Event& event) P2PREP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_
      P2PREP_GUARDED_BY(mu_);
  double now_ P2PREP_GUARDED_BY(mu_) = 0.0;
  std::uint64_t next_seq_ P2PREP_GUARDED_BY(mu_) = 0;
  std::size_t processed_ P2PREP_GUARDED_BY(mu_) = 0;
};

}  // namespace p2prep::util
