#include "detect/ring_detector.h"

#include <algorithm>
#include <chrono>

#include "core/predicates.h"
#include "detect/accomplice_exchange.h"

namespace p2prep::detect {

namespace {

constexpr std::uint64_t edge_key(rating::NodeId u, rating::NodeId v) noexcept {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Iterative Tarjan SCC over a graph given as sorted adjacency lists.
/// Returns the components as index lists; deterministic for a given
/// (nodes, adj) input because traversal follows the sorted order.
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<std::uint32_t>>& adj)
      : adj_(adj),
        index_(adj.size(), kUnvisited),
        lowlink_(adj.size(), 0),
        on_stack_(adj.size(), 0) {}

  [[nodiscard]] std::vector<std::vector<std::uint32_t>> run() {
    for (std::uint32_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] == kUnvisited) strongconnect(v);
    }
    return std::move(components_);
  }

 private:
  static constexpr std::uint32_t kUnvisited = ~0u;

  struct Frame {
    std::uint32_t node;
    std::uint32_t next_child = 0;  // position in adj_[node]
  };

  void strongconnect(std::uint32_t root) {
    frames_.push_back({root});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const std::uint32_t v = f.node;
      if (f.next_child == 0) {  // first visit
        index_[v] = lowlink_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = 1;
      }
      bool descended = false;
      while (f.next_child < adj_[v].size()) {
        const std::uint32_t w = adj_[v][f.next_child++];
        if (index_[w] == kUnvisited) {
          frames_.push_back({w});
          descended = true;
          break;
        }
        if (on_stack_[w]) lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      if (descended) continue;
      // v is finished: pop its component if it is a root, then propagate
      // the lowlink to the parent frame.
      if (lowlink_[v] == index_[v]) {
        std::vector<std::uint32_t> comp;
        for (;;) {
          const std::uint32_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          comp.push_back(w);
          if (w == v) break;
        }
        components_.push_back(std::move(comp));
      }
      frames_.pop_back();
      if (!frames_.empty()) {
        const std::uint32_t parent = frames_.back().node;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<std::uint32_t>>& adj_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::uint32_t> stack_;
  std::vector<Frame> frames_;
  std::vector<std::vector<std::uint32_t>> components_;
  std::uint32_t next_index_ = 0;
};

}  // namespace

std::uint32_t RingDetector::ring_frequency() const noexcept {
  return std::max(config_.frequency_min, config_.ring_internal_frequency_min);
}

bool RingDetector::edge_qualifies(
    const rating::PairStats& stats) const noexcept {
  return stats.total >= ring_frequency() &&
         core::positive_fraction_ok(stats, config_);
}

void RingDetector::rebuild_edges(const EpochSnapshot& snapshot,
                                 util::CostCounter& cost) {
  edges_.clear();
  // Range-partitioned rebuild: each (matrix, row-range) pair is one task
  // collecting its qualifying edges locally; the merge inserts them
  // sequentially. Cells are disjoint across tasks (a cell lives in one
  // row of one matrix), so the merged edge set — and everything Tarjan
  // derives from it — is identical to the serial scan for any task count.
  struct RangeTask {
    const rating::RatingMatrix* matrix = nullptr;
    rating::NodeId begin = 0;
    rating::NodeId end = 0;
  };
  const std::size_t per_matrix =
      snapshot.executor == nullptr
          ? 1
          : std::max<std::size_t>(1, snapshot.executor->concurrency());
  std::vector<RangeTask> tasks;
  for (const rating::RatingMatrix* matrix : snapshot.matrices) {
    const std::size_t n = matrix->size();
    const std::size_t chunk =
        std::max<std::size_t>(1, (n + per_matrix - 1) / per_matrix);
    for (std::size_t b = 0; b < n; b += chunk) {
      tasks.push_back({matrix, static_cast<rating::NodeId>(b),
                       static_cast<rating::NodeId>(std::min(n, b + chunk))});
    }
  }
  std::vector<std::vector<std::pair<std::uint64_t, rating::PairStats>>>
      found(tasks.size());
  std::vector<std::uint64_t> scanned(tasks.size(), 0);
  run_tasks(snapshot.executor, tasks.size(), [&](std::size_t t) {
    const RangeTask& task = tasks[t];
    task.matrix->for_each_nonzero_cell_in_rows(
        task.begin, task.end,
        [&](rating::NodeId i, rating::NodeId k,
            const rating::PairStats& stats) {
          ++scanned[t];
          if (edge_qualifies(stats)) found[t].push_back({edge_key(k, i),
                                                         stats});
        });
  });
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    cost.add_scan(scanned[t]);
    cost.add_check(scanned[t]);
    for (const auto& [key, stats] : found[t]) edges_[key] = stats;
  }
}

void RingDetector::apply_dirty(const EpochSnapshot& snapshot,
                               util::CostCounter& cost) {
  for (std::size_t m = 0; m < snapshot.dirty.size(); ++m) {
    const rating::RatingMatrix& matrix = *snapshot.matrices[m];
    for (const auto& [ratee, rater] : snapshot.dirty[m].cells) {
      cost.add_scan();
      cost.add_check();
      const rating::PairStats& stats = matrix.cell(ratee, rater);
      const std::uint64_t key = edge_key(rater, ratee);
      if (edge_qualifies(stats)) {
        edges_[key] = stats;
      } else {
        edges_.erase(key);
      }
    }
  }
}

void RingDetector::find_rings(const EpochSnapshot& snapshot,
                              core::DetectionReport& report) const {
  if (edges_.empty()) return;

  // Compact the edge endpoints into dense indices, sorted by node id, so
  // the SCC traversal (and therefore everything downstream) is
  // deterministic regardless of hash-map iteration order.
  std::vector<rating::NodeId> nodes;
  nodes.reserve(edges_.size());
  for (const auto& [key, stats] : edges_) {
    nodes.push_back(static_cast<rating::NodeId>(key >> 32));
    nodes.push_back(static_cast<rating::NodeId>(key & 0xffffffffu));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  const auto index_of = [&nodes](rating::NodeId id) {
    return static_cast<std::uint32_t>(
        std::lower_bound(nodes.begin(), nodes.end(), id) - nodes.begin());
  };

  std::vector<std::vector<std::uint32_t>> adj(nodes.size());
  for (const auto& [key, stats] : edges_) {
    adj[index_of(static_cast<rating::NodeId>(key >> 32))].push_back(
        index_of(static_cast<rating::NodeId>(key & 0xffffffffu)));
  }
  for (auto& successors : adj) {
    std::sort(successors.begin(), successors.end());
  }

  for (const auto& comp : TarjanScc(adj).run()) {
    if (comp.size() < config_.ring_size_min) continue;
    core::RingEvidence ev;
    ev.members.reserve(comp.size());
    for (std::uint32_t idx : comp) ev.members.push_back(nodes[idx]);
    std::sort(ev.members.begin(), ev.members.end());

    // Internal aggregates over the component's boost edges.
    rating::PairStats inside;
    std::uint32_t min_freq = 0;
    for (rating::NodeId u : ev.members) {
      for (rating::NodeId v : ev.members) {
        if (u == v) continue;
        report.cost.add_check();
        const auto it = edges_.find(edge_key(u, v));
        if (it == edges_.end()) continue;
        inside += it->second;
        min_freq =
            min_freq == 0 ? it->second.total : std::min(min_freq,
                                                        it->second.total);
      }
    }
    ev.internal_ratings = inside.total;
    ev.internal_positive_fraction = inside.positive_fraction();
    ev.min_internal_frequency = min_freq;

    // Joint complement (C2 over the member set): everything the members
    // received minus what they received from each other — including
    // sub-threshold member-to-member cells, which are still not "outside"
    // opinion. Read fresh from the owner matrices.
    rating::PairStats outside;
    for (rating::NodeId m : ev.members) {
      const rating::RatingMatrix& matrix = snapshot.matrix_of(m);
      outside += matrix.totals(m);
      for (rating::NodeId o : ev.members) {
        if (o == m) continue;
        report.cost.add_scan();
        outside -= matrix.cell(m, o);
      }
    }
    ev.outside_ratings = outside.total;
    ev.outside_positive_fraction = outside.positive_fraction();
    report.cost.add_check();
    if (config_.ring_outside_check && !core::complement_ok(outside, config_))
      continue;

    report.rings.push_back(std::move(ev));
  }
}

void RingDetector::on_epoch(const EpochSnapshot& snapshot,
                            core::DetectionReport& report) {
  const auto start = std::chrono::steady_clock::now();

  const bool incremental =
      primed_for_ == snapshot.matrices.size() && primed_for_ > 0 &&
      snapshot.dirty.size() == snapshot.matrices.size() &&
      std::all_of(snapshot.dirty.begin(), snapshot.dirty.end(),
                  [](const rating::DirtyCells& d) { return d.complete; });
  if (incremental) {
    apply_dirty(snapshot, report.cost);
  } else {
    rebuild_edges(snapshot, report.cost);
  }
  primed_for_ = snapshot.matrices.size();

  find_rings(snapshot, report);

  // Ring members seed accomplice propagation exactly like flagged pairs.
  // The flagged-set exchange resolves each pair direction from its owner
  // matrix, so the fixpoint spans any shard count (and reduces to the
  // single-matrix walk on one matrix).
  stats_.accomplice_rounds =
      detect::propagate_accomplices(snapshot, config_, report);
  report.canonicalize();

  stats_.incremental = incremental;
  stats_.rings_found = report.rings.size();
  for (const auto& r : report.rings) {
    stats_.largest_ring =
        std::max<std::uint64_t>(stats_.largest_ring, r.members.size());
  }
  stats_.scan_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace p2prep::detect
