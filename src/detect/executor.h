// detect::Executor — the seam through which a host lends threads to a
// detection pass (DESIGN.md §15). A detector (or the shared pair-sweep /
// accomplice-exchange helpers) splits its work into `num_tasks`
// independent, index-addressed tasks and hands them to run(); the
// executor invokes fn(i) for every i in [0, num_tasks) — on any thread,
// in any order, possibly concurrently — and returns only once all tasks
// completed. Determinism is therefore the CALLER's job: each task must
// write only task-local output (e.g. a per-range sub-report) which the
// caller merges in task-index order after run() returns.
//
// Hosts provide the labor: the service's global epoch runs tasks on its
// scan pool and on shard workers parked at the epoch barrier; benches use
// a plain thread-pool adapter; a null executor on the snapshot means
// serial (the caller's own thread runs every task in index order). Since
// any executor yields the same merged output as the serial path, recovery
// replay may run parallel or serial and still reproduce every byte.
#pragma once

#include <cstddef>
#include <functional>

namespace p2prep::detect {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs fn(0) .. fn(num_tasks - 1), each exactly once, and returns when
  /// every call finished. A task that throws: the first exception is
  /// rethrown from run() after all tasks completed or were abandoned.
  virtual void run(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& fn) = 0;

  /// Hint: how many tasks can make progress at once (>= 1). Callers use
  /// it to pick a task count; correctness never depends on it.
  [[nodiscard]] virtual std::size_t concurrency() const noexcept {
    return 1;
  }
};

/// Runs the tasks through `exec` when non-null, else serially in index
/// order on the calling thread.
inline void run_tasks(Executor* exec, std::size_t num_tasks,
                      const std::function<void(std::size_t)>& fn) {
  if (exec != nullptr && num_tasks > 1) {
    exec->run(num_tasks, fn);
    return;
  }
  for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
}

}  // namespace p2prep::detect
