// RingDetector: streaming detection of boost *cycles* of 3+ nodes — the
// collective shape the paper's pairwise predicates are structurally blind
// to (C2-C4 examine one partner at a time, so a ring that rates "around
// the circle" never concentrates any member's positives in one rater).
//
// Model. Directed boost graph over the window: edge u -> v exists when
// u's ratings of v in v's row cell a_(v,u) are frequent
// (N >= max(T_N, ring_internal_frequency_min)) and mostly positive
// (a >= T_a). A collusion ring is a directed cycle of boosts, i.e. a
// strongly connected component of this graph with >= ring_size_min
// members. 2-SCCs are exactly the mutual pairs the pairwise detectors
// own, so ring_size_min = 3 keeps ring reports disjoint from pair
// reports and pair-only traces free of ring flags. Each candidate SCC is
// then gated on the joint complement (C2 lifted to the member set): the
// ratings members received from NON-members must be mostly negative.
// The frequency filter applied while building edges IS the peel step —
// raising ring_internal_frequency_min peels weak edges until only
// tightly-boosting cycles stay strongly connected. No C1 gate: a ring
// can be caught while still accumulating reputation, before any member
// crosses T_R.
//
// Streaming. The edge set is cached between epochs. When every matrix in
// the snapshot carries a complete dirty delta, only the dirtied cells
// are re-derived (an edge is a pure function of its current cell, so the
// updated cache equals a from-scratch rebuild — byte-identical reports,
// tested); otherwise the cache is rebuilt from for_each_nonzero_cell.
// Tarjan's SCC then runs over the cached graph, whose size is O(boost
// edges), not O(nnz) — epoch cost O(changed nnz + boost graph), which
// bench_detector_scaling shows is >= 5x cheaper than a full rebuild at
// 1% dirty cells.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/detector.h"
#include "rating/pair_stats.h"

namespace p2prep::detect {

class RingDetector final : public Detector {
 public:
  explicit RingDetector(core::DetectorConfig config) : Detector(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ring";
  }

  [[nodiscard]] bool wants_dirty_tracking() const noexcept override {
    return true;
  }

  void on_epoch(const EpochSnapshot& snapshot,
                core::DetectionReport& report) override;

  /// Whether the last on_epoch() applied a dirty delta instead of
  /// rebuilding the edge cache (test/bench observability; also mirrored
  /// in stats().incremental).
  [[nodiscard]] bool last_pass_incremental() const noexcept {
    return stats_.incremental;
  }

  /// Cached boost edges (u -> v), for tests and bench counters.
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

 private:
  /// Effective per-edge frequency threshold (the peel bound).
  [[nodiscard]] std::uint32_t ring_frequency() const noexcept;
  [[nodiscard]] bool edge_qualifies(
      const rating::PairStats& stats) const noexcept;

  void rebuild_edges(const EpochSnapshot& snapshot, util::CostCounter& cost);
  void apply_dirty(const EpochSnapshot& snapshot, util::CostCounter& cost);
  void find_rings(const EpochSnapshot& snapshot,
                  core::DetectionReport& report) const;

  /// Boost edges keyed (u << 32) | v for edge u -> v, valued with a copy
  /// of the qualifying cell a_(v,u). The copies stay equal to the live
  /// cells because every cell mutation arrives through the dirty delta.
  std::unordered_map<std::uint64_t, rating::PairStats> edges_;
  /// Matrices the cache was primed for (0 = cold); a topology change
  /// (shard count) forces a rebuild.
  std::size_t primed_for_ = 0;
};

}  // namespace p2prep::detect
