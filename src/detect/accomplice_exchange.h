// Cross-shard accomplice propagation via flagged-set exchange
// (DESIGN.md §15).
//
// core::propagate_accomplices walks one matrix's rows depth-first; it
// cannot span a multi-owner shard map because a pair's two directions
// live in two different shard matrices (cell(d, k) in owner(d)'s row d,
// cell(k, d) in owner(k)'s row k). This version runs the same fixpoint
// as an iterated frontier exchange over an EpochSnapshot:
//
//   round r: every frontier node d is scanned against its OWNER matrix's
//   row d; a candidate k passes when both directions are frequent and
//   mostly positive (the mutual-boosting signature, C3 + C4 in both
//   matrices); newly flagged nodes form round r+1's frontier. Rounds
//   repeat until no new node is flagged — the global fixpoint.
//
// Output equivalence: the flagged set is the closure of the seed set
// under the symmetric mutual-boosting relation, which is independent of
// traversal order — DFS over one combined matrix (the core walk) and
// breadth-first rounds over S shard matrices reach the same closure, and
// DetectionReport::canonicalize() erases any ordering difference, so the
// reports are byte-identical (tests/service/accomplice_exchange_test.cpp
// proves it against the 1-shard serial walk).
//
// Each round's frontier is grouped by owner shard and the groups run as
// one task each through snapshot.executor (serial when null); candidate
// lists merge in shard-index order, so the evidence stream is
// deterministic even before canonicalization.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/evidence.h"
#include "detect/snapshot.h"

namespace p2prep::detect {

/// Extends `report` in place with accomplice pairs reachable from its
/// currently flagged nodes (pairs and ring members), exactly like
/// core::propagate_accomplices but across any number of shard matrices.
/// Returns the number of exchange rounds run until the fixpoint (0 when
/// the flag is off or nothing was seeded). Canonicalizes the report.
std::uint32_t propagate_accomplices(const EpochSnapshot& snapshot,
                                    const core::DetectorConfig& config,
                                    core::DetectionReport& report);

}  // namespace p2prep::detect
