#include "detect/registry.h"

#include <stdexcept>
#include <utility>

#include "detect/adapters.h"
#include "detect/ring_detector.h"

namespace p2prep::detect {

DetectorRegistry& DetectorRegistry::global() {
  static DetectorRegistry instance;
  return instance;
}

DetectorRegistry::DetectorRegistry() {
  register_detector("basic", [](const core::DetectorConfig& cfg) {
    return std::make_unique<BasicAdapter>(cfg);
  });
  register_detector("optimized", [](const core::DetectorConfig& cfg) {
    return std::make_unique<OptimizedAdapter>(cfg);
  });
  register_detector("group", [](const core::DetectorConfig& cfg) {
    return std::make_unique<GroupAdapter>(cfg);
  });
  register_detector("ring", [](const core::DetectorConfig& cfg) {
    return std::make_unique<RingDetector>(cfg);
  });
}

void DetectorRegistry::register_detector(std::string name, Factory factory) {
  if (name.empty()) throw std::invalid_argument("empty detector name");
  if (!factory) throw std::invalid_argument("null detector factory");
  const util::MutexLock lock(mu_);
  if (!factories_.emplace(std::move(name), std::move(factory)).second)
    throw std::invalid_argument("detector name already registered");
}

std::unique_ptr<Detector> DetectorRegistry::create(
    std::string_view name, const core::DetectorConfig& config) const {
  Factory factory;
  {
    const util::MutexLock lock(mu_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string msg = "unknown detector '";
    msg += name;
    msg += "' (registered:";
    for (const std::string& known : names()) {
      msg += ' ';
      msg += known;
    }
    msg += ')';
    throw std::invalid_argument(msg);
  }
  return factory(config);
}

bool DetectorRegistry::contains(std::string_view name) const {
  const util::MutexLock lock(mu_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> DetectorRegistry::names() const {
  const util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration — already ascending
}

}  // namespace p2prep::detect
