// detect::Detector — the registry's plugin interface (DESIGN.md §12).
//
// A detector is an epoch-driven object: the host (service shard, global
// epoch runner, CLI, bench) freezes the rating state into an
// EpochSnapshot and calls on_epoch(), which fills a core::DetectionReport
// with pair and/or ring evidence. Unlike core::CollusionDetector (a pure
// function of one matrix), a detect::Detector may keep state between
// epochs — the streaming RingDetector caches its boost-edge graph and
// re-derives only dirtied cells — so one instance is owned per host and
// on_epoch is non-const. Hosts query wants_dirty_tracking() once at
// construction to decide whether to enable matrix dirty-cell recording.
//
// Invariant every implementation must keep: the report for a given
// snapshot is byte-identical (after format_epoch_report) whether the
// detector arrived at it incrementally or from scratch — recovery replay
// and the differential tests depend on it.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/config.h"
#include "core/evidence.h"
#include "detect/snapshot.h"

namespace p2prep::detect {

/// Cheap per-instance gauges, refreshed by every on_epoch() call. The
/// service surfaces these through ServiceMetrics / GetMetrics.
struct DetectorStats {
  std::uint64_t rings_found = 0;   ///< Rings in the last report.
  std::uint64_t largest_ring = 0;  ///< Members of the biggest ring seen.
  std::uint64_t scan_us = 0;       ///< Wall time of the last on_epoch().
  /// Accomplice-exchange rounds to fixpoint in the last pass (0 when the
  /// flag is off or nothing seeded the walk).
  std::uint64_t accomplice_rounds = 0;
  bool incremental = false;        ///< Last pass reused cached state.
};

class Detector {
 public:
  explicit Detector(core::DetectorConfig config) : config_(config) {}
  virtual ~Detector() = default;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// The registry key this detector was created under ("basic",
  /// "optimized", "group", "ring", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when the detector exploits matrix dirty-cell deltas; the host
  /// should enable rating::RatingMatrix::set_dirty_tracking and pass
  /// take_dirty_cells() output in each snapshot.
  [[nodiscard]] virtual bool wants_dirty_tracking() const noexcept {
    return false;
  }

  /// Runs one detection pass over the frozen snapshot, appending evidence
  /// to `report` (callers pass a fresh report). The result is
  /// canonicalized and deterministic for a given snapshot.
  virtual void on_epoch(const EpochSnapshot& snapshot,
                        core::DetectionReport& report) = 0;

  [[nodiscard]] const DetectorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::DetectorConfig& config() const noexcept {
    return config_;
  }

 protected:
  core::DetectorConfig config_;
  DetectorStats stats_;
};

}  // namespace p2prep::detect
