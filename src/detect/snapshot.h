// EpochSnapshot: the frozen input a detect::Detector consumes at an epoch
// boundary. Standalone callers (CLI, bench, single-shard managers) pass
// one matrix; the service's global epoch passes every shard's matrix, with
// node i's row living in the matrix of its owner shard (the service's
// consistent-hash service::ShardMap, carried in `owners`). When the host
// tracks dirty cells, the per-matrix deltas ride along so incremental
// detectors can update cached state instead of rescanning the window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "detect/executor.h"
#include "dht/hash.h"
#include "rating/matrix.h"
#include "rating/types.h"

namespace p2prep::detect {

struct EpochSnapshot {
  /// One matrix per shard (one entry for standalone callers). Non-owner
  /// rows are empty in each shard matrix, so whole-window scans can just
  /// walk every matrix.
  std::vector<const rating::RatingMatrix*> matrices;

  /// Per-matrix dirty deltas, aligned with `matrices`. Empty when the
  /// host does not track dirty cells; detectors then rebuild any cached
  /// state from scratch. A delta with complete == false forces the same.
  std::vector<rating::DirtyCells> dirty;

  /// Per-node owner table (node id -> index into `matrices`). The service
  /// fills it from its live ShardMap, so detectors resolve rows correctly
  /// across resizes. When empty, owner_of falls back to the legacy modulo
  /// partition (standalone multi-matrix callers that partition that way).
  std::vector<std::uint32_t> owners;

  /// Optional host-provided thread lender. Detectors that support
  /// range-partitioned scans run their tasks through it (merging results
  /// in task-index order, so the report stays byte-identical to a serial
  /// pass); null means serial. Not owned; valid for the on_epoch() call.
  Executor* executor = nullptr;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return matrices.empty() ? 0 : matrices.front()->size();
  }

  /// Index of the matrix owning node `id`'s row (0 for single-matrix
  /// snapshots): the host's owner table when provided, else the modulo
  /// partition.
  [[nodiscard]] std::size_t owner_of(rating::NodeId id) const noexcept {
    if (matrices.size() <= 1) return 0;
    if (id < owners.size()) return owners[id];
    return static_cast<std::size_t>(dht::hash_node(id) %
                                    static_cast<dht::Key>(matrices.size()));
  }

  [[nodiscard]] const rating::RatingMatrix& matrix_of(
      rating::NodeId id) const {
    return *matrices[owner_of(id)];
  }

  /// Convenience single-matrix snapshot (no dirty delta — full scan).
  [[nodiscard]] static EpochSnapshot of(const rating::RatingMatrix& m) {
    EpochSnapshot snap;
    snap.matrices.push_back(&m);
    return snap;
  }
};

}  // namespace p2prep::detect
