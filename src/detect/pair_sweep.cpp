#include "detect/pair_sweep.h"

#include <algorithm>
#include <vector>

#include "core/formula.h"
#include "core/predicates.h"

namespace p2prep::detect {

namespace {

/// Splits [0, n) into contiguous ranges sized for the executor's
/// concurrency (over-decomposed 4x for load balance — the Basic sweep's
/// per-row work shrinks with the row index) and runs `range_fn(begin,
/// end, sub_report)` per range, merging sub-reports in range order.
core::DetectionReport sweep_ranges(
    const EpochSnapshot& snapshot, std::size_t n,
    const std::function<void(rating::NodeId, rating::NodeId,
                             core::DetectionReport&)>& range_fn) {
  std::size_t tasks = 1;
  if (snapshot.executor != nullptr) {
    tasks = std::min<std::size_t>(
        std::max<std::size_t>(1, snapshot.executor->concurrency() * 4),
        std::max<std::size_t>(1, n));
  }
  std::vector<core::DetectionReport> parts(tasks);
  const std::size_t chunk = tasks == 0 ? n : (n + tasks - 1) / tasks;
  run_tasks(snapshot.executor, tasks, [&](std::size_t t) {
    const auto begin = static_cast<rating::NodeId>(t * chunk);
    const auto end =
        static_cast<rating::NodeId>(std::min(n, (t + 1) * chunk));
    if (begin < end) range_fn(begin, end, parts[t]);
  });

  core::DetectionReport report = std::move(parts.front());
  for (std::size_t t = 1; t < parts.size(); ++t) {
    report.pairs.insert(report.pairs.end(), parts[t].pairs.begin(),
                        parts[t].pairs.end());
    report.cost += parts[t].cost;
  }
  report.canonicalize();
  return report;
}

}  // namespace

core::DetectionReport sweep_basic(const EpochSnapshot& snapshot,
                                  const core::DetectorConfig& cfg) {
  const std::size_t n = snapshot.num_nodes();

  // One-directional Basic predicate: the complement is derived from the
  // incremental row aggregates, but the paper's full-row scan cost is
  // charged (matching core::BasicCollusionDetector and the pre-registry
  // global sweep byte-for-byte).
  const auto basic_dir = [&](core::DetectionReport& report,
                             const rating::RatingMatrix& mi, rating::NodeId i,
                             rating::NodeId j, double& positive_fraction,
                             double& complement_fraction) {
    const rating::PairStats& cell = mi.cell(i, j);
    report.cost.add_scan(mi.size());
    rating::PairStats complement;
    if (cfg.joint_complement) {
      complement = mi.totals(i) - mi.frequent_totals(i);
      if (cell.total < cfg.frequency_min) complement -= cell;
    } else {
      complement = mi.totals(i) - cell;
    }
    report.cost.add_check();
    if (cell.total < cfg.frequency_min) return false;  // C4
    positive_fraction = cell.positive_fraction();
    report.cost.add_check();
    if (positive_fraction < cfg.positive_fraction_min) return false;  // C3
    report.cost.add_check();
    if (complement.total == 0) {
      complement_fraction = 0.0;
      return cfg.empty_complement_is_suspicious;
    }
    complement_fraction = complement.positive_fraction();
    return complement_fraction < cfg.complement_fraction_max;  // C2
  };

  return sweep_ranges(
      snapshot, n,
      [&](rating::NodeId begin, rating::NodeId end,
          core::DetectionReport& report) {
        // Marks-equivalent enumeration: each unordered pair is examined
        // once, from its first high-reputed endpoint in ascending order.
        // Partitioning by the first endpoint keeps each pair in exactly
        // one range.
        for (rating::NodeId a = begin; a < end; ++a) {
          for (rating::NodeId b = a + 1; b < n; ++b) {
            rating::NodeId i, j;
            report.cost.add_check();
            if (snapshot.matrix_of(a).high_reputed(a)) {
              i = a;
              j = b;
            } else if (snapshot.matrix_of(b).high_reputed(b)) {
              i = b;
              j = a;
            } else {
              continue;  // C1 fails on both sides
            }
            const rating::RatingMatrix& mi = snapshot.matrix_of(i);
            const rating::RatingMatrix& mj = snapshot.matrix_of(j);
            report.cost.add_scan();
            report.cost.add_check();
            if (cfg.require_mutual && !mj.high_reputed(j)) continue;

            core::PairEvidence ev;
            ev.first = i;
            ev.second = j;
            ev.ratings_to_first = mi.cell(i, j).total;
            ev.ratings_to_second = mj.cell(j, i).total;
            ev.global_rep_first = mi.global_reputation(i);
            ev.global_rep_second = mj.global_reputation(j);
            if (!basic_dir(report, mi, i, j, ev.positive_fraction_first,
                           ev.complement_fraction_first))
              continue;
            if (cfg.require_mutual &&
                !basic_dir(report, mj, j, i, ev.positive_fraction_second,
                           ev.complement_fraction_second))
              continue;
            report.pairs.push_back(ev);
          }
        }
      });
}

core::DetectionReport sweep_optimized(const EpochSnapshot& snapshot,
                                      const core::DetectorConfig& cfg) {
  const std::size_t n = snapshot.num_nodes();

  const auto optimized_dir = [&](core::DetectionReport& report,
                                 const rating::RatingMatrix& mi,
                                 rating::NodeId i, rating::NodeId j) {
    const rating::PairStats& cell = mi.cell(i, j);
    report.cost.add_scan();
    report.cost.add_check();
    if (cell.total < cfg.frequency_min) return false;  // C4
    if (!cfg.joint_complement) {
      report.cost.add_check();
      return core::formula2_satisfied(
          static_cast<double>(mi.window_reputation(i)),
          cfg.positive_fraction_min, cfg.complement_fraction_max,
          mi.totals(i).total, cell.total, cfg.inclusive_bounds);
    }
    report.cost.add_check();
    if (!core::positive_fraction_ok(cell, cfg)) return false;  // C3
    report.cost.add_scan();
    const rating::PairStats complement = mi.totals(i) - mi.frequent_totals(i);
    report.cost.add_check();
    return core::complement_ok(complement, cfg);  // C2
  };

  return sweep_ranges(
      snapshot, n,
      [&](rating::NodeId begin, rating::NodeId end,
          core::DetectionReport& report) {
        // Mirrors OptimizedCollusionDetector: all ordered (i, j); a
        // mutual pair surfaces from both sides and canonicalize() dedups.
        // Partitioning by i keeps each ordered pair in exactly one range.
        for (rating::NodeId i = begin; i < end; ++i) {
          const rating::RatingMatrix& mi = snapshot.matrix_of(i);
          report.cost.add_check();
          if (!mi.high_reputed(i)) continue;  // C1
          for (rating::NodeId j = 0; j < n; ++j) {
            if (j == i) continue;
            if (!optimized_dir(report, mi, i, j)) continue;
            const rating::RatingMatrix& mj = snapshot.matrix_of(j);
            if (cfg.require_mutual) {
              report.cost.add_check();
              if (!mj.high_reputed(j)) continue;
              if (!optimized_dir(report, mj, j, i)) continue;
            }
            core::PairEvidence ev;
            ev.first = i;
            ev.second = j;
            ev.ratings_to_first = mi.cell(i, j).total;
            ev.ratings_to_second = mj.cell(j, i).total;
            ev.positive_fraction_first = mi.cell(i, j).positive_fraction();
            ev.positive_fraction_second = mj.cell(j, i).positive_fraction();
            const rating::PairStats comp_i = mi.totals(i) - mi.cell(i, j);
            const rating::PairStats comp_j = mj.totals(j) - mj.cell(j, i);
            ev.complement_fraction_first = comp_i.positive_fraction();
            ev.complement_fraction_second = comp_j.positive_fraction();
            ev.global_rep_first = mi.global_reputation(i);
            ev.global_rep_second = mj.global_reputation(j);
            report.pairs.push_back(ev);
          }
        }
      });
}

}  // namespace p2prep::detect
