// DetectorRegistry: name -> factory map behind every detector
// instantiation (service shards, the global epoch runner, the CLI's
// one-shot detect command). The process-wide instance registers the four
// built-ins at construction; external code can register additional
// plugins (the ROADMAP's EigenTrust-variant engines will land here).
// Thread-safe: shards construct their detectors concurrently.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "detect/detector.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::detect {

class DetectorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Detector>(const core::DetectorConfig&)>;

  /// The process-wide registry, built on first use with the built-ins
  /// ("basic", "optimized", "group", "ring") already registered.
  [[nodiscard]] static DetectorRegistry& global();

  /// Registers a factory under `name`. Throws std::invalid_argument when
  /// the name is empty or already taken (plugins must not silently shadow
  /// built-ins).
  void register_detector(std::string name, Factory factory);

  /// Instantiates the detector registered under `name`. Throws
  /// std::invalid_argument naming every registered detector when `name`
  /// is unknown — the fail-fast path behind `--detector`.
  [[nodiscard]] std::unique_ptr<Detector> create(
      std::string_view name, const core::DetectorConfig& config) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, ascending.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  DetectorRegistry();  // registers the built-ins

  mutable util::Mutex mu_;
  std::map<std::string, Factory, std::less<>> factories_
      P2PREP_GUARDED_BY(mu_);
};

}  // namespace p2prep::detect
