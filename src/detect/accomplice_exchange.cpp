#include "detect/accomplice_exchange.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/predicates.h"
#include "util/cost.h"

namespace p2prep::detect {

namespace {

struct Candidate {
  rating::NodeId d = 0;  ///< Frontier node (already flagged).
  rating::NodeId k = 0;  ///< Its mutual-boosting partner.
};

}  // namespace

std::uint32_t propagate_accomplices(const EpochSnapshot& snapshot,
                                    const core::DetectorConfig& config,
                                    core::DetectionReport& report) {
  if (!config.flag_accomplices ||
      (report.pairs.empty() && report.rings.empty())) {
    return 0;
  }

  std::unordered_set<std::uint64_t> known_pairs;
  std::unordered_set<rating::NodeId> flagged;
  std::vector<rating::NodeId> frontier;
  for (const core::PairEvidence& e : report.pairs) {
    known_pairs.insert(core::pair_key(e.first, e.second));
    if (flagged.insert(e.first).second) frontier.push_back(e.first);
    if (flagged.insert(e.second).second) frontier.push_back(e.second);
  }
  // Ring members seed the fixpoint too: an accomplice of a ring colluder
  // is as culpable as one of a pair colluder.
  for (const core::RingEvidence& r : report.rings) {
    for (rating::NodeId m : r.members) {
      if (flagged.insert(m).second) frontier.push_back(m);
    }
  }

  const std::size_t num_groups = std::max<std::size_t>(
      1, snapshot.matrices.size());

  std::uint32_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    // Partition the round's frontier by owner shard, ascending node order
    // within each group, so the per-group scans and the shard-order merge
    // below are deterministic regardless of how the frontier accumulated.
    std::sort(frontier.begin(), frontier.end());
    std::vector<std::vector<rating::NodeId>> groups(num_groups);
    for (rating::NodeId d : frontier) {
      groups[snapshot.owner_of(d)].push_back(d);
    }

    // Each group scans its nodes' rows in the owner matrix and collects
    // candidates plus the cost it charged; the exchange step merges both
    // in shard-index order.
    std::vector<std::vector<Candidate>> found(num_groups);
    std::vector<util::CostCounter> costs(num_groups);
    run_tasks(snapshot.executor, num_groups, [&](std::size_t g) {
      util::CostCounter& cost = costs[g];
      for (rating::NodeId d : groups[g]) {
        // Candidate accomplices are raters of d's row: a node that never
        // rated d cannot be in a mutual frequent relationship with it
        // (C4 needs N_(d,k) >= T_N >= 1).
        snapshot.matrix_of(d).for_each_cell(
            d, [&](rating::NodeId k, const rating::PairStats& from_k) {
              if (k == d ||
                  known_pairs.contains(core::pair_key(d, k)))
                return;
              cost.add_scan();
              cost.add_check();
              if (!core::frequency_ok(from_k, config) ||
                  !core::positive_fraction_ok(from_k, config))
                return;
              const rating::PairStats& from_d =
                  snapshot.matrix_of(k).cell(k, d);
              cost.add_scan();
              cost.add_check();
              if (!core::frequency_ok(from_d, config) ||
                  !core::positive_fraction_ok(from_d, config))
                return;
              found[g].push_back({d, k});
            });
      }
    });

    // Exchange: merge every shard's candidates into the global flagged
    // set. Runs single-threaded between rounds — this is the fixpoint's
    // synchronization point, and where duplicates discovered by two
    // shards in the same round (d found k, k found d) collapse.
    frontier.clear();
    for (std::size_t g = 0; g < num_groups; ++g) {
      report.cost += costs[g];
      for (const Candidate& c : found[g]) {
        if (!known_pairs.insert(core::pair_key(c.d, c.k)).second) continue;
        const rating::RatingMatrix& md = snapshot.matrix_of(c.d);
        const rating::RatingMatrix& mk = snapshot.matrix_of(c.k);
        core::PairEvidence ev;
        ev.first = c.d;
        ev.second = c.k;
        ev.ratings_to_first = md.cell(c.d, c.k).total;
        ev.ratings_to_second = mk.cell(c.k, c.d).total;
        ev.positive_fraction_first = md.cell(c.d, c.k).positive_fraction();
        ev.positive_fraction_second = mk.cell(c.k, c.d).positive_fraction();
        ev.complement_fraction_first =
            (md.totals(c.d) - md.cell(c.d, c.k)).positive_fraction();
        ev.complement_fraction_second =
            (mk.totals(c.k) - mk.cell(c.k, c.d)).positive_fraction();
        ev.global_rep_first = md.global_reputation(c.d);
        ev.global_rep_second = mk.global_reputation(c.k);
        report.pairs.push_back(ev);
        if (flagged.insert(c.k).second) frontier.push_back(c.k);
      }
    }
  }

  report.canonicalize();
  return rounds;
}

}  // namespace p2prep::detect
