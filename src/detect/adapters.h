// Registry adapters for the three pre-existing core detectors. Each wraps
// the core implementation unchanged — the differential suite proves the
// adapted reports byte-identical to direct instantiation — and translates
// its output into the shared core::DetectionReport shape:
//
//  * BasicAdapter / OptimizedAdapter — pass the snapshot's matrix through
//    core::{Basic,Optimized}CollusionDetector::detect verbatim.
//  * GroupAdapter — runs core::GroupCollusionDetector and re-expresses
//    each CollusionGroup as a RingEvidence record (members + inside /
//    outside aggregates), so group membership flows through the same
//    suppression, accomplice and RPC paths as ring membership.
//
// Basic/Optimized accept multi-matrix (sharded) snapshots too: those run
// the range-partitioned detect::sweep_{basic,optimized} plus the
// cross-shard accomplice exchange, byte-identical after
// format_epoch_report to the single-matrix path. Group stays
// single-matrix (the service restricts it to one shard), so a
// multi-matrix snapshot there is a host bug — std::logic_error.
#pragma once

#include "core/basic_detector.h"
#include "core/group_detector.h"
#include "core/optimized_detector.h"
#include "detect/detector.h"

namespace p2prep::detect {

class BasicAdapter final : public Detector {
 public:
  explicit BasicAdapter(core::DetectorConfig config)
      : Detector(config), inner_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "basic";
  }

  void on_epoch(const EpochSnapshot& snapshot,
                core::DetectionReport& report) override;

 private:
  core::BasicCollusionDetector inner_;
};

class OptimizedAdapter final : public Detector {
 public:
  explicit OptimizedAdapter(core::DetectorConfig config)
      : Detector(config), inner_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "optimized";
  }

  void on_epoch(const EpochSnapshot& snapshot,
                core::DetectionReport& report) override;

 private:
  core::OptimizedCollusionDetector inner_;
};

class GroupAdapter final : public Detector {
 public:
  explicit GroupAdapter(core::DetectorConfig config)
      : Detector(config), inner_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "group";
  }

  void on_epoch(const EpochSnapshot& snapshot,
                core::DetectionReport& report) override;

 private:
  core::GroupCollusionDetector inner_;
};

}  // namespace p2prep::detect
