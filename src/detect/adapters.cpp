#include "detect/adapters.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "detect/accomplice_exchange.h"
#include "detect/pair_sweep.h"

namespace p2prep::detect {

namespace {

const rating::RatingMatrix& single_matrix(const EpochSnapshot& snapshot,
                                          std::string_view detector) {
  if (snapshot.matrices.size() != 1) {
    throw std::logic_error(std::string(detector) +
                           " detector requires a single-matrix snapshot");
  }
  return *snapshot.matrices.front();
}

class ScanTimer {
 public:
  explicit ScanTimer(DetectorStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~ScanTimer() {
    stats_.scan_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  DetectorStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void BasicAdapter::on_epoch(const EpochSnapshot& snapshot,
                            core::DetectionReport& report) {
  const ScanTimer timer(stats_);
  if (snapshot.matrices.size() == 1) {
    // Single-matrix hosts keep the core detector verbatim — the
    // differential suite proves this path byte-identical (cost included)
    // to direct instantiation.
    report = inner_.detect(single_matrix(snapshot, name()));
    stats_.accomplice_rounds = 0;
    return;
  }
  // Multi-matrix (sharded) snapshots go through the range-partitioned
  // sweep + flagged-set exchange; reports match the single-matrix path
  // byte-for-byte after format_epoch_report (which excludes cost).
  report = sweep_basic(snapshot, config_);
  stats_.accomplice_rounds =
      detect::propagate_accomplices(snapshot, config_, report);
}

void OptimizedAdapter::on_epoch(const EpochSnapshot& snapshot,
                                core::DetectionReport& report) {
  const ScanTimer timer(stats_);
  if (snapshot.matrices.size() == 1) {
    report = inner_.detect(single_matrix(snapshot, name()));
    stats_.accomplice_rounds = 0;
    return;
  }
  report = sweep_optimized(snapshot, config_);
  stats_.accomplice_rounds =
      detect::propagate_accomplices(snapshot, config_, report);
}

void GroupAdapter::on_epoch(const EpochSnapshot& snapshot,
                            core::DetectionReport& report) {
  const ScanTimer timer(stats_);
  const rating::RatingMatrix& matrix = single_matrix(snapshot, name());
  const core::GroupDetectionReport groups = inner_.detect(matrix);
  report.cost = groups.cost;
  report.rings.reserve(groups.groups.size());
  for (const core::CollusionGroup& g : groups.groups) {
    core::RingEvidence ev;
    ev.members = g.members;
    ev.outside_ratings = g.outside_ratings;
    ev.outside_positive_fraction = g.outside_positive_fraction;
    // Inside aggregates over the group's mutual-boosting edges, both
    // directions (the group detector records only the edge list).
    rating::PairStats inside;
    std::uint32_t min_freq = 0;
    for (const auto& [a, b] : g.edges) {
      const rating::PairStats& ab = matrix.cell(a, b);
      const rating::PairStats& ba = matrix.cell(b, a);
      inside += ab;
      inside += ba;
      const std::uint32_t weakest = std::min(ab.total, ba.total);
      min_freq = min_freq == 0 ? weakest : std::min(min_freq, weakest);
    }
    ev.internal_ratings = inside.total;
    ev.internal_positive_fraction = inside.positive_fraction();
    ev.min_internal_frequency = min_freq;
    report.rings.push_back(std::move(ev));
  }
  report.canonicalize();
  stats_.rings_found = report.rings.size();
  for (const auto& r : report.rings) {
    stats_.largest_ring = std::max<std::uint64_t>(stats_.largest_ring,
                                                  r.members.size());
  }
}

}  // namespace p2prep::detect
