// Range-partitioned cross-shard pair sweeps (DESIGN.md §15).
//
// These are the Basic / Optimized pairwise scans of the paper, lifted
// from the service's global-epoch body into the detect layer and
// generalized over an EpochSnapshot: every quantity about node i (row,
// totals, frequent aggregate, window reputation) is read from
// snapshot.matrix_of(i) — the owner shard's matrix — so the same code
// serves one matrix or S shard matrices, and a single-owner snapshot
// reproduces the single-matrix sweep exactly.
//
// Parallelism: the outer node index [0, n) is split into contiguous
// ranges, one task per range, run through snapshot.executor (serial when
// null). Each task fills a task-local sub-report; the merge concatenates
// pairs in range order and sums the cost counters, so the merged report
// is identical to a serial pass for ANY task count — every (ordered or
// unordered) pair is examined by exactly one range, charging the same
// scans/checks wherever it runs, and canonicalize() fixes the final
// ordering regardless. This is the determinism argument the
// parallel-vs-serial differential suite (tests/differential/
// parallel_epoch_test.cpp) enforces byte-for-byte.
#pragma once

#include "core/config.h"
#include "core/evidence.h"
#include "detect/snapshot.h"

namespace p2prep::detect {

/// Basic-method sweep: each unordered pair examined once, from its first
/// high-reputed endpoint in ascending order, with the paper's full-row
/// complement scan charged per direction. Returns the canonicalized
/// report (pairs only — rings never come from the pairwise methods).
[[nodiscard]] core::DetectionReport sweep_basic(
    const EpochSnapshot& snapshot, const core::DetectorConfig& config);

/// Optimized-method sweep: all ordered (i, j) with the incremental-bound
/// predicates; a mutual pair surfaces from both sides and canonicalize()
/// dedups. Returns the canonicalized report.
[[nodiscard]] core::DetectionReport sweep_optimized(
    const EpochSnapshot& snapshot, const core::DetectorConfig& config);

}  // namespace p2prep::detect
