#include "rating/matrix.h"

#include <algorithm>
#include <cassert>

namespace p2prep::rating {

RatingMatrix::RatingMatrix(std::size_t num_nodes)
    : cells_(num_nodes, num_nodes),
      meta_(num_nodes),
      checked_(num_nodes * num_nodes, 0) {}

RatingMatrix RatingMatrix::build(const RatingStore& store,
                                 std::span<const double> global_reps,
                                 double high_rep_threshold,
                                 std::uint32_t frequency_threshold) {
  const std::size_t n = store.num_nodes();
  assert(global_reps.size() == n);
  RatingMatrix m(n);
  m.frequency_threshold_ = frequency_threshold;
  for (NodeId i = 0; i < n; ++i) {
    auto& meta = m.meta_[i];
    meta.global_rep = global_reps[i];
    meta.totals = store.window_totals(i);
    meta.high_reputed = global_reps[i] > high_rep_threshold;
    if (meta.high_reputed) ++m.high_count_;
    store.for_each_window_rater(
        i, [&m, i, frequency_threshold, &meta](NodeId rater,
                                               const PairStats& stats) {
          m.cells_(i, rater) = stats;
          if (frequency_threshold > 0 && stats.total >= frequency_threshold)
            meta.frequent_totals += stats;
        });
  }
  return m;
}

void RatingMatrix::set_global_reputation(NodeId i, double rep,
                                         double high_rep_threshold) {
  auto& meta = meta_.at(i);
  const bool was_high = meta.high_reputed;
  meta.global_rep = rep;
  meta.high_reputed = rep > high_rep_threshold;
  if (meta.high_reputed && !was_high) ++high_count_;
  if (!meta.high_reputed && was_high) --high_count_;
}

void RatingMatrix::add_rating(NodeId ratee, NodeId rater, Score score) {
  assert(ratee < size() && rater < size() && ratee != rater);
  PairStats& cell = cells_(ratee, rater);
  cell.add(score);
  meta_[ratee].totals.add(score);
  // Incremental frequent-rater aggregate: when a cell crosses the
  // threshold its whole history joins the aggregate; afterwards each new
  // rating is added directly. This is exactly how a deployed manager
  // keeps the joint-complement state at O(1) per rating.
  if (frequency_threshold_ > 0 && cell.total >= frequency_threshold_) {
    if (cell.total == frequency_threshold_) {
      meta_[ratee].frequent_totals += cell;
    } else {
      meta_[ratee].frequent_totals.add(score);
    }
  }
}

void RatingMatrix::clear_window() {
  for (NodeId i = 0; i < size(); ++i) {
    auto& meta = meta_[i];
    if (meta.totals.total == 0) continue;  // row never touched this window
    auto row = cells_.row(i);
    std::fill(row.begin(), row.end(), PairStats{});
    meta.totals = PairStats{};
    meta.frequent_totals = PairStats{};
  }
  if (any_marks_) clear_marks();
}

void RatingMatrix::restore_cell(NodeId ratee, NodeId rater,
                                const PairStats& stats) {
  assert(ratee < size() && rater < size() && ratee != rater);
  PairStats& cell = cells_(ratee, rater);
  assert(cell.total == 0 && "restore_cell target must be empty");
  cell = stats;
  meta_[ratee].totals += stats;
  if (frequency_threshold_ > 0 && stats.total >= frequency_threshold_) {
    meta_[ratee].frequent_totals += stats;
  }
}

bool RatingMatrix::checked(NodeId i, NodeId j) const {
  assert(i < size() && j < size());
  return checked_[static_cast<std::size_t>(i) * size() + j] != 0;
}

void RatingMatrix::mark_checked(NodeId i, NodeId j) {
  assert(i < size() && j < size());
  checked_[static_cast<std::size_t>(i) * size() + j] = 1;
  checked_[static_cast<std::size_t>(j) * size() + i] = 1;
  any_marks_ = true;
}

void RatingMatrix::clear_marks() {
  checked_.assign(checked_.size(), 0);
  any_marks_ = false;
}

}  // namespace p2prep::rating
