#include "rating/matrix.h"

#include <cassert>
#include <utility>

namespace p2prep::rating {

namespace {

/// Canonical key of the unordered pair {i, j} for the checked-pair marks.
constexpr std::uint64_t unordered_pair_key(NodeId i, NodeId j) noexcept {
  const NodeId lo = i < j ? i : j;
  const NodeId hi = i < j ? j : i;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

RatingMatrix::RatingMatrix(std::size_t num_nodes, MatrixBackend backend)
    : backend_(backend), meta_(num_nodes) {
  if (backend_ == MatrixBackend::kDense) {
    dense_ = util::Matrix<PairStats>(num_nodes, num_nodes);
  } else {
    sparse_.resize(num_nodes);
  }
}

RatingMatrix RatingMatrix::build(const RatingStore& store,
                                 std::span<const double> global_reps,
                                 double high_rep_threshold,
                                 std::uint32_t frequency_threshold,
                                 MatrixBackend backend) {
  const std::size_t n = store.num_nodes();
  assert(global_reps.size() == n);
  RatingMatrix m(n, backend);
  m.frequency_threshold_ = frequency_threshold;
  for (NodeId i = 0; i < n; ++i) {
    auto& meta = m.meta_[i];
    meta.global_rep = global_reps[i];
    meta.totals = store.window_totals(i);
    meta.high_reputed = global_reps[i] > high_rep_threshold;
    if (meta.high_reputed) ++m.high_count_;
    store.for_each_window_rater(
        i, [&m, i, frequency_threshold, &meta](NodeId rater,
                                               const PairStats& stats) {
          m.mutable_cell(i, rater) = stats;
          if (frequency_threshold > 0 && stats.total >= frequency_threshold)
            meta.frequent_totals += stats;
        });
  }
  return m;
}

PairStats& RatingMatrix::mutable_cell(NodeId ratee, NodeId rater) {
  assert(ratee < size() && rater < size());
  if (backend_ == MatrixBackend::kDense) return dense_(ratee, rater);
  return sparse_[ratee][rater];
}

std::size_t RatingMatrix::approx_memory_bytes() const noexcept {
  std::size_t bytes = sizeof(RatingMatrix);
  bytes += meta_.capacity() * sizeof(RowMeta);
  if (backend_ == MatrixBackend::kDense) {
    bytes += dense_.rows() * dense_.cols() * sizeof(PairStats);
  } else {
    for (const SparseRow& row : sparse_) {
      bytes += sizeof(SparseRow);
      bytes += row.bucket_count() * sizeof(void*);
      bytes += row.size() *
               (sizeof(std::pair<const NodeId, PairStats>) + 2 * sizeof(void*));
    }
  }
  bytes += checked_.bucket_count() * sizeof(void*);
  bytes += checked_.size() * (sizeof(std::uint64_t) + 2 * sizeof(void*));
  return bytes;
}

std::size_t RatingMatrix::dense_footprint_bytes(std::size_t num_nodes) noexcept {
  return sizeof(RatingMatrix) + num_nodes * sizeof(RowMeta) +
         num_nodes * num_nodes * sizeof(PairStats);
}

void RatingMatrix::set_global_reputation(NodeId i, double rep,
                                         double high_rep_threshold) {
  auto& meta = meta_.at(i);
  const bool was_high = meta.high_reputed;
  meta.global_rep = rep;
  meta.high_reputed = rep > high_rep_threshold;
  if (meta.high_reputed && !was_high) ++high_count_;
  if (!meta.high_reputed && was_high) --high_count_;
}

void RatingMatrix::add_rating(NodeId ratee, NodeId rater, Score score) {
  assert(ratee < size() && rater < size() && ratee != rater);
  PairStats& cell = mutable_cell(ratee, rater);
  cell.add(score);
  meta_[ratee].totals.add(score);
  mark_dirty(ratee, rater);
  // Incremental frequent-rater aggregate: when a cell crosses the
  // threshold its whole history joins the aggregate; afterwards each new
  // rating is added directly. This is exactly how a deployed manager
  // keeps the joint-complement state at O(1) per rating.
  if (frequency_threshold_ > 0 && cell.total >= frequency_threshold_) {
    if (cell.total == frequency_threshold_) {
      meta_[ratee].frequent_totals += cell;
    } else {
      meta_[ratee].frequent_totals.add(score);
    }
  }
}

void RatingMatrix::clear_window() {
  for (NodeId i = 0; i < size(); ++i) {
    auto& meta = meta_[i];
    if (meta.totals.total == 0) continue;  // row never touched this window
    if (backend_ == MatrixBackend::kDense) {
      auto row = dense_.row(i);
      std::fill(row.begin(), row.end(), PairStats{});
    } else {
      sparse_[i].clear();
    }
    meta.totals = PairStats{};
    meta.frequent_totals = PairStats{};
  }
  if (!checked_.empty()) clear_marks();
  if (dirty_on_) {
    // Cells were wiped wholesale without per-cell dirty records; the next
    // delta cannot describe the change, so force a full rebuild.
    dirty_.clear();
    dirty_complete_ = false;
  }
}

void RatingMatrix::restore_cell(NodeId ratee, NodeId rater,
                                const PairStats& stats) {
  assert(ratee < size() && rater < size() && ratee != rater);
  PairStats& cell = mutable_cell(ratee, rater);
  assert(cell.total == 0 && "restore_cell target must be empty");
  cell = stats;
  meta_[ratee].totals += stats;
  if (frequency_threshold_ > 0 && stats.total >= frequency_threshold_) {
    meta_[ratee].frequent_totals += stats;
  }
  mark_dirty(ratee, rater);
}

std::vector<std::pair<NodeId, PairStats>> RatingMatrix::take_row(
    NodeId ratee) {
  assert(ratee < size());
  std::vector<std::pair<NodeId, PairStats>> cells;
  for_each_nonzero_cell(ratee, [&cells](NodeId rater, const PairStats& stats) {
    cells.emplace_back(rater, stats);
  });
  if (cells.empty()) return cells;

  if (backend_ == MatrixBackend::kDense) {
    auto row = dense_.row(ratee);
    std::fill(row.begin(), row.end(), PairStats{});
  } else {
    sparse_[ratee].clear();
  }
  meta_[ratee].totals = PairStats{};
  meta_[ratee].frequent_totals = PairStats{};
  if (dirty_on_) {
    // Drop stale dirty keys for the row; the removal itself is not
    // expressible as a delta, so force a full rebuild on the next take.
    std::erase_if(dirty_, [ratee](std::uint64_t key) {
      return static_cast<NodeId>(key >> 32) == ratee;
    });
    dirty_complete_ = false;
  }
  return cells;
}

void RatingMatrix::set_dirty_tracking(bool on) {
  dirty_on_ = on;
  dirty_complete_ = false;  // mutations before this call were not observed
  dirty_.clear();
}

DirtyCells RatingMatrix::take_dirty_cells() {
  DirtyCells result;
  result.complete = dirty_complete_;
  result.cells.reserve(dirty_.size());
  for (std::uint64_t key : dirty_) {
    result.cells.emplace_back(static_cast<NodeId>(key >> 32),
                              static_cast<NodeId>(key & 0xffffffffu));
  }
  std::sort(result.cells.begin(), result.cells.end());
  dirty_.clear();
  dirty_complete_ = true;
  return result;
}

bool RatingMatrix::checked(NodeId i, NodeId j) const {
  assert(i < size() && j < size());
  return checked_.contains(unordered_pair_key(i, j));
}

void RatingMatrix::mark_checked(NodeId i, NodeId j) {
  assert(i < size() && j < size());
  checked_.insert(unordered_pair_key(i, j));
}

void RatingMatrix::clear_marks() { checked_.clear(); }

}  // namespace p2prep::rating
