// The reputation manager's dense n x n rating matrix (paper Sec. IV-B).
//
// Row i describes ratee n_i; cell (i, j) holds the PairStats of rater n_j
// for n_i over the current update window T — exactly the paper's
// a_ij = <ID_i, R_i, N_(i,j), N+_(i,j)>. Per the paper, rows are only
// "non-empty" for high-reputed nodes (R_i > T_R); we keep all rows
// allocated but flag which are live, which is equivalent and lets the
// detectors charge the same costs the paper's algorithm would.
//
// Two reputation views coexist on purpose:
//  * `global_reputation` — whatever the host reputation system computed
//    (e.g. EigenTrust scores). This is what T_R filters on (C1).
//  * `window_reputation` — the summation value R_i = N+_i - N-_i over the
//    same window the cells cover. Formula (1)/(2) of the paper is derived
//    under this model, so the Optimized detector evaluates its bound
//    against this view; quantities stay self-consistent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rating/pair_stats.h"
#include "rating/store.h"
#include "rating/types.h"
#include "util/matrix.h"

namespace p2prep::rating {

class RatingMatrix {
 public:
  RatingMatrix() = default;
  explicit RatingMatrix(std::size_t num_nodes);

  /// Snapshots the window horizon of `store` into a dense matrix.
  /// `global_reps[i]` is the host system's reputation for node i (its size
  /// must equal store.num_nodes()); rows with global_reps[i] > high_rep_threshold
  /// are flagged live. When `frequency_threshold` > 0, each row also
  /// carries the aggregate of its frequent raters' cells (every rater with
  /// N_(i,k) >= frequency_threshold) — the state a deployed manager keeps
  /// incrementally and the Optimized detector's joint-complement test
  /// reads in O(1).
  static RatingMatrix build(const RatingStore& store,
                            std::span<const double> global_reps,
                            double high_rep_threshold,
                            std::uint32_t frequency_threshold = 0);

  [[nodiscard]] std::size_t size() const noexcept { return meta_.size(); }

  /// Number of live (high-reputed) rows — the paper's m.
  [[nodiscard]] std::size_t high_reputed_count() const noexcept {
    return high_count_;
  }

  [[nodiscard]] bool high_reputed(NodeId i) const {
    return meta_.at(i).high_reputed;
  }
  [[nodiscard]] double global_reputation(NodeId i) const {
    return meta_.at(i).global_rep;
  }
  /// Window totals N_i / N+_i / N-_i for ratee i.
  [[nodiscard]] const PairStats& totals(NodeId i) const {
    return meta_.at(i).totals;
  }
  /// Summation reputation over the window: N+_i - N-_i.
  [[nodiscard]] std::int64_t window_reputation(NodeId i) const {
    return meta_.at(i).totals.reputation_delta();
  }

  /// Aggregate over row i's frequent raters (N_(i,k) >= the matrix's
  /// frequency threshold). Zero stats when no threshold was configured.
  [[nodiscard]] const PairStats& frequent_totals(NodeId i) const {
    return meta_.at(i).frequent_totals;
  }
  /// The frequency threshold the frequent aggregates were built with
  /// (0 = none).
  [[nodiscard]] std::uint32_t frequency_threshold() const noexcept {
    return frequency_threshold_;
  }

  [[nodiscard]] const PairStats& cell(NodeId ratee, NodeId rater) const {
    return cells_(ratee, rater);
  }
  [[nodiscard]] std::span<const PairStats> row(NodeId ratee) const {
    return cells_.row(ratee);
  }

  // --- Direct mutation (for tests and incremental managers) ---

  void set_global_reputation(NodeId i, double rep, double high_rep_threshold);
  void add_rating(NodeId ratee, NodeId rater, Score score);
  /// Configures the frequency threshold for the incremental frequent
  /// aggregates. Call before the first add_rating.
  void set_frequency_threshold(std::uint32_t t) noexcept {
    frequency_threshold_ = t;
  }

  /// Resets the update window in place: zeroes every cell, the per-row
  /// totals / frequent aggregates, and the checked-pair marks. Global
  /// reputations, high-reputed flags, and the frequency threshold are
  /// preserved — they belong to the host system, not the window. Rows
  /// whose totals are already zero are skipped, so the cost is
  /// proportional to the touched part of the matrix.
  void clear_window();

  /// Restores a window cell verbatim (checkpoint recovery): installs
  /// `stats` at (ratee, rater) and folds it into the row totals and, when
  /// frequent, the frequent aggregate. The target cell must be empty.
  void restore_cell(NodeId ratee, NodeId rater, const PairStats& stats);

  // --- Checked-pair marking (paper: "the manager marks a_ij and a_ji") ---

  [[nodiscard]] bool checked(NodeId i, NodeId j) const;
  /// Marks the unordered pair {i, j}: both a_ij and a_ji.
  void mark_checked(NodeId i, NodeId j);
  void clear_marks();

 private:
  struct RowMeta {
    double global_rep = 0.0;
    PairStats totals;
    PairStats frequent_totals;
    bool high_reputed = false;
  };

  util::Matrix<PairStats> cells_;
  std::vector<RowMeta> meta_;
  std::vector<std::uint8_t> checked_;  // n*n flags for pair marking
  std::size_t high_count_ = 0;
  std::uint32_t frequency_threshold_ = 0;
  bool any_marks_ = false;  // lets clear_window skip the n*n mark sweep
};

}  // namespace p2prep::rating
