// The reputation manager's n x n rating matrix (paper Sec. IV-B).
//
// Row i describes ratee n_i; cell (i, j) holds the PairStats of rater n_j
// for n_i over the current update window T — exactly the paper's
// a_ij = <ID_i, R_i, N_(i,j), N+_(i,j)>. Per the paper, rows are only
// "non-empty" for high-reputed nodes (R_i > T_R); we keep all rows
// allocated but flag which are live, which is equivalent and lets the
// detectors charge the same costs the paper's algorithm would.
//
// Two storage backends implement the same cell contract (MatrixBackend):
//  * kDense  — one contiguous n x n block (util::Matrix). Element access
//    and full-row scans cost exactly what the paper's complexity analysis
//    charges, so this is the reference ("oracle") representation.
//  * kSparse — one hash map of non-empty cells per row. Real rating graphs
//    are extremely sparse (the Amazon/Overstock traces), so this cuts the
//    footprint from O(n^2) to O(nnz) while producing bit-identical
//    detection results; tests/differential/ proves the equivalence against
//    the dense oracle. Sharded service managers default to this backend.
//
// Detector hot paths consume rows through the backend-agnostic visitors
// (for_each_cell / cell_or_null) instead of indexing a dense span, so the
// Basic method's inner scan is O(stored cells of the row): n on the dense
// oracle (the paper's cost), row nnz on the sparse backend.
//
// Two reputation views coexist on purpose:
//  * `global_reputation` — whatever the host reputation system computed
//    (e.g. EigenTrust scores). This is what T_R filters on (C1).
//  * `window_reputation` — the summation value R_i = N+_i - N-_i over the
//    same window the cells cover. Formula (1)/(2) of the paper is derived
//    under this model, so the Optimized detector evaluates its bound
//    against this view; quantities stay self-consistent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rating/pair_stats.h"
#include "rating/store.h"
#include "rating/types.h"
#include "util/matrix.h"

namespace p2prep::rating {

/// Storage representation of a RatingMatrix. Every detector verdict is
/// identical across backends (differential-tested); only memory footprint
/// and per-row scan cost differ.
enum class MatrixBackend : std::uint8_t {
  kDense,   ///< Contiguous n x n cells — the paper-cost oracle.
  kSparse,  ///< Hash-map row of non-empty cells — O(nnz) memory.
};

[[nodiscard]] constexpr std::string_view to_string(MatrixBackend b) noexcept {
  return b == MatrixBackend::kDense ? "dense" : "sparse";
}

/// Cells mutated since the last take_dirty_cells() call, for incremental
/// consumers (the streaming ring detector caches derived per-cell state
/// between epochs and re-derives only these). `complete == false` means
/// the delta does not cover every mutation since the last take (tracking
/// was just enabled, or clear_window() wiped cells wholesale) — the
/// consumer must rebuild from the full matrix instead.
struct DirtyCells {
  bool complete = false;
  /// (ratee, rater) pairs, ascending — deterministic consumption order.
  std::vector<std::pair<NodeId, NodeId>> cells;
};

class RatingMatrix {
 public:
  RatingMatrix() = default;
  explicit RatingMatrix(std::size_t num_nodes,
                        MatrixBackend backend = MatrixBackend::kDense);

  /// Snapshots the window horizon of `store` into a matrix with the given
  /// backend. `global_reps[i]` is the host system's reputation for node i
  /// (its size must equal store.num_nodes()); rows with
  /// global_reps[i] > high_rep_threshold are flagged live. When
  /// `frequency_threshold` > 0, each row also carries the aggregate of its
  /// frequent raters' cells (every rater with N_(i,k) >= frequency_threshold)
  /// — the state a deployed manager keeps incrementally and the Optimized
  /// detector's joint-complement test reads in O(1).
  static RatingMatrix build(const RatingStore& store,
                            std::span<const double> global_reps,
                            double high_rep_threshold,
                            std::uint32_t frequency_threshold = 0,
                            MatrixBackend backend = MatrixBackend::kDense);

  [[nodiscard]] MatrixBackend backend() const noexcept { return backend_; }

  [[nodiscard]] std::size_t size() const noexcept { return meta_.size(); }

  /// Number of live (high-reputed) rows — the paper's m.
  [[nodiscard]] std::size_t high_reputed_count() const noexcept {
    return high_count_;
  }

  [[nodiscard]] bool high_reputed(NodeId i) const {
    return meta_.at(i).high_reputed;
  }
  [[nodiscard]] double global_reputation(NodeId i) const {
    return meta_.at(i).global_rep;
  }
  /// Window totals N_i / N+_i / N-_i for ratee i.
  [[nodiscard]] const PairStats& totals(NodeId i) const {
    return meta_.at(i).totals;
  }
  /// Summation reputation over the window: N+_i - N-_i.
  [[nodiscard]] std::int64_t window_reputation(NodeId i) const {
    return meta_.at(i).totals.reputation_delta();
  }

  /// Aggregate over row i's frequent raters (N_(i,k) >= the matrix's
  /// frequency threshold). Zero stats when no threshold was configured.
  [[nodiscard]] const PairStats& frequent_totals(NodeId i) const {
    return meta_.at(i).frequent_totals;
  }
  /// The frequency threshold the frequent aggregates were built with
  /// (0 = none).
  [[nodiscard]] std::uint32_t frequency_threshold() const noexcept {
    return frequency_threshold_;
  }

  /// a_(ratee,rater). On the sparse backend an absent cell reads as the
  /// empty aggregate, exactly like an untouched dense cell. O(1) on both
  /// backends — the Optimized method's per-pair read.
  [[nodiscard]] const PairStats& cell(NodeId ratee, NodeId rater) const {
    if (backend_ == MatrixBackend::kDense) return dense_(ratee, rater);
    const SparseRow& row = sparse_.at(ratee);
    const auto it = row.find(rater);
    return it == row.end() ? kEmptyCell : it->second;
  }

  /// Pointer to a_(ratee,rater) when the cell holds ratings (total > 0),
  /// nullptr otherwise — identical across backends.
  [[nodiscard]] const PairStats* cell_or_null(NodeId ratee,
                                              NodeId rater) const {
    const PairStats& stats = cell(ratee, rater);
    return stats.total > 0 ? &stats : nullptr;
  }

  /// Visits every STORED cell of row `ratee` as fn(rater, stats). The
  /// dense backend stores all n columns (including empty ones — the
  /// paper's full-row scan); the sparse backend stores only non-empty
  /// cells. Iteration order is unspecified; callers must accumulate
  /// order-independently. This is the detector hot-path row iterator.
  template <typename Fn>
  void for_each_cell(NodeId ratee, Fn&& fn) const {
    if (backend_ == MatrixBackend::kDense) {
      const auto row = dense_.row(ratee);
      for (NodeId k = 0; k < row.size(); ++k) fn(k, row[k]);
    } else {
      for (const auto& [k, stats] : sparse_.at(ratee)) fn(k, stats);
    }
  }

  /// Visits the non-empty cells (total > 0) of row `ratee` in ascending
  /// rater order on BOTH backends — the deterministic enumeration used by
  /// snapshot/checkpoint/transfer paths, byte-stable across backends.
  template <typename Fn>
  void for_each_nonzero_cell(NodeId ratee, Fn&& fn) const {
    if (backend_ == MatrixBackend::kDense) {
      const auto row = dense_.row(ratee);
      for (NodeId k = 0; k < row.size(); ++k) {
        if (row[k].total > 0) fn(k, row[k]);
      }
    } else {
      const auto& row = sparse_.at(ratee);
      std::vector<NodeId> raters;
      raters.reserve(row.size());
      for (const auto& [k, stats] : row) {
        if (stats.total > 0) raters.push_back(k);
      }
      std::sort(raters.begin(), raters.end());
      for (NodeId k : raters) fn(k, row.find(k)->second);
    }
  }

  /// Row-range visitor: for_each_nonzero_cell over every row in
  /// [row_begin, row_end), ascending row then ascending rater order, as
  /// fn(ratee, rater, stats). Deterministic on both backends; the
  /// parallel detection passes partition a matrix into disjoint row
  /// ranges with this and merge the per-range results in range order.
  template <typename Fn>
  void for_each_nonzero_cell_in_rows(NodeId row_begin, NodeId row_end,
                                     Fn&& fn) const {
    row_end = std::min<NodeId>(row_end, static_cast<NodeId>(size()));
    for (NodeId i = row_begin; i < row_end; ++i) {
      for_each_nonzero_cell(i, [&](NodeId k, const PairStats& stats) {
        fn(i, k, stats);
      });
    }
  }

  /// Resident-memory estimate of this matrix (cells + row metadata + pair
  /// marks), in bytes. Exact for the dense backend; for the sparse backend
  /// a conservative model of the hash-map rows (nodes, buckets, map
  /// headers). The bench memory columns and the footprint regression test
  /// read this.
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept;

  /// What a dense matrix of `num_nodes` costs, without allocating it —
  /// the oracle the <5%-footprint regression check compares against.
  [[nodiscard]] static std::size_t dense_footprint_bytes(
      std::size_t num_nodes) noexcept;

  // --- Direct mutation (for tests and incremental managers) ---

  void set_global_reputation(NodeId i, double rep, double high_rep_threshold);
  void add_rating(NodeId ratee, NodeId rater, Score score);
  /// Configures the frequency threshold for the incremental frequent
  /// aggregates. Call before the first add_rating.
  void set_frequency_threshold(std::uint32_t t) noexcept {
    frequency_threshold_ = t;
  }

  /// Resets the update window in place: zeroes every cell, the per-row
  /// totals / frequent aggregates, and the checked-pair marks. Global
  /// reputations, high-reputed flags, and the frequency threshold are
  /// preserved — they belong to the host system, not the window. Rows
  /// whose totals are already zero are skipped, so the cost is
  /// proportional to the touched part of the matrix.
  void clear_window();

  /// Restores a window cell verbatim (checkpoint recovery): installs
  /// `stats` at (ratee, rater) and folds it into the row totals and, when
  /// frequent, the frequent aggregate. The target cell must be empty.
  void restore_cell(NodeId ratee, NodeId rater, const PairStats& stats);

  /// Extracts row `ratee` for a shard handoff: returns its non-empty
  /// cells in ascending rater order (the same enumeration restore_cell
  /// reinstalls on the receiving matrix), then clears the cells and the
  /// row's totals / frequent aggregate. Global reputation and the
  /// high-reputed flag are left in place — every shard tracks those for
  /// all nodes. Dirty tracking cannot express a removal, so a non-empty
  /// take marks the next delta incomplete (full detector rebuild).
  [[nodiscard]] std::vector<std::pair<NodeId, PairStats>> take_row(
      NodeId ratee);

  // --- Dirty-cell tracking (incremental detector support) ---

  /// Starts recording which cells add_rating / restore_cell touch. The
  /// first take_dirty_cells() after enabling reports complete = false
  /// (mutations before this call were not observed). Off by default:
  /// tracking costs one hash insert per rating.
  void set_dirty_tracking(bool on);
  [[nodiscard]] bool dirty_tracking() const noexcept { return dirty_on_; }
  /// Drains the recorded delta: cells touched since the last take, in
  /// ascending (ratee, rater) order, plus whether the delta is complete
  /// (see DirtyCells). Resets the recorder to a complete empty delta.
  [[nodiscard]] DirtyCells take_dirty_cells();

  // --- Checked-pair marking (paper: "the manager marks a_ij and a_ji") ---

  [[nodiscard]] bool checked(NodeId i, NodeId j) const;
  /// Marks the unordered pair {i, j}: both a_ij and a_ji.
  void mark_checked(NodeId i, NodeId j);
  void clear_marks();

 private:
  struct RowMeta {
    double global_rep = 0.0;
    PairStats totals;
    PairStats frequent_totals;
    bool high_reputed = false;
  };
  using SparseRow = std::unordered_map<NodeId, PairStats>;

  /// What an absent sparse cell reads as.
  static constexpr PairStats kEmptyCell{};

  /// Writable cell reference; creates the cell on the sparse backend.
  PairStats& mutable_cell(NodeId ratee, NodeId rater);

  /// Records (ratee, rater) in the dirty set when tracking is on.
  void mark_dirty(NodeId ratee, NodeId rater) {
    if (dirty_on_)
      dirty_.insert((static_cast<std::uint64_t>(ratee) << 32) | rater);
  }

  MatrixBackend backend_ = MatrixBackend::kDense;
  util::Matrix<PairStats> dense_;  // kDense cells (empty under kSparse)
  std::vector<SparseRow> sparse_;  // kSparse cells (empty under kDense)
  std::vector<RowMeta> meta_;
  std::unordered_set<std::uint64_t> checked_;  // unordered-pair mark keys
  std::size_t high_count_ = 0;
  std::uint32_t frequency_threshold_ = 0;
  bool dirty_on_ = false;
  bool dirty_complete_ = false;  // delta covers everything since last take
  std::unordered_set<std::uint64_t> dirty_;  // (ratee << 32) | rater keys
};

}  // namespace p2prep::rating
