// Fundamental rating vocabulary shared by every layer: node identifiers,
// the three-level local rating used by eBay/EigenTrust (-1 / 0 / +1), the
// five-star marketplace score used by the Amazon/Overstock trace layer, and
// the timestamped rating event.
#pragma once

#include <cstdint>

namespace p2prep::rating {

/// Dense node identifier. Simulated networks index nodes 0..n-1; the DHT
/// layer derives ring keys from NodeId by hashing (paper Sec. IV-A).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Discrete simulation time. The net simulator counts query cycles; the
/// trace layer counts days. Both are just monotone ticks to this module.
using Tick = std::uint64_t;

/// Local reputation rating for one interaction (paper Sec. IV-A): -1
/// negative, 0 neutral, +1 positive. Systems with other scales are mapped
/// onto this one before detection (ratings >= T_R become +1, else -1).
enum class Score : std::int8_t {
  kNegative = -1,
  kNeutral = 0,
  kPositive = 1,
};

[[nodiscard]] constexpr int score_value(Score s) noexcept {
  return static_cast<int>(s);
}

/// Amazon's published mapping (paper Sec. III): stars 1-2 -> negative,
/// 3 -> neutral, 4-5 -> positive. Star values outside [1,5] are clamped.
[[nodiscard]] constexpr Score score_from_stars(int stars) noexcept {
  if (stars <= 2) return Score::kNegative;
  if (stars == 3) return Score::kNeutral;
  return Score::kPositive;
}

/// One rating event: `rater` rated `ratee` with `score` at time `time`.
struct Rating {
  NodeId rater = kInvalidNode;
  NodeId ratee = kInvalidNode;
  Score score = Score::kNeutral;
  Tick time = 0;

  friend constexpr bool operator==(const Rating&, const Rating&) = default;
};

}  // namespace p2prep::rating
