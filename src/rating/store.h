// Sparse rating store: the ground-truth ledger of who rated whom.
//
// Maintains, for every ratee, a hash map from rater to PairStats, at two
// horizons: the current reputation-update window T (what the paper's
// detection thresholds N_(i,j) >= T_N are defined over) and the node's
// lifetime (what the summation reputation R_i = N+_i - N-_i is defined
// over). Reputation managers snapshot this store into a dense RatingMatrix
// before running detection.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rating/pair_stats.h"
#include "rating/types.h"

namespace p2prep::rating {

class RatingStore {
 public:
  RatingStore() = default;
  explicit RatingStore(std::size_t num_nodes) { resize(num_nodes); }

  /// Number of nodes the store currently covers. Node ids must be < this.
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return per_ratee_.size();
  }

  /// Grows the store; existing aggregates are preserved.
  void resize(std::size_t num_nodes);

  /// Records one rating at both horizons. Self-ratings are rejected
  /// (returns false) — the paper's model has no self-rating channel.
  bool ingest(const Rating& r);

  /// Starts a new reputation-update period T: window counters reset,
  /// lifetime counters are preserved.
  void reset_window();

  /// Total ratings ingested since construction (both horizons' event count).
  /// Not affected by transfer_ratee (it counts local ingest calls).
  [[nodiscard]] std::uint64_t event_count() const noexcept { return events_; }

  /// Moves all of `ratee`'s aggregates (window and lifetime horizons) into
  /// `to`, clearing them here — the shard-handoff primitive used when DHT
  /// manager responsibility changes. Aggregates already present in `to`
  /// for the same ratee are merged. `to` must cover `ratee`.
  void transfer_ratee(RatingStore& to, NodeId ratee);

  // --- Window-horizon accessors (detection inputs) ---

  /// N_(ratee,rater) aggregate in the current window; zero stats if absent.
  [[nodiscard]] PairStats window_pair(NodeId ratee, NodeId rater) const;
  /// N_ratee: all ratings for `ratee` in the current window.
  [[nodiscard]] const PairStats& window_totals(NodeId ratee) const;
  /// N_(ratee,-rater): window totals minus the given rater's contribution.
  [[nodiscard]] PairStats window_complement(NodeId ratee, NodeId rater) const;
  /// Invokes fn(rater, stats) for every rater of `ratee` in the window.
  void for_each_window_rater(
      NodeId ratee,
      const std::function<void(NodeId, const PairStats&)>& fn) const;
  /// Number of distinct raters of `ratee` in the current window.
  [[nodiscard]] std::size_t window_rater_count(NodeId ratee) const;

  // --- Lifetime-horizon accessors (reputation inputs) ---

  [[nodiscard]] PairStats lifetime_pair(NodeId ratee, NodeId rater) const;
  [[nodiscard]] const PairStats& lifetime_totals(NodeId ratee) const;
  /// Invokes fn(rater, stats) for every rater of `ratee` across the
  /// store's lifetime.
  void for_each_lifetime_rater(
      NodeId ratee,
      const std::function<void(NodeId, const PairStats&)>& fn) const;
  /// Summation reputation R_i = lifetime N+ - N- (eBay model, Sec. IV-A).
  [[nodiscard]] std::int64_t reputation(NodeId ratee) const;

 private:
  struct Entry {
    PairStats window;
    PairStats lifetime;
  };

  std::vector<std::unordered_map<NodeId, Entry>> per_ratee_;
  std::vector<PairStats> window_totals_;
  std::vector<PairStats> lifetime_totals_;
  std::uint64_t events_ = 0;
};

}  // namespace p2prep::rating
