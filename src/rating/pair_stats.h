// Per-(rater, ratee) aggregate over the current reputation-update window T.
// These four counters are exactly the per-pair state the paper's reputation
// manager keeps in its matrix cells (Table I: N_(i,j), N+_(i,j), N-_(i,j)).
#pragma once

#include <cstdint>

#include "rating/types.h"

namespace p2prep::rating {

struct PairStats {
  std::uint32_t total = 0;     ///< N_(i,j): all ratings from j for i in T.
  std::uint32_t positive = 0;  ///< N+_(i,j).
  std::uint32_t negative = 0;  ///< N-_(i,j).

  constexpr void add(Score s) noexcept {
    ++total;
    if (s == Score::kPositive) ++positive;
    else if (s == Score::kNegative) ++negative;
  }

  /// Neutral ratings count toward total but neither sign.
  [[nodiscard]] constexpr std::uint32_t neutral() const noexcept {
    return total - positive - negative;
  }

  /// `a` (or `b` for the complement aggregate): fraction of positive
  /// ratings among all ratings. 0 when empty.
  [[nodiscard]] constexpr double positive_fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(positive) / static_cast<double>(total);
  }

  /// Contribution to the summation reputation: N+ - N-.
  [[nodiscard]] constexpr std::int64_t reputation_delta() const noexcept {
    return static_cast<std::int64_t>(positive) -
           static_cast<std::int64_t>(negative);
  }

  constexpr PairStats& operator+=(const PairStats& o) noexcept {
    total += o.total;
    positive += o.positive;
    negative += o.negative;
    return *this;
  }

  /// Removes `o` from this aggregate (used to form the "-j" complement
  /// N_(i,-j) = N_i - N_(i,j) without a row scan). Caller guarantees o is a
  /// sub-aggregate of *this.
  constexpr PairStats& operator-=(const PairStats& o) noexcept {
    total -= o.total;
    positive -= o.positive;
    negative -= o.negative;
    return *this;
  }

  friend constexpr PairStats operator+(PairStats a, const PairStats& b) noexcept {
    a += b;
    return a;
  }
  friend constexpr PairStats operator-(PairStats a, const PairStats& b) noexcept {
    a -= b;
    return a;
  }

  friend constexpr bool operator==(const PairStats&, const PairStats&) = default;
};

}  // namespace p2prep::rating
