#include "rating/store.h"

#include <cassert>

namespace p2prep::rating {

namespace {
const PairStats kEmptyStats{};
}

void RatingStore::resize(std::size_t num_nodes) {
  assert(num_nodes >= per_ratee_.size());
  per_ratee_.resize(num_nodes);
  window_totals_.resize(num_nodes);
  lifetime_totals_.resize(num_nodes);
}

bool RatingStore::ingest(const Rating& r) {
  if (r.rater == r.ratee) return false;
  if (r.ratee >= per_ratee_.size() || r.rater >= per_ratee_.size())
    return false;
  Entry& e = per_ratee_[r.ratee][r.rater];
  e.window.add(r.score);
  e.lifetime.add(r.score);
  window_totals_[r.ratee].add(r.score);
  lifetime_totals_[r.ratee].add(r.score);
  ++events_;
  return true;
}

void RatingStore::reset_window() {
  for (auto& raters : per_ratee_) {
    // Drop entries whose lifetime is only window history? No: lifetime
    // persists; just zero the window part. Entries with empty windows are
    // kept so lifetime pair queries remain O(1).
    for (auto& [rater, entry] : raters) entry.window = PairStats{};
  }
  for (auto& t : window_totals_) t = PairStats{};
}

PairStats RatingStore::window_pair(NodeId ratee, NodeId rater) const {
  const auto& raters = per_ratee_.at(ratee);
  auto it = raters.find(rater);
  return it == raters.end() ? PairStats{} : it->second.window;
}

const PairStats& RatingStore::window_totals(NodeId ratee) const {
  return ratee < window_totals_.size() ? window_totals_[ratee] : kEmptyStats;
}

PairStats RatingStore::window_complement(NodeId ratee, NodeId rater) const {
  return window_totals(ratee) - window_pair(ratee, rater);
}

void RatingStore::for_each_window_rater(
    NodeId ratee,
    const std::function<void(NodeId, const PairStats&)>& fn) const {
  for (const auto& [rater, entry] : per_ratee_.at(ratee)) {
    if (entry.window.total > 0) fn(rater, entry.window);
  }
}

std::size_t RatingStore::window_rater_count(NodeId ratee) const {
  std::size_t count = 0;
  for (const auto& [rater, entry] : per_ratee_.at(ratee)) {
    if (entry.window.total > 0) ++count;
  }
  return count;
}

void RatingStore::transfer_ratee(RatingStore& to, NodeId ratee) {
  assert(ratee < per_ratee_.size() && ratee < to.per_ratee_.size());
  if (&to == this) return;
  auto& src = per_ratee_[ratee];
  auto& dst = to.per_ratee_[ratee];
  for (auto& [rater, entry] : src) {
    Entry& target = dst[rater];
    target.window += entry.window;
    target.lifetime += entry.lifetime;
  }
  src.clear();
  to.window_totals_[ratee] += window_totals_[ratee];
  to.lifetime_totals_[ratee] += lifetime_totals_[ratee];
  window_totals_[ratee] = PairStats{};
  lifetime_totals_[ratee] = PairStats{};
}

void RatingStore::for_each_lifetime_rater(
    NodeId ratee,
    const std::function<void(NodeId, const PairStats&)>& fn) const {
  for (const auto& [rater, entry] : per_ratee_.at(ratee)) {
    if (entry.lifetime.total > 0) fn(rater, entry.lifetime);
  }
}

PairStats RatingStore::lifetime_pair(NodeId ratee, NodeId rater) const {
  const auto& raters = per_ratee_.at(ratee);
  auto it = raters.find(rater);
  return it == raters.end() ? PairStats{} : it->second.lifetime;
}

const PairStats& RatingStore::lifetime_totals(NodeId ratee) const {
  return ratee < lifetime_totals_.size() ? lifetime_totals_[ratee]
                                         : kEmptyStats;
}

std::int64_t RatingStore::reputation(NodeId ratee) const {
  return lifetime_totals(ratee).reputation_delta();
}

}  // namespace p2prep::rating
