// Operational metrics of the sharded reputation service. ServiceMetrics is
// a plain value snapshot — ReputationService::metrics() assembles it from
// the service's atomic counters, so polling it never blocks ingest.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace p2prep::service {

struct ServiceMetrics {
  // Ingest front door.
  std::uint64_t ratings_accepted = 0;   ///< Routed into a shard queue.
  std::uint64_t ratings_rejected = 0;   ///< Invalid (self-rating, bad id).
  std::uint64_t ratings_dropped = 0;    ///< Evicted by kDropOldest overflow.
  std::uint64_t ratings_applied = 0;    ///< Applied to shard state.
  std::uint64_t queue_depth = 0;        ///< Current total across shards.
  double ingest_rate_per_sec = 0.0;     ///< Applied ratings / wall seconds.

  // Epochs and detection.
  std::uint64_t epochs_completed = 0;       ///< Across all shards.
  std::uint64_t detections_total = 0;       ///< Flagged pairs, cumulative.
  std::uint64_t last_epoch_detections = 0;  ///< Flagged pairs, last epoch.
  double epoch_latency_ms_mean = 0.0;
  double epoch_latency_ms_p99 = 0.0;

  // Ring detection (detect::RingDetector / group adapter; all zero under
  // the pairwise detectors).
  std::uint64_t rings_found = 0;   ///< Rings reported, cumulative.
  std::uint64_t ring_largest = 0;  ///< Largest ring's member count seen.
  std::uint64_t ring_scan_us = 0;  ///< Last epoch's detector scan time.

  // Parallel global epochs (kGlobal scope; see ServiceConfig::
  // parallel_epoch / epoch_overlap).
  /// Scan thread budget of the epoch coordinator, itself included (gauge;
  /// 1 = serial sweeps).
  std::uint64_t epoch_scan_threads = 1;
  /// Wall time of the last overlapped epoch's detection window — the span
  /// during which ingest ran concurrently with the scan. 0 until the
  /// first overlapped epoch completes.
  std::uint64_t epoch_overlap_us = 0;
  /// Cross-shard accomplice-exchange rounds of the last global epoch (0
  /// when flag_accomplices is off or no pairs were flagged).
  std::uint64_t accomplice_exchange_rounds = 0;

  // Manager cluster (src/cluster/; all zero outside cluster deployments).
  /// Node ids whose owner range is held by this manager as primary.
  std::uint64_t cluster_owned_keys = 0;
  /// Replication copies owed to lagging holders (gauge): incremented per
  /// copy that failed delivery (after the retry), decremented when the
  /// debt is repaid by a resync hint toward the recovered holder.
  std::uint64_t cluster_replica_lag = 0;
  /// Requests this manager forwarded to the owner range's holders.
  std::uint64_t cluster_forwards = 0;
  /// Failovers observed: manager-side acting-primary serves plus
  /// client-side retargets after a primary death.
  std::uint64_t cluster_failovers = 0;

  // Shard map (elastic resharding).
  std::uint64_t current_shard_count = 0;   ///< Live shard count (gauge).
  std::uint64_t shard_map_epoch = 0;       ///< Bumped by each committed resize.
  std::uint64_t resizes_completed = 0;
  std::uint64_t keys_moved_last_resize = 0;  ///< Nodes moved by last resize.
  double last_resize_ms = 0.0;             ///< Last handoff window duration.

  // Durability.
  std::uint64_t wal_records = 0;          ///< Current-generation records.
  std::uint64_t wal_bytes = 0;            ///< Current-generation bytes.
  std::uint64_t checkpoints_written = 0;

  // Memory.
  /// Resident bytes of all shards' rating matrices (per-backend estimate,
  /// refreshed at epoch boundaries). The sparse-vs-dense backend choice
  /// shows up here: O(nnz) versus num_shards * num_nodes^2 cells.
  std::uint64_t matrix_bytes = 0;

  // RPC front door (rpc/server.h). All zero when the service is driven
  // directly (serve-replay, tests) — RpcServer::fill_metrics() populates
  // them, so serve and serve-replay report through the same dump.
  std::uint64_t rpc_accepted = 0;    ///< Connections accepted.
  std::uint64_t rpc_rejected = 0;    ///< Connections refused at max_connections.
  std::uint64_t rpc_requests = 0;    ///< Complete request frames decoded.
  std::uint64_t rpc_shed = 0;        ///< Requests answered kRetryLater.
  std::uint64_t rpc_bytes_in = 0;
  std::uint64_t rpc_bytes_out = 0;
  std::uint64_t rpc_active_connections = 0;  ///< Gauge at snapshot time.

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "ingest: accepted=" << ratings_accepted
       << " rejected=" << ratings_rejected << " dropped=" << ratings_dropped
       << " applied=" << ratings_applied << " queue_depth=" << queue_depth
       << " rate=" << ingest_rate_per_sec << "/s\n"
       << "epochs: completed=" << epochs_completed
       << " detections_total=" << detections_total
       << " last_epoch_detections=" << last_epoch_detections
       << " latency_mean_ms=" << epoch_latency_ms_mean
       << " latency_p99_ms=" << epoch_latency_ms_p99 << "\n"
       << "rings: found=" << rings_found << " largest=" << ring_largest
       << " scan_us=" << ring_scan_us << "\n"
       << "parallel_epoch: scan_threads=" << epoch_scan_threads
       << " overlap_us=" << epoch_overlap_us
       << " accomplice_rounds=" << accomplice_exchange_rounds << "\n"
       << "cluster: owned_keys=" << cluster_owned_keys
       << " replica_lag=" << cluster_replica_lag
       << " forwards=" << cluster_forwards
       << " failovers=" << cluster_failovers << "\n"
       << "shards: count=" << current_shard_count
       << " map_epoch=" << shard_map_epoch << " resizes=" << resizes_completed
       << " keys_moved_last=" << keys_moved_last_resize
       << " last_resize_ms=" << last_resize_ms << "\n"
       << "wal: records=" << wal_records << " bytes=" << wal_bytes
       << " checkpoints=" << checkpoints_written << "\n"
       << "memory: matrix_bytes=" << matrix_bytes << "\n"
       << "rpc: accepted=" << rpc_accepted << " rejected=" << rpc_rejected
       << " requests=" << rpc_requests << " shed=" << rpc_shed
       << " bytes_in=" << rpc_bytes_in << " bytes_out=" << rpc_bytes_out
       << " active_connections=" << rpc_active_connections;
    return os.str();
  }
};

}  // namespace p2prep::service
