#include "service/shard_map.h"

#include <algorithm>
#include <stdexcept>

namespace p2prep::service {

ShardMap::ShardMap(std::size_t num_shards, std::size_t num_nodes)
    : num_shards_(num_shards) {
  if (num_shards == 0)
    throw std::invalid_argument("shard_map: num_shards must be >= 1");

  points_.reserve(num_shards * kVirtualPoints);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (std::uint32_t v = 0; v < kVirtualPoints; ++v)
      points_.push_back({dht::hash_shard_point(s, v), s});
  }
  // Tie-break equal keys by shard index so the map is deterministic even
  // in the (astronomically unlikely) event of a point collision.
  std::sort(points_.begin(), points_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.key != b.key ? a.key < b.key : a.shard < b.shard;
            });

  owners_.resize(num_nodes);
  for (rating::NodeId id = 0; id < num_nodes; ++id)
    owners_[id] = static_cast<std::uint32_t>(owner_of_key(dht::hash_node(id)));
}

std::size_t ShardMap::owner_of_key(dht::Key key) const noexcept {
  // Successor point: the first ring point at or after `key`, wrapping to
  // the smallest point past the top of the ring.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const RingPoint& p, dht::Key k) { return p.key < k; });
  return it != points_.end() ? it->shard : points_.front().shard;
}

bool ShardMap::single_owner() const noexcept {
  if (num_shards_ == 1) return true;
  if (owners_.empty()) return false;
  return std::all_of(owners_.begin(), owners_.end(),
                     [first = owners_.front()](std::uint32_t o) {
                       return o == first;
                     });
}

std::vector<rating::NodeId> ShardMap::moved_nodes(const ShardMap& from,
                                                  const ShardMap& to) {
  if (from.num_nodes() != to.num_nodes())
    throw std::invalid_argument("shard_map: node ranges differ");
  std::vector<rating::NodeId> moved;
  for (rating::NodeId id = 0; id < from.num_nodes(); ++id) {
    if (from.owners_[id] != to.owners_[id]) moved.push_back(id);
  }
  return moved;
}

}  // namespace p2prep::service
