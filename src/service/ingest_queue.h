// Bounded MPMC ingest queue with selectable backpressure, the front door of
// the sharded reputation service (DESIGN.md "Service layer").
//
// Producers are client threads calling ReputationService::ingest(); the
// single consumer per queue is that shard's worker thread (the template is
// nevertheless MPMC-safe — tests exercise multi-consumer draining). Two
// overflow policies:
//  * kBlock      — producers wait for space; end-to-end backpressure.
//  * kDropOldest — the oldest *evictable* element is discarded to make
//    room, so the queue favours fresh ratings under overload. Elements the
//    `evictable` predicate rejects (epoch markers) are never discarded.
//
// push_forced() bypasses both capacity and policy; the service uses it for
// epoch markers, which must reach every shard exactly once or the epoch
// barrier would hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::service {

enum class OverflowPolicy {
  kBlock,      ///< push() waits for space (backpressure).
  kDropOldest, ///< push() evicts the oldest evictable element.
};

template <typename T>
class IngestQueue {
 public:
  using Evictable = std::function<bool(const T&)>;

  /// `capacity` must be >= 1. `evictable` tells kDropOldest which elements
  /// may be discarded; the default allows all.
  explicit IngestQueue(std::size_t capacity,
                       OverflowPolicy policy = OverflowPolicy::kBlock,
                       Evictable evictable = {})
      : capacity_(capacity ? capacity : 1),
        policy_(policy),
        evictable_(std::move(evictable)) {}

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues `value`. Under kBlock, waits until space is available;
  /// returns false only when the queue was closed. Under kDropOldest,
  /// never waits: a full queue discards its oldest evictable element
  /// first (counted in dropped()); if nothing is evictable the queue
  /// grows past capacity rather than lose the new element.
  bool push(T value) {
    {
      util::MutexLock lock(mu_);
      if (policy_ == OverflowPolicy::kBlock) {
        while (!closed_ && items_.size() >= capacity_) not_full_.wait(mu_);
        if (closed_) return false;
      } else if (items_.size() >= capacity_) {
        for (auto it = items_.begin(); it != items_.end(); ++it) {
          if (!evictable_ || evictable_(*it)) {
            items_.erase(it);
            ++dropped_;
            break;
          }
        }
      }
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Outcome of a non-blocking try_push().
  enum class TryPush { kOk, kFull, kClosed };

  /// Non-blocking push: regardless of policy, a full queue fails with
  /// kFull instead of waiting (kBlock) or evicting (kDropOldest). The RPC
  /// front-end sheds on kFull rather than stalling its event loop
  /// (rpc/server.h overload control).
  TryPush try_push(T value) {
    {
      util::MutexLock lock(mu_);
      if (closed_) return TryPush::kClosed;
      if (items_.size() >= capacity_) return TryPush::kFull;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return TryPush::kOk;
  }

  /// Enqueues regardless of capacity and policy; only fails when closed.
  /// Never blocks and never causes an eviction.
  bool push_forced(T value) {
    {
      util::MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained; nullopt means no element will ever come again.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      util::MutexLock lock(mu_);
      while (!closed_ && items_.empty()) not_empty_.wait(mu_);
      if (items_.empty()) return std::nullopt;
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Stops accepting pushes; queued elements remain poppable (drain).
  void close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Crash path: discards everything queued, then closes.
  void purge_and_close() {
    {
      util::MutexLock lock(mu_);
      items_.clear();
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    util::MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::uint64_t dropped() const {
    util::MutexLock lock(mu_);
    return dropped_;
  }
  [[nodiscard]] bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  const Evictable evictable_;

  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ P2PREP_GUARDED_BY(mu_);
  std::uint64_t dropped_ P2PREP_GUARDED_BY(mu_) = 0;
  bool closed_ P2PREP_GUARDED_BY(mu_) = false;
};

}  // namespace p2prep::service
