// Durable ingest for the reputation service: a per-shard append-only
// write-ahead log of the *applied* rating stream, plus snapshot
// checkpoints for compaction (DESIGN.md "Service layer").
//
// WAL file layout (all integers little-endian, host-order independent):
//
//   header:  8-byte magic "P2PWAL2\0" | u64 generation | u64 map_epoch |
//            u32 num_shards
//   record:  u32 payload_len | u32 crc32(payload) | payload
//   payload: u8 kind | kind-specific fields
//     kRating         — u32 rater | u32 ratee | u8 score(+1 bias) | u64 tick
//     kEpochMarker    — u64 epoch_seq
//     kShardMapChange — u64 map_epoch | u32 new_num_shards
//
// The header's (map_epoch, num_shards) pin the shard map every record in
// the file was routed under: a resize commits by checkpointing every shard
// and rotating every WAL with the new map fields, so one file never mixes
// records from two maps and recovery replays each file against the map
// that wrote it. A kShardMapChange marker is only ever observed in a WAL
// when the resize that logged it did NOT commit (crash inside the handoff
// window) — recovery strips it and resumes under the old map.
//
// The shard worker appends each record immediately before applying it, so
// replaying the log reproduces the shard's state transition sequence
// exactly — including epoch boundaries, which are logged as markers. A
// torn tail (crash mid-write) fails its CRC or length check; readers keep
// the valid prefix and report the cut so recovery can truncate before
// appending again.
//
// Compaction: a checkpoint file captures the shard's full state together
// with (wal_generation, wal_records_applied); the WAL is then rotated
// (truncated, generation + 1). The generation number resolves every
// crash window: records in a WAL whose generation matches the checkpoint
// are skipped up to wal_records_applied, records in a younger-generation
// WAL are all post-checkpoint, and a WAL older than its checkpoint is
// corruption. Checkpoints are written to a temp file and renamed so a
// crash never leaves a half-written snapshot in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rating/pair_stats.h"
#include "rating/types.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::service {

/// CRC-32 (IEEE 802.3, reflected) over `len` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// Bytes of the WAL file header (magic + generation + map_epoch +
/// num_shards). Exposed for recovery's truncation arithmetic.
inline constexpr std::uint64_t kWalHeaderBytes = 28;

/// Hard cap on one WAL record's payload length. Real payloads are at most
/// 18 bytes (kRating); a length field beyond this cap is corruption, not a
/// record, and the reader cuts the file there instead of trusting a
/// hostile 4 GiB length (an attacker-authored WAL is parsed with the same
/// code as our own — see fuzz/fuzz_wal.cpp).
inline constexpr std::uint32_t kMaxWalRecordBytes = 4096;

enum class WalRecordKind : std::uint8_t {
  kRating = 1,
  kEpochMarker = 2,
  /// Resize fence: logged by every shard worker immediately before it
  /// parks for the handoff window. Never survives a committed resize (the
  /// commit rotates the WAL), so recovery treats it as uncommitted residue.
  kShardMapChange = 3,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kRating;
  rating::Rating rating{};       ///< Valid when kind == kRating.
  std::uint64_t epoch_seq = 0;   ///< kEpochMarker seq / kShardMapChange epoch.
  std::uint32_t num_shards = 0;  ///< Valid when kind == kShardMapChange.

  static WalRecord make_rating(const rating::Rating& r) {
    WalRecord rec;
    rec.kind = WalRecordKind::kRating;
    rec.rating = r;
    return rec;
  }
  static WalRecord make_marker(std::uint64_t seq) {
    WalRecord rec;
    rec.kind = WalRecordKind::kEpochMarker;
    rec.epoch_seq = seq;
    return rec;
  }
  static WalRecord make_map_change(std::uint64_t map_epoch,
                                   std::uint32_t new_num_shards) {
    WalRecord rec;
    rec.kind = WalRecordKind::kShardMapChange;
    rec.epoch_seq = map_epoch;
    rec.num_shards = new_num_shards;
    return rec;
  }
};

class WalWriter {
 public:
  /// Creates (or truncates) a WAL file starting at `generation`, stamped
  /// with the shard map (map_epoch, num_shards) its records are routed
  /// under.
  static WalWriter create(const std::string& path, std::uint64_t generation,
                          std::uint64_t map_epoch, std::uint32_t num_shards);

  /// Reopens a WAL for appending after recovery. `valid_bytes` /
  /// `valid_records` come from read_wal(); any bytes beyond `valid_bytes`
  /// (torn tail, or markers recovery chose to discard) are truncated away
  /// first. Throws std::runtime_error if the file cannot be opened.
  static WalWriter resume(const std::string& path, std::uint64_t generation,
                          std::uint64_t map_epoch, std::uint32_t num_shards,
                          std::uint64_t valid_bytes,
                          std::uint64_t valid_records);

  /// Moving is only safe before the writer is shared across threads (the
  /// service moves writers into their shards during single-threaded
  /// startup); the mutex itself is not moved.
  WalWriter(WalWriter&& other) noexcept P2PREP_NO_THREAD_SAFETY_ANALYSIS;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter& operator=(WalWriter&&) = delete;

  /// Appends one record and flushes it to the OS. Single appender; the
  /// internal mutex only makes the counter getters safe to poll from
  /// other threads (metrics, tests).
  void append(const WalRecord& rec) P2PREP_EXCLUDES(mu_);

  /// Truncates the file and starts generation + 1 (post-checkpoint),
  /// keeping the current shard-map stamp.
  void rotate() P2PREP_EXCLUDES(mu_);
  /// Rotate variant for the resize commit: the fresh header carries the
  /// new shard map's (map_epoch, num_shards).
  void rotate(std::uint64_t map_epoch, std::uint32_t num_shards)
      P2PREP_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t generation() const P2PREP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return generation_;
  }
  /// Shard-map epoch stamped into the current file header.
  [[nodiscard]] std::uint64_t map_epoch() const P2PREP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return map_epoch_;
  }
  /// Shard count stamped into the current file header.
  [[nodiscard]] std::uint32_t map_shards() const P2PREP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_shards_;
  }
  /// Records present in the current-generation file.
  [[nodiscard]] std::uint64_t records() const P2PREP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return records_;
  }
  /// Bytes in the current-generation file (header included).
  [[nodiscard]] std::uint64_t bytes() const P2PREP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return bytes_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  WalWriter() = default;

  void rotate_locked() P2PREP_REQUIRES(mu_);

  std::string path_;  ///< Immutable after create()/resume().
  mutable util::Mutex mu_;
  std::ofstream out_ P2PREP_GUARDED_BY(mu_);
  std::uint64_t generation_ P2PREP_GUARDED_BY(mu_) = 0;
  std::uint64_t map_epoch_ P2PREP_GUARDED_BY(mu_) = 0;
  std::uint32_t num_shards_ P2PREP_GUARDED_BY(mu_) = 1;
  std::uint64_t records_ P2PREP_GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_ P2PREP_GUARDED_BY(mu_) = 0;
};

struct WalReadResult {
  bool found = false;            ///< File existed and had a valid header.
  bool truncated_tail = false;   ///< A torn/corrupt suffix was discarded.
  std::uint64_t generation = 0;
  std::uint64_t map_epoch = 0;   ///< Shard map the records were routed under.
  std::uint32_t num_shards = 0;  ///< Shard count of that map.
  std::vector<WalRecord> records;
  /// Byte offset just past record [i]; end_offsets.size() == records.size().
  std::vector<std::uint64_t> end_offsets;
  /// Bytes of the valid prefix (header + intact records).
  std::uint64_t valid_bytes = 0;
};

/// Reads every intact record; stops at the first bad frame.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Parses WAL bytes already in memory (read_wal delegates here after
/// slurping the file). This is the hostile-input decoding surface: it
/// never throws, never over-reads, and caps every length field — fuzzed
/// by fuzz/fuzz_wal.cpp and replayed over the checked-in corpus in ctest.
[[nodiscard]] WalReadResult parse_wal(std::string_view content);

// --- Record/header encoders ------------------------------------------------
// Exposed so the fuzz seed-corpus generator (fuzz/corpus_gen.cpp), the
// round-trip oracles in the fuzz targets, and the corruption tests can
// build byte-exact WAL images without touching the filesystem. WalWriter
// uses these same functions — there is exactly one encoding of a record.

/// Appends the 28-byte file header (magic + generation + map stamp).
void append_wal_header(std::string& out, std::uint64_t generation,
                       std::uint64_t map_epoch, std::uint32_t num_shards);

/// Appends one framed record (u32 len | u32 crc | payload).
void append_wal_frame(std::string& out, const WalRecord& rec);

// --- Shard checkpoints -----------------------------------------------------

/// One non-empty window cell of the shard's rating matrix.
struct CheckpointCell {
  rating::NodeId ratee = 0;
  rating::NodeId rater = 0;
  rating::PairStats stats;
};

/// Full recoverable state of one shard at an epoch boundary.
struct ShardCheckpoint {
  std::uint64_t wal_generation = 0;
  std::uint64_t wal_records_applied = 0;  ///< Of that generation, consumed.
  /// Shard map this checkpoint was written under. Recovery adopts the
  /// highest map_epoch found across checkpoints (with its num_shards) as
  /// the live map; a mix of epochs means a crash hit the resize commit.
  std::uint64_t map_epoch = 0;
  std::uint32_t map_num_shards = 1;
  std::uint64_t epochs_completed = 0;
  std::uint64_t applied_total = 0;
  std::uint64_t applied_since_epoch = 0;
  std::uint64_t last_epoch_tick = 0;
  std::string engine_blob;                ///< ReputationEngine::save_state.
  std::vector<rating::NodeId> suppressed; ///< Sorted ascending.
  std::vector<rating::NodeId> detected;   ///< Sorted ascending.
  std::vector<CheckpointCell> cells;      ///< Row-major, deterministic order.
};

/// Serializes `ckpt` to `path` atomically (temp file + rename). Returns
/// false on I/O failure (the previous checkpoint, if any, is preserved).
[[nodiscard]] bool write_checkpoint(const std::string& path,
                                    const ShardCheckpoint& ckpt);

/// Loads a checkpoint; nullopt when missing or malformed (CRC mismatch).
[[nodiscard]] std::optional<ShardCheckpoint> read_checkpoint(
    const std::string& path);

/// Serializes `ckpt` to the full file image (magic + frame + payload);
/// write_checkpoint writes exactly these bytes. Exposed for the corpus
/// generator and round-trip oracles.
[[nodiscard]] std::string encode_checkpoint(const ShardCheckpoint& ckpt);

/// Parses a checkpoint file image already in memory (read_checkpoint
/// delegates here). Like parse_wal this is a hostile-input surface: every
/// count field is validated against the bytes actually present before any
/// allocation, so an adversarial image cannot force a multi-GiB resize.
/// Fuzzed by fuzz/fuzz_checkpoint.cpp.
[[nodiscard]] std::optional<ShardCheckpoint> parse_checkpoint(
    std::string_view content);

}  // namespace p2prep::service
