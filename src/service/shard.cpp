#include "service/shard.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "detect/registry.h"

namespace p2prep::service {

std::string format_epoch_report(const std::string& label, std::uint64_t epoch,
                                const core::DetectionReport& report) {
  std::ostringstream os;
  os << "epoch " << epoch << ' ' << label << ": pairs=" << report.pairs.size()
     << " rings=" << report.rings.size() << " flagged=[";
  const auto flagged = report.colluders();
  for (std::size_t i = 0; i < flagged.size(); ++i) {
    if (i) os << ' ';
    os << flagged[i];
  }
  os << "]\n";
  for (const auto& ev : report.pairs) os << "  " << ev.to_string() << '\n';
  for (const auto& ev : report.rings) os << "  " << ev.to_string() << '\n';
  return os.str();
}

ServiceShard::ServiceShard(std::size_t index, const ServiceConfig& config)
    : index_(index),
      config_(&config),
      engine_(config.num_nodes, config.engine_normalize),
      manager_(std::make_unique<managers::IncrementalCentralizedManager>(
          config.num_nodes, engine_, config.detector_config,
          config.matrix_backend)),
      detector_(detect::DetectorRegistry::global().create(
          config.detector, config.detector_config)),
      view_(std::make_shared<const ShardView>()) {
  // Per-shard epochs feed the detector this shard's matrix; when it
  // streams (ring), record dirty cells so epochs cost O(changed nnz).
  if (config.epoch_scope == EpochScope::kPerShard &&
      detector_->wants_dirty_tracking()) {
    manager_->enable_dirty_tracking();
  }
  matrix_bytes_.store(manager_->matrix().approx_memory_bytes(),
                      std::memory_order_relaxed);
}

void ServiceShard::attach_wal(WalWriter writer) {
  wal_.emplace(std::move(writer));
  wal_records_.store(wal_->records(), std::memory_order_relaxed);
  wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
}

void ServiceShard::log_record(const WalRecord& rec) {
  if (!wal_) return;
  wal_->append(rec);
  wal_records_.store(wal_->records(), std::memory_order_relaxed);
  wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
}

bool ServiceShard::apply_rating(const rating::Rating& r) {
  if (!manager_->ingest(r)) return false;
  applied_total_.fetch_add(1, std::memory_order_relaxed);
  ++applied_since_epoch_;
  last_applied_tick_ = r.time;
  return true;
}

bool ServiceShard::epoch_due(rating::Tick now) const noexcept {
  if (config_->epoch_ratings > 0 &&
      applied_since_epoch_ >= config_->epoch_ratings)
    return true;
  if (config_->epoch_ticks > 0 &&
      now >= last_epoch_tick_ + config_->epoch_ticks)
    return true;
  return false;
}

std::size_t ServiceShard::run_local_epoch() {
  manager_->update_reputations();
  detect::EpochSnapshot snap = detect::EpochSnapshot::of(manager_->matrix());
  if (manager_->matrix().dirty_tracking())
    snap.dirty.push_back(manager_->take_dirty_cells());
  core::DetectionReport report;
  detector_->on_epoch(snap, report);
  manager_->apply_suppression(report, config_->suppression);
  rings_found_.fetch_add(report.rings.size(), std::memory_order_relaxed);
  for (const auto& ring : report.rings) {
    std::uint64_t prev = ring_largest_.load(std::memory_order_relaxed);
    while (prev < ring.members.size() &&
           !ring_largest_.compare_exchange_weak(prev, ring.members.size(),
                                                std::memory_order_relaxed)) {
    }
  }
  ring_scan_us_.store(detector_->stats().scan_us, std::memory_order_relaxed);
  const std::uint64_t epoch =
      epochs_completed_.fetch_add(1, std::memory_order_relaxed) + 1;
  applied_since_epoch_ = 0;
  last_epoch_tick_ = last_applied_tick_;

  std::string text;
  if (config_->record_reports) {
    text = format_epoch_report("shard " + std::to_string(index_), epoch,
                               report);
    append_report(text);
  }
  publish_view(epoch, report.colluders(), std::move(text));
  return report.pairs.size() + report.rings.size();
}

void ServiceShard::finish_global_epoch(
    std::uint64_t epoch_seq, const std::vector<rating::NodeId>& flagged,
    const std::string& report_text) {
  epochs_completed_.store(epoch_seq, std::memory_order_relaxed);
  applied_since_epoch_ = 0;
  last_epoch_tick_ = last_applied_tick_;
  publish_view(epoch_seq, flagged, report_text);
}

void ServiceShard::publish_view(std::uint64_t epoch,
                                std::vector<rating::NodeId> flagged,
                                std::string report_text) {
  auto view = std::make_shared<ShardView>();
  view->epoch = epoch;
  const auto reps = engine_.reputations();
  view->reputations.assign(reps.begin(), reps.end());
  view->reputations.resize(config_->num_nodes, 0.0);
  view->suspected.assign(config_->num_nodes, 0);
  for (rating::NodeId id : manager_->detected()) {
    if (id < view->suspected.size()) view->suspected[id] = 1;
  }
  view->flagged_last_epoch = std::move(flagged);
  view->last_report = std::move(report_text);
  // Epoch boundaries are the only points where no worker is mutating the
  // matrix, so this is where the footprint gauge refreshes.
  matrix_bytes_.store(manager_->matrix().approx_memory_bytes(),
                      std::memory_order_relaxed);

  const util::MutexLock lock(view_mu_);
  view_ = std::move(view);
}

std::shared_ptr<const ShardView> ServiceShard::view() const {
  const util::MutexLock lock(view_mu_);
  return view_;
}

void ServiceShard::append_report(const std::string& text) {
  const util::MutexLock lock(log_mu_);
  report_log_ += text;
}

std::string ServiceShard::report_log() const {
  const util::MutexLock lock(log_mu_);
  return report_log_;
}

std::optional<ShardCheckpoint> ServiceShard::make_checkpoint() const {
  ShardCheckpoint ckpt;
  std::ostringstream blob;
  if (!engine_.save_state(blob)) return std::nullopt;
  ckpt.engine_blob = blob.str();

  ckpt.wal_generation = wal_ ? wal_->generation() : 0;
  ckpt.wal_records_applied = wal_ ? wal_->records() : 0;
  ckpt.map_epoch = map_epoch_;
  ckpt.map_num_shards = map_num_shards_;
  ckpt.epochs_completed = epochs_completed_.load(std::memory_order_relaxed);
  ckpt.applied_total = applied_total_.load(std::memory_order_relaxed);
  ckpt.applied_since_epoch = applied_since_epoch_;
  ckpt.last_epoch_tick = last_epoch_tick_;

  ckpt.suppressed.assign(engine_.suppressed_set().begin(),
                         engine_.suppressed_set().end());
  std::sort(ckpt.suppressed.begin(), ckpt.suppressed.end());
  ckpt.detected.assign(manager_->detected().begin(),
                       manager_->detected().end());
  std::sort(ckpt.detected.begin(), ckpt.detected.end());

  const auto& matrix = manager_->matrix();
  for (rating::NodeId i = 0; i < matrix.size(); ++i) {
    if (matrix.totals(i).total == 0) continue;
    // Ascending-rater enumeration on both matrix backends, so checkpoint
    // files are byte-identical regardless of the configured backend.
    matrix.for_each_nonzero_cell(
        i, [&ckpt, i](rating::NodeId k, const rating::PairStats& stats) {
          ckpt.cells.push_back({i, k, stats});
        });
  }
  return ckpt;
}

bool ServiceShard::checkpoint_and_rotate(const std::string& ckpt_path) {
  const auto ckpt = make_checkpoint();
  if (!ckpt) return false;
  if (!write_checkpoint(ckpt_path, *ckpt)) return false;
  if (wal_) {
    // Rotate with the current map stamp so a post-resize rotation writes
    // the new map's header (this is the resize commit point).
    wal_->rotate(map_epoch_, map_num_shards_);
    wal_records_.store(wal_->records(), std::memory_order_relaxed);
    wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
  }
  return true;
}

ServiceShard::NodeTransfer ServiceShard::take_node(rating::NodeId id) {
  NodeTransfer t;
  t.id = id;
  t.cells = manager_->take_window_row(id);
  t.raw_sum = engine_.take_raw_sum(id);
  t.suppressed = engine_.is_suppressed(id);
  if (t.suppressed) engine_.unsuppress(id);
  t.detected = manager_->take_detected(id);
  return t;
}

void ServiceShard::restore_node(const NodeTransfer& t) {
  for (const auto& [rater, stats] : t.cells)
    manager_->restore_window_cell(t.id, rater, stats);
  engine_.restore_raw_sum(t.id, t.raw_sum);
  if (t.suppressed) engine_.suppress(t.id);
  if (t.detected) manager_->restore_detected({t.id});
}

void ServiceShard::restore(const ShardCheckpoint& ckpt) {
  if (!ckpt.engine_blob.empty()) {
    std::istringstream blob(ckpt.engine_blob);
    if (!engine_.load_state(blob))
      throw std::runtime_error("shard restore: malformed engine state");
  }
  engine_.restore_suppressed(ckpt.suppressed);
  manager_->restore_detected(ckpt.detected);
  for (const CheckpointCell& cell : ckpt.cells) {
    manager_->restore_window_cell(cell.ratee, cell.rater, cell.stats);
  }
  applied_total_.store(ckpt.applied_total, std::memory_order_relaxed);
  applied_since_epoch_ = ckpt.applied_since_epoch;
  last_epoch_tick_ = ckpt.last_epoch_tick;
  last_applied_tick_ = ckpt.last_epoch_tick;
  epochs_completed_.store(ckpt.epochs_completed, std::memory_order_relaxed);

  // Republish: engine epoch re-derives the published vector (idempotent
  // for the summation engine) and refreshes the matrix reputation column.
  manager_->update_reputations();
  publish_view(ckpt.epochs_completed, {}, std::string());
}

void ServiceShard::reload_from(const ShardCheckpoint& ckpt) {
  // Rebuild the engine in place (the manager holds a reference to it, so
  // assignment — not reconstruction — keeps that reference valid), then
  // replace the manager wholesale for an empty matrix, and restore.
  engine_ = reputation::SummationEngine(config_->num_nodes,
                                        config_->engine_normalize);
  manager_ = std::make_unique<managers::IncrementalCentralizedManager>(
      config_->num_nodes, engine_, config_->detector_config,
      config_->matrix_backend);
  if (config_->epoch_scope == EpochScope::kPerShard &&
      detector_->wants_dirty_tracking()) {
    manager_->enable_dirty_tracking();
  }
  applied_total_.store(0, std::memory_order_relaxed);
  applied_since_epoch_ = 0;
  last_epoch_tick_ = 0;
  last_applied_tick_ = 0;
  epochs_completed_.store(0, std::memory_order_relaxed);
  restore(ckpt);
}

}  // namespace p2prep::service
