// ShardMap: the consistent-hash shard assignment of the reputation
// service (DESIGN.md "Elastic resharding"). Each of the S shards places
// kVirtualPoints points on the 2^64 Chord key space (dht::hash_shard_point,
// the same ring ChordRing keys live on); a node belongs to the shard whose
// point is the successor of dht::hash_node(id), wrapping at the top.
//
// Two properties the service builds on:
//
//  * Placement is a pure function of the shard count alone. Two maps built
//    for the same S agree everywhere, so recovery can rebuild the map any
//    checkpoint was written under from its stored shard count, and a
//    grow-then-shrink sequence (4 -> 8 -> 4) restores the original
//    placement exactly.
//  * Growing S -> S+1 moves only the key ranges claimed by the new shard's
//    points — an expected 1/(S+1) of all keys — and never moves a key
//    between two pre-existing shards. Shrinking removes the highest shard
//    indices and redistributes only their keys.
//
// The per-node owner table is materialized once at construction (O(n log
// (S*V))), so owner() is an O(1) array read on the ingest hot path — the
// same cost as the modulo mapping it replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/hash.h"
#include "rating/types.h"

namespace p2prep::service {

class ShardMap {
 public:
  /// Ring points per shard. More points flatten the per-shard key-count
  /// variance (stddev ~ 1/sqrt(V)); 64 keeps the map under 1 KiB per
  /// shard while bounding the imbalance well below 2x.
  static constexpr std::uint32_t kVirtualPoints = 64;

  /// Builds the map for `num_shards` shards over node ids
  /// [0, num_nodes). `num_shards` must be >= 1.
  ShardMap(std::size_t num_shards, std::size_t num_nodes);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return num_shards_;
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return owners_.size();
  }

  /// Owner shard of node `id`. O(1); `id` must be < num_nodes().
  [[nodiscard]] std::size_t owner(rating::NodeId id) const noexcept {
    return owners_[id];
  }

  /// Owner shard of an arbitrary ring key (successor point, wrapping).
  [[nodiscard]] std::size_t owner_of_key(dht::Key key) const noexcept;

  /// The materialized per-node owner table (detect::EpochSnapshot carries
  /// a copy so detectors resolve rows against the live map).
  [[nodiscard]] const std::vector<std::uint32_t>& owners() const noexcept {
    return owners_;
  }

  /// True when every node maps to one shard — the single-partition case
  /// where cross-row detection features (accomplice propagation) see the
  /// full pair graph and stay enabled.
  [[nodiscard]] bool single_owner() const noexcept;

  /// Node ids whose owner differs between `from` and `to`, ascending —
  /// the handoff set of a resize. Both maps must cover the same node
  /// range.
  [[nodiscard]] static std::vector<rating::NodeId> moved_nodes(
      const ShardMap& from, const ShardMap& to);

 private:
  struct RingPoint {
    dht::Key key;
    std::uint32_t shard;
  };

  std::size_t num_shards_;
  std::vector<RingPoint> points_;       ///< Sorted by key.
  std::vector<std::uint32_t> owners_;   ///< Node id -> shard index.
};

}  // namespace p2prep::service
