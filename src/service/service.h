// ReputationService: the sharded online front-end of the collusion
// detection pipeline (DESIGN.md "Service layer").
//
// Topology: ingest() routes each rating by ratee id through the live
// consistent-hash ShardMap onto one of S shards and enqueues it on that
// shard's bounded IngestQueue; a worker thread per shard drains its queue
// into the shard's incremental manager. Epochs (reputation update +
// detection) are triggered by rating-count or virtual-time thresholds:
//
//  * EpochScope::kGlobal — the router injects an epoch marker into every
//    queue; workers barrier on it and the last arriver becomes the epoch
//    COORDINATOR: it freezes all shards' state, then fans the detection
//    sweep out as row-range tasks claimed by the scan pool and by the
//    other workers parked at the barrier, merging per-range findings in
//    range order so the report is byte-identical to a serial pass
//    (cross-shard pairs included). With epoch_overlap on, the parked
//    workers are instead released as soon as the state is frozen and
//    resume ingest into per-shard pending buffers while the coordinator
//    scans; the buffered ratings apply after the epoch commits, so the
//    logical stream order — and every report, WAL and checkpoint byte —
//    matches the non-overlapped run. Epochs are totally ordered and
//    replay-deterministic.
//  * EpochScope::kPerShard — each shard epochs independently on its own
//    applied-rating count; detection is shard-local and shards never wait
//    for each other.
//
// Elastic resharding (kGlobal only): resize(new_num_shards) changes the
// shard count online. The router atomically injects a resize fence into
// every current queue and swaps in the new routing table, so each worker
// sees exactly the records routed under its map; once every worker is
// parked at the fence, the handoff moves only the nodes whose owner
// changed (consistent hashing: ~1/S of keys on grow), commits durably
// (checkpoint + WAL rotate under the new map), and releases. Ingest for
// non-moving keys never pauses longer than one handoff window, and
// detection reports are byte-identical to a never-resized run
// (tests/differential/reshard_differential_test.cpp).
//
// Reads (snapshot(), metrics(), report_log()) never block ingest: each
// shard publishes an immutable ShardView behind a shared_ptr swap.
//
// Durability: when configured with a wal_dir, every shard logs its applied
// record stream (ratings + epoch markers) to a per-shard WAL before
// applying it, and periodically compacts the log into a checkpoint (see
// service/wal.h). Constructing a service over a directory that already
// holds service state recovers it: the shard count and map epoch are read
// back from the stored headers (so a resized deployment recovers at its
// resized width regardless of config.num_shards), checkpoints are loaded,
// WAL suffixes replayed — re-running every epoch whose marker reached all
// shards — and the service resumes accepting ratings. Replay regenerates
// byte-identical detection reports (tested).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "detect/executor.h"
#include "service/ingest_queue.h"
#include "service/metrics.h"
#include "service/shard.h"
#include "service/shard_map.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace p2prep::service {

/// Point-in-time read view over all shards. Holding one pins the views it
/// references; the service keeps publishing newer ones concurrently.
struct ServiceSnapshot {
  std::vector<std::shared_ptr<const ShardView>> shards;
  /// The shard map the views were published under; resolves node -> shard.
  std::shared_ptr<const ShardMap> map;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards.size();
  }
  /// Owner shard of node i under this snapshot's map.
  [[nodiscard]] std::size_t owner(rating::NodeId i) const noexcept {
    return map ? map->owner(i) : 0;
  }
  /// Node i's published reputation, read from its owner shard's view.
  [[nodiscard]] double reputation(rating::NodeId i) const {
    const auto& view = *shards[owner(i)];
    return i < view.reputations.size() ? view.reputations[i] : 0.0;
  }
  /// Whether node i has been flagged as a colluder by its owner shard.
  [[nodiscard]] bool suspected(rating::NodeId i) const {
    const auto& view = *shards[owner(i)];
    return i < view.suspected.size() && view.suspected[i] != 0;
  }
  /// Lowest epoch any shard has published (== the epoch in kGlobal scope).
  [[nodiscard]] std::uint64_t min_epoch() const {
    std::uint64_t e = ~0ull;
    for (const auto& v : shards) e = std::min(e, v->epoch);
    return shards.empty() ? 0 : e;
  }
};

/// Outcome of one ReputationService::resize() call.
struct ResizeStats {
  std::size_t num_shards = 0;     ///< Shard count after the resize.
  std::uint64_t keys_moved = 0;   ///< Nodes whose owner shard changed.
  double duration_ms = 0.0;       ///< Handoff window (fence to release).
};

class ReputationService {
 public:
  /// Starts the shard workers. When config.wal_dir names a directory that
  /// already holds service state (service.meta present), recovers from
  /// checkpoint + WAL replay first — adopting the shard count the stored
  /// state was written under; a config mismatch with the stored meta
  /// (num_nodes / scope / detector) throws std::runtime_error.
  explicit ReputationService(ServiceConfig config);
  ~ReputationService();

  ReputationService(const ReputationService&) = delete;
  ReputationService& operator=(const ReputationService&) = delete;

  /// Routes one rating to its owner shard. Returns false when the rating
  /// is invalid (self-rating / id out of range) or the service has been
  /// stopped. Under OverflowPolicy::kBlock a full shard queue blocks the
  /// caller (backpressure); under kDropOldest it never blocks.
  bool ingest(const rating::Rating& r);

  /// Outcome of a non-blocking try_ingest().
  enum class IngestResult {
    kAccepted,  ///< Routed into the owner shard's queue.
    kInvalid,   ///< Self-rating or id out of range.
    kBusy,      ///< Owner shard's queue is full — retry later.
    kStopped,   ///< Service stopped; no more ratings will be accepted.
  };

  /// Non-blocking ingest for the RPC front-end: a full owner-shard queue
  /// returns kBusy instead of blocking (kBlock) or evicting (kDropOldest),
  /// so the caller can shed with a retry hint. Identical routing and epoch
  /// cadence to ingest() — the two can be mixed freely.
  IngestResult try_ingest(const rating::Rating& r);

  /// Current total queue depth across shards (cheap; the RPC server polls
  /// it as its inflight gauge for admission control).
  [[nodiscard]] std::uint64_t queue_depth() const;

  /// Blocks until every routed record has been fully processed and no
  /// epoch or resize is in flight. Deterministic quiesce point.
  void drain();

  /// Injects an epoch marker into every shard queue (asynchronously; use
  /// drain() to wait for completion). Returns the marker's sequence
  /// number. Works in both scopes; forced epochs are WAL-logged and thus
  /// replayed at the same stream position on recovery.
  std::uint64_t force_epoch();

  /// Changes the shard count online (kGlobal scope only; blocks until the
  /// handoff committed). Only nodes whose ShardMap owner changes move;
  /// ingest of non-moving keys continues throughout, bounded by one
  /// handoff window. Throws std::invalid_argument for unsupported
  /// configurations (per-shard scope, shard count 0, detector "group"
  /// with > 1 shard, normalized engine) and std::runtime_error when the
  /// service is stopped or the durable commit fails.
  ResizeStats resize(std::size_t new_num_shards);

  /// Closes the ingest queues, lets workers drain them, and joins. Safe
  /// to call twice. The destructor calls it implicitly.
  void stop();

  /// Test hook simulating a hard crash: discards everything still queued,
  /// abandons any in-flight epoch barrier or resize fence and joins the
  /// workers without flushing state — only the WAL survives, as in a real
  /// crash.
  void crash_stop();

  [[nodiscard]] ServiceSnapshot snapshot() const;
  [[nodiscard]] ServiceMetrics metrics() const;
  /// Concatenated detection reports: the global epoch log (kGlobal) or
  /// the shard logs in shard order (kPerShard).
  [[nodiscard]] std::string report_log() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  /// Current shard count (changes across resize()).
  [[nodiscard]] std::size_t num_shards() const;
  /// Owner shard of node `id` under the currently applied map.
  [[nodiscard]] std::size_t shard_of(rating::NodeId id) const;
  /// Whether the constructor restored state from a previous run.
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }

 private:
  struct ShardSlot {
    ShardSlot(std::size_t index, const ServiceConfig& config)
        : queue(config.queue_capacity, config.overflow,
                [](const WalRecord& r) {
                  return r.kind == WalRecordKind::kRating;
                }),
          shard(index, config) {}

    IngestQueue<WalRecord> queue;
    ServiceShard shard;
    std::thread worker;

    /// Detection/ingest overlap (kGlobal + epoch_overlap): while the
    /// coordinator scans the frozen matrices, this shard's worker parks
    /// popped ratings here (after WAL-logging them, preserving log order)
    /// instead of applying them; the coordinator applies the buffer in
    /// pop order after the epoch commits, so the matrices see exactly the
    /// serial stream. apply_mu_ is a per-slot leaf: it never nests with
    /// any service mutex (the coordinator flips `deferred` outside
    /// epoch_mu_) and guards only these two fields.
    util::Mutex apply_mu_;
    bool deferred P2PREP_GUARDED_BY(apply_mu_) = false;
    std::vector<WalRecord> pending P2PREP_GUARDED_BY(apply_mu_);
  };

  /// One immutable generation of the shard layout: the slots plus the map
  /// that routes into them. Two generations are live during a resize —
  /// the routing table (swapped when the fence is injected, so every
  /// record a queue holds was routed under the map its worker expects)
  /// and the applied table (swapped at the fence with all workers parked,
  /// backing every read and epoch). Slots shared between generations are
  /// the same objects.
  struct SlotTable {
    std::vector<std::shared_ptr<ShardSlot>> slots;
    std::shared_ptr<const ShardMap> map;
    std::uint64_t map_epoch = 0;
  };

  /// Durable files of one shard index, as found on disk at recovery.
  struct ShardDurableState {
    std::optional<ShardCheckpoint> ckpt;
    WalReadResult wal;
  };

  [[nodiscard]] std::string wal_path(std::size_t shard) const;
  [[nodiscard]] std::string ckpt_path(std::size_t shard) const;
  void write_meta() const;
  void check_meta() const;
  /// Reads checkpoint + WAL of every shard index that left files behind.
  [[nodiscard]] std::vector<ShardDurableState> read_durable_state() const;
  void recover(std::vector<ShardDurableState> state,
               std::uint64_t map_epoch);

  [[nodiscard]] std::shared_ptr<const SlotTable> routing_table() const
      P2PREP_EXCLUDES(route_mu_);
  [[nodiscard]] std::shared_ptr<const SlotTable> applied_table() const
      P2PREP_EXCLUDES(applied_mu_);
  /// Union of routing + applied slots (distinct objects only), for
  /// lifecycle paths that must reach retiring / not-yet-applied shards.
  [[nodiscard]] std::vector<std::shared_ptr<ShardSlot>> all_slots() const;

  void worker_loop(std::shared_ptr<ShardSlot> slot);
  void run_shard_epoch(ShardSlot& slot);
  void global_barrier(ShardSlot& slot, std::uint64_t seq);
  /// Worker side of a resize: parks at the fence until the handoff for
  /// `map_epoch` committed (or the service is crashing).
  void resize_fence(std::uint64_t map_epoch);
  /// The cross-shard epoch body; `live` gates wall-clock metrics and
  /// checkpoint compaction (both skipped during recovery replay). Shard
  /// state needs no lock here: callers guarantee every worker is parked
  /// at the barrier (or not yet started, during recovery).
  void run_global_epoch(std::uint64_t seq, bool live);
  /// Non-const: plugin detectors (global_detector_) keep streaming state
  /// between epochs, and draining dirty deltas mutates shard matrices.
  [[nodiscard]] core::DetectionReport global_detect(const SlotTable& table);
  void record_epoch_metrics(std::chrono::steady_clock::time_point start,
                            std::size_t detections);
  void checkpoint_shard(ShardSlot& slot);
  /// Publishes `count` scan tasks, lends the calling (coordinator) thread
  /// plus the scan pool — and, in non-overlap epochs, the workers parked
  /// at the barrier — to claim them, and returns once every task ran
  /// (rethrowing the first task exception). Tasks are pure compute over
  /// frozen state; determinism comes from the caller merging task-local
  /// results in task-index order.
  void run_scan_tasks(std::size_t count,
                      const std::function<void(std::size_t)>& fn)
      P2PREP_EXCLUDES(epoch_mu_);
  /// Claims and runs published scan tasks until none remain.
  void scan_claim_loop() P2PREP_EXCLUDES(epoch_mu_);
  [[nodiscard]] bool scan_work_available() const
      P2PREP_REQUIRES(epoch_mu_);
  /// Total threads a scan can use (coordinator + pool helpers).
  [[nodiscard]] std::size_t scan_concurrency() const noexcept;
  /// (Re)creates global_detector_ for the given map — at construction and
  /// after every resize (streaming detectors rebuild their caches from
  /// the re-partitioned matrices on the next epoch).
  void make_global_detector(const ShardMap& map);

  ServiceConfig config_;
  /// Cross-shard detector instance for global epochs: any registry plugin
  /// other than basic/optimized. Basic/optimized always go through the
  /// range-partitioned detect::sweep_{basic,optimized} plus the
  /// cross-shard accomplice exchange inline in global_detect(), so they
  /// need no plugin instance. Null in per-shard scope, where each shard
  /// owns its detector.
  std::unique_ptr<detect::Detector> global_detector_;
  /// Lends the coordinator's scan labor pool to detect-layer sweeps.
  struct ScanExecutor final : detect::Executor {
    explicit ScanExecutor(ReputationService* s) noexcept : svc(s) {}
    void run(std::size_t num_tasks,
             const std::function<void(std::size_t)>& fn) override {
      svc->run_scan_tasks(num_tasks, fn);
    }
    [[nodiscard]] std::size_t concurrency() const noexcept override {
      return svc->scan_concurrency();
    }
    ReputationService* svc;
  };
  ScanExecutor scan_executor_{this};
  /// Persistent scan helpers (kGlobal + parallel_epoch when the thread
  /// budget exceeds the coordinator alone). Workers parked at the barrier
  /// lend themselves on top of this in non-overlap epochs.
  std::unique_ptr<util::ThreadPool> epoch_pool_;
  bool recovered_ = false;
  /// Cleared (from any worker) when a checkpoint attempt fails, so the
  /// service degrades to WAL-only durability instead of retrying forever.
  std::atomic<bool> checkpoints_enabled_{false};

  // --- Lock hierarchy -------------------------------------------------
  // Service mutexes are ordered; the P2PREP_ACQUIRED_AFTER annotations
  // below make an out-of-order acquisition a compile error under the
  // Clang TSA gate (-Wthread-safety-beta, see CMakeLists). Levels:
  //
  //   L0  resize_mu_              resize()/stop() serialization, outermost
  //   L1  route_mu_ | epoch_mu_   router swap / barrier+fence (never held
  //                               together — both only nest under L0)
  //   L2  applied_mu_             applied-table swap (under epoch_mu_ in
  //                               the global-epoch body)
  //   L3  latency_mu_, log_mu_    metric/report leaves (under epoch_mu_)
  //
  // Below the service sit the per-object leaves — IngestQueue::mu_ (under
  // route_mu_: fence/marker injection pushes while routing), WalWriter::
  // mu_ and ServiceShard::view_mu_/log_mu_ (under epoch_mu_: the last
  // barrier arriver publishes views and rotates WALs). Those cannot be
  // named in member annotations here (TSA attribute arguments must be
  // in-scope member expressions), so their ordering is enforced by the
  // linter's conventions and documented in DESIGN.md §14.

  /// Serializes resize() calls against each other and against stop().
  util::Mutex resize_mu_;

  // Router state (kGlobal cadence) and the routing-generation table.
  mutable util::Mutex route_mu_ P2PREP_ACQUIRED_AFTER(resize_mu_);
  std::shared_ptr<const SlotTable> routing_ P2PREP_GUARDED_BY(route_mu_);
  std::uint64_t epoch_seq_ P2PREP_GUARDED_BY(route_mu_) = 0;
  std::uint64_t routed_since_epoch_ P2PREP_GUARDED_BY(route_mu_) = 0;
  rating::Tick global_last_epoch_tick_ P2PREP_GUARDED_BY(route_mu_) = 0;

  // Epoch barrier and resize fence (kGlobal scope).
  util::Mutex epoch_mu_ P2PREP_ACQUIRED_AFTER(resize_mu_);
  util::CondVar epoch_cv_;
  std::size_t arrived_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  /// How many workers a full epoch barrier takes — the applied table's
  /// slot count, updated while every worker is parked at a resize fence.
  std::size_t barrier_size_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::uint64_t epoch_done_seq_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::size_t resize_arrived_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::uint64_t resize_done_epoch_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  // Scan-task claim state (run_scan_tasks / scan_claim_loop). Non-null
  // scan_fn_ publishes a batch; claimants bump scan_next_, run the task
  // off-lock, then bump scan_done_. The publisher waits for
  // scan_done_ == scan_task_count_ and clears scan_fn_ before returning,
  // so the pointed-to function always outlives its claimants.
  const std::function<void(std::size_t)>* scan_fn_
      P2PREP_GUARDED_BY(epoch_mu_) = nullptr;
  std::size_t scan_task_count_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::size_t scan_next_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::size_t scan_done_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::exception_ptr scan_error_ P2PREP_GUARDED_BY(epoch_mu_);
  /// True from the moment an overlapped epoch releases the barrier until
  /// its buffered ratings have been applied; drain() waits it out.
  bool overlap_inflight_ P2PREP_GUARDED_BY(epoch_mu_) = false;

  // Applied-generation table: what epochs, reads and queries run against.
  mutable util::Mutex applied_mu_
      P2PREP_ACQUIRED_AFTER(resize_mu_, epoch_mu_);
  std::shared_ptr<const SlotTable> applied_ P2PREP_GUARDED_BY(applied_mu_);

  // Lifecycle.
  std::atomic<bool> stopped_{false};
  std::atomic<bool> crashing_{false};

  // Metrics.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> routed_records_{0};
  std::atomic<std::uint64_t> handled_records_{0};
  std::atomic<std::uint64_t> detections_total_{0};
  std::atomic<std::uint64_t> last_epoch_detections_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  // Ring gauges for global epochs (per-shard epochs use the shard's own).
  std::atomic<std::uint64_t> rings_found_{0};
  std::atomic<std::uint64_t> ring_largest_{0};
  std::atomic<std::uint64_t> ring_scan_us_{0};
  // Parallel-epoch gauges.
  std::atomic<std::uint64_t> epoch_scan_threads_{1};
  std::atomic<std::uint64_t> epoch_overlap_us_{0};
  std::atomic<std::uint64_t> accomplice_rounds_{0};
  // Cluster gauges (decentralized-manager mode).
  std::atomic<std::uint64_t> cluster_forwards_{0};
  std::atomic<std::uint64_t> cluster_forward_failures_{0};
  // Resize gauges.
  std::atomic<std::uint64_t> resizes_completed_{0};
  std::atomic<std::uint64_t> keys_moved_last_resize_{0};
  std::atomic<double> last_resize_ms_{0.0};
  // History counters of shards retired by shrinks, folded into metrics so
  // service-wide totals stay monotone across resizes.
  std::atomic<std::uint64_t> retired_applied_{0};
  std::atomic<std::uint64_t> retired_dropped_{0};
  std::uint64_t applied_base_ = 0;  ///< Applied count restored by recovery.
  std::chrono::steady_clock::time_point start_time_;
  mutable util::Mutex latency_mu_
      P2PREP_ACQUIRED_AFTER(resize_mu_, epoch_mu_);
  std::vector<double> epoch_latency_ms_ P2PREP_GUARDED_BY(latency_mu_);

  // Global-scope report log.
  mutable util::Mutex log_mu_ P2PREP_ACQUIRED_AFTER(resize_mu_, epoch_mu_);
  std::string report_log_ P2PREP_GUARDED_BY(log_mu_);
};

}  // namespace p2prep::service
