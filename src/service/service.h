// ReputationService: the sharded online front-end of the collusion
// detection pipeline (DESIGN.md "Service layer").
//
// Topology: ingest() consistent-hashes each rating by ratee id onto one of
// N shards and enqueues it on that shard's bounded IngestQueue; a worker
// thread per shard drains its queue into the shard's incremental manager.
// Epochs (reputation update + detection) are triggered by rating-count or
// virtual-time thresholds:
//
//  * EpochScope::kGlobal — the router injects an epoch marker into every
//    queue; workers barrier on it and the last arriver runs one detection
//    sweep over all shards' frozen state (cross-shard pairs included),
//    then releases the barrier. Epochs are totally ordered and replay-
//    deterministic.
//  * EpochScope::kPerShard — each shard epochs independently on its own
//    applied-rating count; detection is shard-local and shards never wait
//    for each other.
//
// Reads (snapshot(), metrics(), report_log()) never block ingest: each
// shard publishes an immutable ShardView behind a shared_ptr swap.
//
// Durability: when configured with a wal_dir, every shard logs its applied
// record stream (ratings + epoch markers) to a per-shard WAL before
// applying it, and periodically compacts the log into a checkpoint (see
// service/wal.h). Constructing a service over a directory that already
// holds service state recovers it: checkpoints are loaded, WAL suffixes
// replayed — re-running every epoch whose marker reached all shards — and
// the service resumes accepting ratings. Replay regenerates byte-identical
// detection reports (tested).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dht/hash.h"
#include "service/ingest_queue.h"
#include "service/metrics.h"
#include "service/shard.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::service {

/// Owner shard of node `id` among `num_shards` (consistent hash).
[[nodiscard]] inline std::size_t shard_for(rating::NodeId id,
                                           std::size_t num_shards) noexcept {
  return static_cast<std::size_t>(dht::hash_node(id) %
                                  static_cast<dht::Key>(num_shards));
}

/// Point-in-time read view over all shards. Holding one pins the views it
/// references; the service keeps publishing newer ones concurrently.
struct ServiceSnapshot {
  std::vector<std::shared_ptr<const ShardView>> shards;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards.size();
  }
  /// Node i's published reputation, read from its owner shard's view.
  [[nodiscard]] double reputation(rating::NodeId i) const {
    const auto& view = *shards[shard_for(i, shards.size())];
    return i < view.reputations.size() ? view.reputations[i] : 0.0;
  }
  /// Whether node i has been flagged as a colluder by its owner shard.
  [[nodiscard]] bool suspected(rating::NodeId i) const {
    const auto& view = *shards[shard_for(i, shards.size())];
    return i < view.suspected.size() && view.suspected[i] != 0;
  }
  /// Lowest epoch any shard has published (== the epoch in kGlobal scope).
  [[nodiscard]] std::uint64_t min_epoch() const {
    std::uint64_t e = ~0ull;
    for (const auto& v : shards) e = std::min(e, v->epoch);
    return shards.empty() ? 0 : e;
  }
};

class ReputationService {
 public:
  /// Starts the shard workers. When config.wal_dir names a directory that
  /// already holds service state (service.meta present), recovers from
  /// checkpoint + WAL replay first; a config mismatch with the stored
  /// meta throws std::runtime_error.
  explicit ReputationService(ServiceConfig config);
  ~ReputationService();

  ReputationService(const ReputationService&) = delete;
  ReputationService& operator=(const ReputationService&) = delete;

  /// Routes one rating to its owner shard. Returns false when the rating
  /// is invalid (self-rating / id out of range) or the service has been
  /// stopped. Under OverflowPolicy::kBlock a full shard queue blocks the
  /// caller (backpressure); under kDropOldest it never blocks.
  bool ingest(const rating::Rating& r);

  /// Outcome of a non-blocking try_ingest().
  enum class IngestResult {
    kAccepted,  ///< Routed into the owner shard's queue.
    kInvalid,   ///< Self-rating or id out of range.
    kBusy,      ///< Owner shard's queue is full — retry later.
    kStopped,   ///< Service stopped; no more ratings will be accepted.
  };

  /// Non-blocking ingest for the RPC front-end: a full owner-shard queue
  /// returns kBusy instead of blocking (kBlock) or evicting (kDropOldest),
  /// so the caller can shed with a retry hint. Identical routing and epoch
  /// cadence to ingest() — the two can be mixed freely.
  IngestResult try_ingest(const rating::Rating& r);

  /// Current total queue depth across shards (cheap; the RPC server polls
  /// it as its inflight gauge for admission control).
  [[nodiscard]] std::uint64_t queue_depth() const;

  /// Blocks until every routed record has been fully processed and no
  /// epoch is in flight. Deterministic quiesce point for tests/CLI.
  void drain();

  /// Injects an epoch marker into every shard queue (asynchronously; use
  /// drain() to wait for completion). Returns the marker's sequence
  /// number. Works in both scopes; forced epochs are WAL-logged and thus
  /// replayed at the same stream position on recovery.
  std::uint64_t force_epoch();

  /// Closes the ingest queues, lets workers drain them, and joins. Safe
  /// to call twice. The destructor calls it implicitly.
  void stop();

  /// Test hook simulating a hard crash: discards everything still queued,
  /// abandons any in-flight epoch barrier and joins the workers without
  /// flushing state — only the WAL survives, as in a real crash.
  void crash_stop();

  [[nodiscard]] ServiceSnapshot snapshot() const;
  [[nodiscard]] ServiceMetrics metrics() const;
  /// Concatenated detection reports: the global epoch log (kGlobal) or
  /// the shard logs in shard order (kPerShard).
  [[nodiscard]] std::string report_log() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t shard_of(rating::NodeId id) const noexcept {
    return shard_for(id, slots_.size());
  }
  /// Whether the constructor restored state from a previous run.
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }

 private:
  struct ShardSlot {
    ShardSlot(std::size_t index, const ServiceConfig& config)
        : queue(config.queue_capacity, config.overflow,
                [](const WalRecord& r) {
                  return r.kind == WalRecordKind::kRating;
                }),
          shard(index, config) {}

    IngestQueue<WalRecord> queue;
    ServiceShard shard;
    std::thread worker;
  };

  [[nodiscard]] std::string wal_path(std::size_t shard) const;
  [[nodiscard]] std::string ckpt_path(std::size_t shard) const;
  void write_meta() const;
  void check_meta() const;
  void recover();

  void worker_loop(std::size_t index);
  void run_shard_epoch(ShardSlot& slot);
  void global_barrier(ShardSlot& slot, std::uint64_t seq);
  /// The cross-shard epoch body; `live` gates wall-clock metrics and
  /// checkpoint compaction (both skipped during recovery replay). Shard
  /// state needs no lock here: callers guarantee every worker is parked
  /// at the barrier (or not yet started, during recovery).
  void run_global_epoch(std::uint64_t seq, bool live);
  /// Non-const: plugin detectors (global_detector_) keep streaming state
  /// between epochs, and draining dirty deltas mutates shard matrices.
  [[nodiscard]] core::DetectionReport global_detect();
  void record_epoch_metrics(std::chrono::steady_clock::time_point start,
                            std::size_t detections);
  void checkpoint_shard(ShardSlot& slot);

  ServiceConfig config_;
  std::vector<std::unique_ptr<ShardSlot>> slots_;
  /// Cross-shard detector instance for global epochs with a plugin
  /// detector ("basic"/"optimized" keep the inline sweep below; null in
  /// per-shard scope, where each shard owns its detector).
  std::unique_ptr<detect::Detector> global_detector_;
  bool recovered_ = false;
  /// Cleared (from any worker) when a checkpoint attempt fails, so the
  /// service degrades to WAL-only durability instead of retrying forever.
  std::atomic<bool> checkpoints_enabled_{false};

  // Router state (kGlobal cadence).
  mutable util::Mutex route_mu_;
  std::uint64_t epoch_seq_ P2PREP_GUARDED_BY(route_mu_) = 0;
  std::uint64_t routed_since_epoch_ P2PREP_GUARDED_BY(route_mu_) = 0;
  rating::Tick global_last_epoch_tick_ P2PREP_GUARDED_BY(route_mu_) = 0;

  // Epoch barrier (kGlobal scope).
  util::Mutex epoch_mu_;
  util::CondVar epoch_cv_;
  std::size_t arrived_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::uint64_t epoch_done_seq_ P2PREP_GUARDED_BY(epoch_mu_) = 0;

  // Lifecycle.
  std::atomic<bool> stopped_{false};
  std::atomic<bool> crashing_{false};

  // Metrics.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> routed_records_{0};
  std::atomic<std::uint64_t> handled_records_{0};
  std::atomic<std::uint64_t> detections_total_{0};
  std::atomic<std::uint64_t> last_epoch_detections_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
  // Ring gauges for global epochs (per-shard epochs use the shard's own).
  std::atomic<std::uint64_t> rings_found_{0};
  std::atomic<std::uint64_t> ring_largest_{0};
  std::atomic<std::uint64_t> ring_scan_us_{0};
  std::uint64_t applied_base_ = 0;  ///< Applied count restored by recovery.
  std::chrono::steady_clock::time_point start_time_;
  mutable util::Mutex latency_mu_;
  std::vector<double> epoch_latency_ms_ P2PREP_GUARDED_BY(latency_mu_);

  // Global-scope report log.
  mutable util::Mutex log_mu_;
  std::string report_log_ P2PREP_GUARDED_BY(log_mu_);
};

}  // namespace p2prep::service
