#include "service/wal.h"

#include <array>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace p2prep::service {

namespace {

constexpr std::array<char, 8> kWalMagic = {'P', '2', 'P', 'W',
                                           'A', 'L', '2', '\0'};
constexpr std::array<char, 8> kCkptMagic = {'P', '2', 'P', 'C',
                                            'K', 'P', 'T', '2'};
constexpr std::size_t kFrameBytes = 8;  // u32 len + u32 crc

static_assert(kWalHeaderBytes == 8 + 8 + 8 + 4,
              "header = magic + generation + map_epoch + num_shards");

// --- Little-endian encoding into / out of byte strings ---

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Sequential reader over a byte string; get_* return false on underrun.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  [[nodiscard]] bool get_u8(std::uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }
  [[nodiscard]] bool get_u32(std::uint32_t& v) {
    if (pos + 4 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 4;
    return true;
  }
  [[nodiscard]] bool get_u64(std::uint64_t& v) {
    if (pos + 8 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 8;
    return true;
  }
  [[nodiscard]] bool done() const noexcept { return pos == data.size(); }
};

std::string encode_payload(const WalRecord& rec) {
  std::string payload;
  put_u8(payload, static_cast<std::uint8_t>(rec.kind));
  if (rec.kind == WalRecordKind::kRating) {
    put_u32(payload, rec.rating.rater);
    put_u32(payload, rec.rating.ratee);
    put_u8(payload,
           static_cast<std::uint8_t>(rating::score_value(rec.rating.score) + 1));
    put_u64(payload, rec.rating.time);
  } else if (rec.kind == WalRecordKind::kShardMapChange) {
    put_u64(payload, rec.epoch_seq);
    put_u32(payload, rec.num_shards);
  } else if (rec.kind == WalRecordKind::kEpochMarker) {
    put_u64(payload, rec.epoch_seq);
  }
  return payload;
}

bool decode_payload(std::string_view payload, WalRecord& rec) {
  Cursor c{payload};
  std::uint8_t kind = 0;
  if (!c.get_u8(kind)) return false;
  if (kind == static_cast<std::uint8_t>(WalRecordKind::kRating)) {
    rec.kind = WalRecordKind::kRating;
    std::uint8_t biased_score = 0;
    if (!c.get_u32(rec.rating.rater) || !c.get_u32(rec.rating.ratee) ||
        !c.get_u8(biased_score) || !c.get_u64(rec.rating.time))
      return false;
    if (biased_score > 2) return false;
    rec.rating.score = static_cast<rating::Score>(
        static_cast<int>(biased_score) - 1);
  } else if (kind == static_cast<std::uint8_t>(WalRecordKind::kEpochMarker)) {
    rec.kind = WalRecordKind::kEpochMarker;
    if (!c.get_u64(rec.epoch_seq)) return false;
  } else if (kind ==
             static_cast<std::uint8_t>(WalRecordKind::kShardMapChange)) {
    rec.kind = WalRecordKind::kShardMapChange;
    if (!c.get_u64(rec.epoch_seq) || !c.get_u32(rec.num_shards)) return false;
  } else {
    return false;
  }
  return c.done();
}

std::string encode_frame(const WalRecord& rec) {
  std::string frame;
  append_wal_frame(frame, rec);
  return frame;
}

std::string encode_header(std::uint64_t generation, std::uint64_t map_epoch,
                          std::uint32_t num_shards) {
  std::string header;
  append_wal_header(header, generation, map_epoch, num_shards);
  return header;
}

}  // namespace

void append_wal_header(std::string& out, std::uint64_t generation,
                       std::uint64_t map_epoch, std::uint32_t num_shards) {
  out.append(kWalMagic.data(), kWalMagic.size());
  put_u64(out, generation);
  put_u64(out, map_epoch);
  put_u32(out, num_shards);
}

void append_wal_frame(std::string& out, const WalRecord& rec) {
  const std::string payload = encode_payload(rec);
  out.reserve(out.size() + kFrameBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out += payload;
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  // Table generated on first use (polynomial 0xEDB88320, reflected).
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      out_(std::move(other.out_)),
      generation_(other.generation_),
      map_epoch_(other.map_epoch_),
      num_shards_(other.num_shards_),
      records_(other.records_),
      bytes_(other.bytes_) {}

WalWriter WalWriter::create(const std::string& path, std::uint64_t generation,
                            std::uint64_t map_epoch,
                            std::uint32_t num_shards) {
  WalWriter w;
  w.path_ = path;
  {
    util::MutexLock lock(w.mu_);
    w.generation_ = generation;
    w.map_epoch_ = map_epoch;
    w.num_shards_ = num_shards;
    w.out_.open(path, std::ios::binary | std::ios::trunc);
    if (!w.out_) throw std::runtime_error("wal: cannot create " + path);
    const std::string header =
        encode_header(generation, map_epoch, num_shards);
    w.out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    w.out_.flush();
    w.bytes_ = header.size();
  }
  return w;
}

WalWriter WalWriter::resume(const std::string& path, std::uint64_t generation,
                            std::uint64_t map_epoch, std::uint32_t num_shards,
                            std::uint64_t valid_bytes,
                            std::uint64_t valid_records) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("wal: cannot stat " + path);
  if (size > valid_bytes) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) throw std::runtime_error("wal: cannot truncate " + path);
  }
  WalWriter w;
  w.path_ = path;
  {
    util::MutexLock lock(w.mu_);
    w.generation_ = generation;
    w.map_epoch_ = map_epoch;
    w.num_shards_ = num_shards;
    w.records_ = valid_records;
    w.bytes_ = valid_bytes;
    w.out_.open(path, std::ios::binary | std::ios::app);
    if (!w.out_) throw std::runtime_error("wal: cannot reopen " + path);
  }
  return w;
}

void WalWriter::append(const WalRecord& rec) {
  const std::string frame = encode_frame(rec);
  util::MutexLock lock(mu_);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("wal: write failed on " + path_);
  ++records_;
  bytes_ += frame.size();
}

void WalWriter::rotate() {
  util::MutexLock lock(mu_);
  rotate_locked();
}

void WalWriter::rotate(std::uint64_t map_epoch, std::uint32_t num_shards) {
  util::MutexLock lock(mu_);
  map_epoch_ = map_epoch;
  num_shards_ = num_shards;
  rotate_locked();
}

void WalWriter::rotate_locked() {
  out_.close();
  ++generation_;
  records_ = 0;
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("wal: cannot rotate " + path_);
  const std::string header =
      encode_header(generation_, map_epoch_, num_shards_);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  bytes_ = header.size();
}

WalReadResult read_wal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return parse_wal(content);
}

WalReadResult parse_wal(std::string_view content) {
  WalReadResult result;
  if (content.size() < kWalHeaderBytes ||
      !std::equal(kWalMagic.begin(), kWalMagic.end(), content.begin()))
    return result;

  Cursor c{content, kWalMagic.size()};
  if (!c.get_u64(result.generation) || !c.get_u64(result.map_epoch) ||
      !c.get_u32(result.num_shards))
    return result;
  result.found = true;
  result.valid_bytes = kWalHeaderBytes;

  while (!c.done()) {
    std::uint32_t len = 0, crc = 0;
    // A length beyond the record cap is treated exactly like a torn tail:
    // no real record is that large, and trusting it would make the reader
    // hash (and a naive reader allocate) attacker-chosen gigabytes.
    if (!c.get_u32(len) || !c.get_u32(crc) || len > kMaxWalRecordBytes ||
        c.pos + len > content.size()) {
      result.truncated_tail = true;
      break;
    }
    const std::string_view payload = content.substr(c.pos, len);
    if (crc32(payload.data(), payload.size()) != crc) {
      result.truncated_tail = true;
      break;
    }
    WalRecord rec;
    if (!decode_payload(payload, rec)) {
      result.truncated_tail = true;
      break;
    }
    c.pos += len;
    result.records.push_back(rec);
    result.end_offsets.push_back(c.pos);
    result.valid_bytes = c.pos;
  }
  return result;
}

std::string encode_checkpoint(const ShardCheckpoint& ckpt) {
  std::string payload;
  put_u64(payload, ckpt.wal_generation);
  put_u64(payload, ckpt.wal_records_applied);
  put_u64(payload, ckpt.map_epoch);
  put_u32(payload, ckpt.map_num_shards);
  put_u64(payload, ckpt.epochs_completed);
  put_u64(payload, ckpt.applied_total);
  put_u64(payload, ckpt.applied_since_epoch);
  put_u64(payload, ckpt.last_epoch_tick);
  put_u32(payload, static_cast<std::uint32_t>(ckpt.engine_blob.size()));
  payload += ckpt.engine_blob;
  put_u32(payload, static_cast<std::uint32_t>(ckpt.suppressed.size()));
  for (rating::NodeId id : ckpt.suppressed) put_u32(payload, id);
  put_u32(payload, static_cast<std::uint32_t>(ckpt.detected.size()));
  for (rating::NodeId id : ckpt.detected) put_u32(payload, id);
  put_u64(payload, ckpt.cells.size());
  for (const CheckpointCell& cell : ckpt.cells) {
    put_u32(payload, cell.ratee);
    put_u32(payload, cell.rater);
    put_u32(payload, cell.stats.total);
    put_u32(payload, cell.stats.positive);
    put_u32(payload, cell.stats.negative);
  }

  std::string blob(kCkptMagic.begin(), kCkptMagic.end());
  put_u32(blob, static_cast<std::uint32_t>(payload.size()));
  put_u32(blob, crc32(payload.data(), payload.size()));
  blob += payload;
  return blob;
}

bool write_checkpoint(const std::string& path, const ShardCheckpoint& ckpt) {
  const std::string blob = encode_checkpoint(ckpt);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<ShardCheckpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return parse_checkpoint(content);
}

std::optional<ShardCheckpoint> parse_checkpoint(std::string_view content) {
  if (content.size() < kCkptMagic.size() + kFrameBytes ||
      !std::equal(kCkptMagic.begin(), kCkptMagic.end(), content.begin()))
    return std::nullopt;

  Cursor header{content, kCkptMagic.size()};
  std::uint32_t len = 0, crc = 0;
  if (!header.get_u32(len) || !header.get_u32(crc) ||
      header.pos + len != content.size())
    return std::nullopt;
  const std::string_view payload = content.substr(header.pos, len);
  if (crc32(payload.data(), payload.size()) != crc) return std::nullopt;

  ShardCheckpoint ckpt;
  Cursor c{payload};
  std::uint32_t blob_len = 0;
  if (!c.get_u64(ckpt.wal_generation) ||
      !c.get_u64(ckpt.wal_records_applied) || !c.get_u64(ckpt.map_epoch) ||
      !c.get_u32(ckpt.map_num_shards) ||
      !c.get_u64(ckpt.epochs_completed) || !c.get_u64(ckpt.applied_total) ||
      !c.get_u64(ckpt.applied_since_epoch) ||
      !c.get_u64(ckpt.last_epoch_tick) || !c.get_u32(blob_len) ||
      c.pos + blob_len > payload.size())
    return std::nullopt;
  ckpt.engine_blob = payload.substr(c.pos, blob_len);
  c.pos += blob_len;

  // Every count below is validated against the bytes actually present
  // BEFORE the vector is sized: a checkpoint is adversary-presentable
  // input (an attacker with filesystem access can hand recovery anything),
  // and resize(count) on an unchecked u32/u64 would turn a 30-byte file
  // into a multi-GiB allocation. CRC alone does not help — the attacker
  // computes a valid CRC over the hostile counts.
  std::uint32_t count = 0;
  if (!c.get_u32(count) ||
      std::size_t{count} * 4 > payload.size() - c.pos)
    return std::nullopt;
  ckpt.suppressed.resize(count);
  for (auto& id : ckpt.suppressed)
    if (!c.get_u32(id)) return std::nullopt;
  if (!c.get_u32(count) ||
      std::size_t{count} * 4 > payload.size() - c.pos)
    return std::nullopt;
  ckpt.detected.resize(count);
  for (auto& id : ckpt.detected)
    if (!c.get_u32(id)) return std::nullopt;

  // 5 * u32 per cell on the wire.
  constexpr std::uint64_t kCellBytes = 20;
  std::uint64_t cell_count = 0;
  if (!c.get_u64(cell_count) ||
      cell_count > (payload.size() - c.pos) / kCellBytes)
    return std::nullopt;
  ckpt.cells.resize(cell_count);
  for (auto& cell : ckpt.cells) {
    if (!c.get_u32(cell.ratee) || !c.get_u32(cell.rater) ||
        !c.get_u32(cell.stats.total) || !c.get_u32(cell.stats.positive) ||
        !c.get_u32(cell.stats.negative))
      return std::nullopt;
  }
  if (!c.done()) return std::nullopt;
  return ckpt;
}

}  // namespace p2prep::service
