#include "service/service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/formula.h"
#include "core/predicates.h"
#include "detect/registry.h"

namespace p2prep::service {

namespace {
constexpr std::uint64_t kWalHeaderBytes = 16;
}  // namespace

ReputationService::ReputationService(ServiceConfig config)
    : config_(std::move(config)) {
  if (!config_.valid())
    throw std::invalid_argument("service: invalid ServiceConfig");
  if (config_.epoch_scope == EpochScope::kGlobal) {
    // Accomplice propagation walks matrix rows across the whole pair
    // graph; rows span shard partitions here, so the fixpoint is not
    // supported in global scope (ROADMAP open item).
    config_.detector_config.flag_accomplices = false;
    // The group adapter needs full rows in one matrix; a multi-shard
    // global sweep cannot provide them (ring handles sharding natively).
    if (config_.detector == "group" && config_.num_shards > 1)
      throw std::invalid_argument(
          "service: detector 'group' does not support multi-shard global "
          "epochs (use per-shard scope, one shard, or detector 'ring')");
  }
  // Fail fast on unknown detector names before any shard work starts
  // (create() throws listing every registered name).
  if (config_.epoch_scope == EpochScope::kGlobal &&
      config_.detector != "basic" && config_.detector != "optimized") {
    global_detector_ = detect::DetectorRegistry::global().create(
        config_.detector, config_.detector_config);
  }

  slots_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s)
    slots_.push_back(std::make_unique<ShardSlot>(s, config_));

  if (global_detector_ && global_detector_->wants_dirty_tracking()) {
    for (auto& slot : slots_) slot->shard.manager().enable_dirty_tracking();
  }

  checkpoints_enabled_.store(config_.checkpoint_every_epochs > 0 &&
                             !config_.wal_dir.empty());

  if (!config_.wal_dir.empty()) {
    std::filesystem::create_directories(config_.wal_dir);
    if (std::filesystem::exists(config_.wal_dir + "/service.meta")) {
      check_meta();
      recover();
      recovered_ = true;
    } else {
      write_meta();
      for (std::size_t s = 0; s < slots_.size(); ++s)
        slots_[s]->shard.attach_wal(WalWriter::create(wal_path(s), 0));
    }
  }

  std::uint64_t applied = 0;
  for (const auto& slot : slots_) applied += slot->shard.applied_total();
  applied_base_ = applied;
  start_time_ = std::chrono::steady_clock::now();

  for (std::size_t s = 0; s < slots_.size(); ++s)
    slots_[s]->worker = std::thread([this, s] { worker_loop(s); });
}

ReputationService::~ReputationService() { stop(); }

// --- Paths and meta --------------------------------------------------------

std::string ReputationService::wal_path(std::size_t shard) const {
  std::ostringstream os;
  os << config_.wal_dir << "/shard-" << std::setw(3) << std::setfill('0')
     << shard << ".wal";
  return os.str();
}

std::string ReputationService::ckpt_path(std::size_t shard) const {
  std::ostringstream os;
  os << config_.wal_dir << "/shard-" << std::setw(3) << std::setfill('0')
     << shard << ".ckpt";
  return os.str();
}

void ReputationService::write_meta() const {
  std::ofstream out(config_.wal_dir + "/service.meta", std::ios::trunc);
  out << "p2prep-service-meta 1\n"
      << "num_nodes " << config_.num_nodes << "\n"
      << "num_shards " << config_.num_shards << "\n"
      << "scope "
      << (config_.epoch_scope == EpochScope::kGlobal ? "global" : "per_shard")
      << "\n"
      << "detector " << config_.detector << "\n";
  if (!out) throw std::runtime_error("service: cannot write service.meta");
}

void ReputationService::check_meta() const {
  std::ifstream in(config_.wal_dir + "/service.meta");
  std::string magic, version;
  in >> magic >> version;
  if (magic != "p2prep-service-meta" || version != "1")
    throw std::runtime_error("service: unrecognized service.meta");
  std::string key, value;
  auto expect = [&](const std::string& want_key, const std::string& want) {
    if (!(in >> key >> value) || key != want_key || value != want)
      throw std::runtime_error("service: stored state was created with " +
                               key + "=" + value + ", configured " + want_key +
                               "=" + want);
  };
  expect("num_nodes", std::to_string(config_.num_nodes));
  expect("num_shards", std::to_string(config_.num_shards));
  expect("scope", config_.epoch_scope == EpochScope::kGlobal ? "global"
                                                             : "per_shard");
  expect("detector", config_.detector);
}

// --- Recovery --------------------------------------------------------------

void ReputationService::recover() {
  struct ShardRecovery {
    WalReadResult wal;
    std::size_t pos = 0;           // next unconsumed record index
    std::uint64_t generation = 0;
    std::uint64_t keep_bytes = kWalHeaderBytes;
    std::uint64_t keep_records = 0;
  };
  std::vector<ShardRecovery> shards(slots_.size());

  // Replay runs before the workers are spawned, so it accumulates the
  // router/barrier state in locals and publishes it under the proper
  // locks at the end — keeping the thread-safety contracts checkable.
  std::uint64_t max_epoch = 0;
  rating::Tick last_epoch_tick = 0;
  std::uint64_t since_epoch = 0;

  for (std::size_t s = 0; s < slots_.size(); ++s) {
    auto& r = shards[s];
    const auto ckpt = read_checkpoint(ckpt_path(s));
    r.wal = read_wal(wal_path(s));
    if (ckpt) slots_[s]->shard.restore(*ckpt);

    std::uint64_t skip = 0;
    if (ckpt && r.wal.found) {
      if (r.wal.generation < ckpt->wal_generation)
        throw std::runtime_error("service recover: WAL generation " +
                                 std::to_string(r.wal.generation) +
                                 " older than checkpoint " +
                                 std::to_string(ckpt->wal_generation));
      if (r.wal.generation == ckpt->wal_generation)
        skip = ckpt->wal_records_applied;
      // A younger-generation WAL holds only post-checkpoint records.
    }
    if (skip > r.wal.records.size())
      throw std::runtime_error(
          "service recover: checkpoint claims more applied records than the "
          "WAL holds");
    r.pos = skip;
    r.generation =
        r.wal.found ? r.wal.generation : (ckpt ? ckpt->wal_generation : 0);
    r.keep_bytes = r.wal.found ? r.wal.valid_bytes : kWalHeaderBytes;
    r.keep_records = r.wal.records.size();
    max_epoch = std::max(max_epoch, slots_[s]->shard.epochs_completed());
  }

  rating::Tick max_tick = 0;
  if (config_.epoch_scope == EpochScope::kPerShard) {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      auto& r = shards[s];
      for (; r.pos < r.wal.records.size(); ++r.pos) {
        const WalRecord& rec = r.wal.records[r.pos];
        if (rec.kind == WalRecordKind::kRating)
          slots_[s]->shard.apply_rating(rec.rating);
        else
          slots_[s]->shard.run_local_epoch();
      }
    }
  } else {
    for (;;) {
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        auto& r = shards[s];
        while (r.pos < r.wal.records.size() &&
               r.wal.records[r.pos].kind == WalRecordKind::kRating) {
          slots_[s]->shard.apply_rating(r.wal.records[r.pos].rating);
          max_tick = std::max(max_tick, r.wal.records[r.pos].rating.time);
          ++r.pos;
        }
      }
      bool all_at_marker = true;
      for (const auto& r : shards)
        all_at_marker = all_at_marker && r.pos < r.wal.records.size();
      if (!all_at_marker) break;

      const std::uint64_t seq = shards[0].wal.records[shards[0].pos].epoch_seq;
      for (const auto& r : shards) {
        if (r.wal.records[r.pos].epoch_seq != seq)
          throw std::runtime_error(
              "service recover: shards disagree on epoch marker sequence");
      }
      run_global_epoch(seq, /*live=*/false);
      max_epoch = std::max(max_epoch, seq);
      last_epoch_tick = max_tick;
      for (auto& r : shards) ++r.pos;
    }

    // An epoch marker not logged by every shard never ran (workers park at
    // the barrier before the last shard's marker is written), so drop it
    // from the resumed WAL; producers will inject that sequence again.
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      auto& r = shards[s];
      if (r.pos >= r.wal.records.size()) continue;
      if (r.pos + 1 < r.wal.records.size())
        throw std::runtime_error(
            "service recover: records found after an unpaired epoch marker");
      r.keep_records = r.pos;
      r.keep_bytes =
          r.pos > 0 ? r.wal.end_offsets[r.pos - 1] : kWalHeaderBytes;
    }

    for (const auto& slot : slots_)
      since_epoch += slot->shard.applied_since_epoch_;
  }

  {
    const util::MutexLock lock(route_mu_);
    epoch_seq_ = max_epoch;
    global_last_epoch_tick_ = last_epoch_tick;
    routed_since_epoch_ = since_epoch;
  }
  {
    const util::MutexLock lock(epoch_mu_);
    epoch_done_seq_ = max_epoch;
  }

  for (std::size_t s = 0; s < slots_.size(); ++s) {
    auto& r = shards[s];
    if (r.wal.found)
      slots_[s]->shard.attach_wal(WalWriter::resume(
          wal_path(s), r.generation, r.keep_bytes, r.keep_records));
    else
      slots_[s]->shard.attach_wal(WalWriter::create(wal_path(s), r.generation));
  }
}

// --- Ingest ----------------------------------------------------------------

bool ReputationService::ingest(const rating::Rating& r) {
  if (stopped_.load(std::memory_order_relaxed)) return false;
  if (r.rater == r.ratee || r.rater >= config_.num_nodes ||
      r.ratee >= config_.num_nodes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t s = shard_of(r.ratee);
  const WalRecord rec = WalRecord::make_rating(r);

  if (config_.epoch_scope == EpochScope::kPerShard) {
    if (!slots_[s]->queue.push(rec)) return false;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    routed_records_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Global scope: the router owns the epoch cadence, so the rating push
  // and any marker injection must be one atomic routing step.
  const util::MutexLock lock(route_mu_);
  if (!slots_[s]->queue.push(rec)) return false;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  routed_records_.fetch_add(1, std::memory_order_relaxed);
  ++routed_since_epoch_;

  const bool due =
      (config_.epoch_ratings > 0 &&
       routed_since_epoch_ >= config_.epoch_ratings) ||
      (config_.epoch_ticks > 0 &&
       r.time >= global_last_epoch_tick_ + config_.epoch_ticks);
  if (due) {
    const std::uint64_t seq = ++epoch_seq_;
    for (auto& slot : slots_) {
      if (slot->queue.push_forced(WalRecord::make_marker(seq)))
        routed_records_.fetch_add(1, std::memory_order_relaxed);
    }
    routed_since_epoch_ = 0;
    global_last_epoch_tick_ = r.time;
  }
  return true;
}

ReputationService::IngestResult ReputationService::try_ingest(
    const rating::Rating& r) {
  using TryPush = IngestQueue<WalRecord>::TryPush;
  if (stopped_.load(std::memory_order_relaxed)) return IngestResult::kStopped;
  if (r.rater == r.ratee || r.rater >= config_.num_nodes ||
      r.ratee >= config_.num_nodes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kInvalid;
  }
  const std::size_t s = shard_of(r.ratee);
  const WalRecord rec = WalRecord::make_rating(r);

  if (config_.epoch_scope == EpochScope::kPerShard) {
    switch (slots_[s]->queue.try_push(rec)) {
      case TryPush::kClosed: return IngestResult::kStopped;
      case TryPush::kFull: return IngestResult::kBusy;
      case TryPush::kOk: break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    routed_records_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kAccepted;
  }

  // Global scope: same atomic route-and-maybe-epoch step as ingest(); a
  // full queue bails out before any cadence state is touched.
  const util::MutexLock lock(route_mu_);
  switch (slots_[s]->queue.try_push(rec)) {
    case TryPush::kClosed: return IngestResult::kStopped;
    case TryPush::kFull: return IngestResult::kBusy;
    case TryPush::kOk: break;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  routed_records_.fetch_add(1, std::memory_order_relaxed);
  ++routed_since_epoch_;

  const bool due =
      (config_.epoch_ratings > 0 &&
       routed_since_epoch_ >= config_.epoch_ratings) ||
      (config_.epoch_ticks > 0 &&
       r.time >= global_last_epoch_tick_ + config_.epoch_ticks);
  if (due) {
    const std::uint64_t seq = ++epoch_seq_;
    for (auto& slot : slots_) {
      if (slot->queue.push_forced(WalRecord::make_marker(seq)))
        routed_records_.fetch_add(1, std::memory_order_relaxed);
    }
    routed_since_epoch_ = 0;
    global_last_epoch_tick_ = r.time;
  }
  return IngestResult::kAccepted;
}

std::uint64_t ReputationService::queue_depth() const {
  std::uint64_t depth = 0;
  for (const auto& slot : slots_) depth += slot->queue.size();
  return depth;
}

std::uint64_t ReputationService::force_epoch() {
  const util::MutexLock lock(route_mu_);
  const std::uint64_t seq = ++epoch_seq_;
  for (auto& slot : slots_) {
    if (slot->queue.push_forced(WalRecord::make_marker(seq)))
      routed_records_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.epoch_scope == EpochScope::kGlobal) routed_since_epoch_ = 0;
  return seq;
}

void ReputationService::drain() {
  for (;;) {
    bool barrier_busy = false;
    {
      const util::MutexLock lock(epoch_mu_);
      barrier_busy = arrived_ != 0;
    }
    std::uint64_t dropped = 0;
    std::uint64_t depth = 0;
    for (const auto& slot : slots_) {
      dropped += slot->queue.dropped();
      depth += slot->queue.size();
    }
    if (!barrier_busy && depth == 0 &&
        handled_records_.load(std::memory_order_acquire) + dropped >=
            routed_records_.load(std::memory_order_acquire))
      return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ReputationService::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  for (auto& slot : slots_) slot->queue.close();
  for (auto& slot : slots_)
    if (slot->worker.joinable()) slot->worker.join();
}

void ReputationService::crash_stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  crashing_.store(true);
  for (auto& slot : slots_) slot->queue.purge_and_close();
  {
    // Fence: any worker past the crashing_ check inside the barrier wait
    // re-evaluates after this lock/notify pair.
    const util::MutexLock lock(epoch_mu_);
  }
  epoch_cv_.notify_all();
  for (auto& slot : slots_)
    if (slot->worker.joinable()) slot->worker.join();
}

// --- Workers and epochs ----------------------------------------------------

void ReputationService::worker_loop(std::size_t index) {
  ShardSlot& slot = *slots_[index];
  while (auto rec = slot.queue.pop()) {
    if (crashing_.load(std::memory_order_relaxed)) return;
    if (rec->kind == WalRecordKind::kRating) {
      slot.shard.log_record(*rec);
      slot.shard.apply_rating(rec->rating);
      if (config_.epoch_scope == EpochScope::kPerShard &&
          slot.shard.epoch_due(rec->rating.time)) {
        slot.shard.log_record(
            WalRecord::make_marker(slot.shard.epochs_completed() + 1));
        run_shard_epoch(slot);
      }
    } else {
      slot.shard.log_record(*rec);
      if (config_.epoch_scope == EpochScope::kPerShard)
        run_shard_epoch(slot);
      else
        global_barrier(slot, rec->epoch_seq);
    }
    handled_records_.fetch_add(1, std::memory_order_release);
  }
}

void ReputationService::run_shard_epoch(ShardSlot& slot) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t pairs = slot.shard.run_local_epoch();
  record_epoch_metrics(start, pairs);
  if (checkpoints_enabled_.load(std::memory_order_relaxed) &&
      slot.shard.wal_attached() &&
      slot.shard.epochs_completed() % config_.checkpoint_every_epochs == 0)
    checkpoint_shard(slot);
}

void ReputationService::global_barrier(ShardSlot&, std::uint64_t seq) {
  bool last_arriver = false;
  {
    util::MutexLock lock(epoch_mu_);
    ++arrived_;
    if (arrived_ == slots_.size()) {
      // Last arriver: every other worker is parked, all shard state is
      // frozen — run the cross-shard epoch single-threaded.
      arrived_ = 0;
      run_global_epoch(seq, /*live=*/true);
      epoch_done_seq_ = seq;
      last_arriver = true;
    } else {
      while (epoch_done_seq_ < seq &&
             !crashing_.load(std::memory_order_relaxed))
        epoch_cv_.wait(epoch_mu_);
    }
  }
  if (last_arriver) epoch_cv_.notify_all();
}

void ReputationService::run_global_epoch(std::uint64_t seq, bool live) {
  const auto start = std::chrono::steady_clock::now();
  for (auto& slot : slots_) slot->shard.manager().update_reputations();

  const core::DetectionReport report = global_detect();
  const std::vector<rating::NodeId> flagged = report.colluders();

  using SuppressionMode = managers::CentralizedManager::SuppressionMode;
  if (config_.suppression != SuppressionMode::kNone && !flagged.empty()) {
    for (rating::NodeId id : flagged) {
      ServiceShard& owner = slots_[shard_of(id)]->shard;
      owner.manager().restore_detected({id});
      if (config_.suppression == SuppressionMode::kPin)
        owner.engine().suppress(id);
      else
        owner.engine().reset_reputation(id);
    }
    for (auto& slot : slots_) slot->shard.manager().update_reputations();
  }

  std::string text;
  if (config_.record_reports) {
    text = format_epoch_report("global", seq, report);
    const util::MutexLock lock(log_mu_);
    report_log_ += text;
  }
  for (auto& slot : slots_) {
    std::vector<rating::NodeId> owned;
    for (rating::NodeId id : flagged)
      if (shard_of(id) == slot->shard.index()) owned.push_back(id);
    slot->shard.finish_global_epoch(seq, owned, text);
  }

  rings_found_.fetch_add(report.rings.size(), std::memory_order_relaxed);
  for (const auto& ring : report.rings) {
    std::uint64_t prev = ring_largest_.load(std::memory_order_relaxed);
    while (prev < ring.members.size() &&
           !ring_largest_.compare_exchange_weak(prev, ring.members.size(),
                                                std::memory_order_relaxed)) {
    }
  }
  ring_scan_us_.store(global_detector_ ? global_detector_->stats().scan_us : 0,
                      std::memory_order_relaxed);

  if (live) {
    record_epoch_metrics(start, report.pairs.size() + report.rings.size());
    if (checkpoints_enabled_.load(std::memory_order_relaxed) &&
        seq % config_.checkpoint_every_epochs == 0) {
      for (auto& slot : slots_) checkpoint_shard(*slot);
    }
  }
}

core::DetectionReport ReputationService::global_detect() {
  const core::DetectorConfig& cfg = config_.detector_config;
  const std::size_t n = config_.num_nodes;
  core::DetectionReport report;

  // Plugin path: any registry detector other than basic/optimized runs
  // over a snapshot of every shard matrix (plus dirty deltas when the
  // detector streams). basic/optimized keep the inline sweeps below,
  // which reproduce the pre-registry reports byte-for-byte.
  if (global_detector_) {
    detect::EpochSnapshot snap;
    snap.matrices.reserve(slots_.size());
    for (auto& slot : slots_)
      snap.matrices.push_back(&slot->shard.manager().matrix());
    if (global_detector_->wants_dirty_tracking()) {
      snap.dirty.reserve(slots_.size());
      for (auto& slot : slots_)
        snap.dirty.push_back(slot->shard.manager().take_dirty_cells());
    }
    global_detector_->on_epoch(snap, report);
    return report;
  }

  auto matrix_of = [this](rating::NodeId id) -> const rating::RatingMatrix& {
    return slots_[shard_of(id)]->shard.manager().matrix();
  };

  // One-directional predicates mirroring the detector classes; every
  // quantity about ratee i (row, totals, frequent aggregate, window
  // reputation) is read from i's owner matrix `mi`.
  auto optimized_dir = [&](const rating::RatingMatrix& mi, rating::NodeId i,
                           rating::NodeId j) {
    const rating::PairStats& cell = mi.cell(i, j);
    report.cost.add_scan();
    report.cost.add_check();
    if (cell.total < cfg.frequency_min) return false;  // C4
    if (!cfg.joint_complement) {
      report.cost.add_check();
      return core::formula2_satisfied(
          static_cast<double>(mi.window_reputation(i)),
          cfg.positive_fraction_min, cfg.complement_fraction_max,
          mi.totals(i).total, cell.total, cfg.inclusive_bounds);
    }
    report.cost.add_check();
    if (!core::positive_fraction_ok(cell, cfg)) return false;  // C3
    report.cost.add_scan();
    const rating::PairStats complement =
        mi.totals(i) - mi.frequent_totals(i);
    report.cost.add_check();
    return core::complement_ok(complement, cfg);  // C2
  };

  auto basic_dir = [&](const rating::RatingMatrix& mi, rating::NodeId i,
                       rating::NodeId j, double& positive_fraction,
                       double& complement_fraction) {
    const rating::PairStats& cell = mi.cell(i, j);
    // The Basic method scans row i for the complement; the incremental
    // aggregates yield the same sums, but the scan's cost is charged.
    report.cost.add_scan(mi.size());
    rating::PairStats complement;
    if (cfg.joint_complement) {
      complement = mi.totals(i) - mi.frequent_totals(i);
      if (cell.total < cfg.frequency_min) complement -= cell;
    } else {
      complement = mi.totals(i) - cell;
    }
    report.cost.add_check();
    if (cell.total < cfg.frequency_min) return false;  // C4
    positive_fraction = cell.positive_fraction();
    report.cost.add_check();
    if (positive_fraction < cfg.positive_fraction_min) return false;  // C3
    report.cost.add_check();
    if (complement.total == 0) {
      complement_fraction = 0.0;
      return cfg.empty_complement_is_suspicious;
    }
    complement_fraction = complement.positive_fraction();
    return complement_fraction < cfg.complement_fraction_max;  // C2
  };

  if (config_.detector == "basic") {
    // Marks-equivalent enumeration: each unordered pair is examined once,
    // from its first high-reputed endpoint in ascending order.
    for (rating::NodeId a = 0; a < n; ++a) {
      for (rating::NodeId b = a + 1; b < n; ++b) {
        rating::NodeId i, j;
        report.cost.add_check();
        if (matrix_of(a).high_reputed(a)) {
          i = a;
          j = b;
        } else if (matrix_of(b).high_reputed(b)) {
          i = b;
          j = a;
        } else {
          continue;  // C1 fails on both sides
        }
        const rating::RatingMatrix& mi = matrix_of(i);
        const rating::RatingMatrix& mj = matrix_of(j);
        report.cost.add_scan();
        report.cost.add_check();
        if (cfg.require_mutual && !mj.high_reputed(j)) continue;

        core::PairEvidence ev;
        ev.first = i;
        ev.second = j;
        ev.ratings_to_first = mi.cell(i, j).total;
        ev.ratings_to_second = mj.cell(j, i).total;
        ev.global_rep_first = mi.global_reputation(i);
        ev.global_rep_second = mj.global_reputation(j);
        if (!basic_dir(mi, i, j, ev.positive_fraction_first,
                       ev.complement_fraction_first))
          continue;
        if (cfg.require_mutual &&
            !basic_dir(mj, j, i, ev.positive_fraction_second,
                       ev.complement_fraction_second))
          continue;
        report.pairs.push_back(ev);
      }
    }
  } else {
    // Mirrors OptimizedCollusionDetector: all ordered (i, j); a mutual
    // pair surfaces from both sides and canonicalize() dedups.
    for (rating::NodeId i = 0; i < n; ++i) {
      const rating::RatingMatrix& mi = matrix_of(i);
      report.cost.add_check();
      if (!mi.high_reputed(i)) continue;  // C1
      for (rating::NodeId j = 0; j < n; ++j) {
        if (j == i) continue;
        if (!optimized_dir(mi, i, j)) continue;
        const rating::RatingMatrix& mj = matrix_of(j);
        if (cfg.require_mutual) {
          report.cost.add_check();
          if (!mj.high_reputed(j)) continue;
          if (!optimized_dir(mj, j, i)) continue;
        }
        core::PairEvidence ev;
        ev.first = i;
        ev.second = j;
        ev.ratings_to_first = mi.cell(i, j).total;
        ev.ratings_to_second = mj.cell(j, i).total;
        ev.positive_fraction_first = mi.cell(i, j).positive_fraction();
        ev.positive_fraction_second = mj.cell(j, i).positive_fraction();
        const rating::PairStats comp_i = mi.totals(i) - mi.cell(i, j);
        const rating::PairStats comp_j = mj.totals(j) - mj.cell(j, i);
        ev.complement_fraction_first = comp_i.positive_fraction();
        ev.complement_fraction_second = comp_j.positive_fraction();
        ev.global_rep_first = mi.global_reputation(i);
        ev.global_rep_second = mj.global_reputation(j);
        report.pairs.push_back(ev);
      }
    }
  }

  report.canonicalize();
  return report;
}

void ReputationService::checkpoint_shard(ShardSlot& slot) {
  if (slot.shard.checkpoint_and_rotate(ckpt_path(slot.shard.index())))
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  else
    checkpoints_enabled_.store(false, std::memory_order_relaxed);
}

void ReputationService::record_epoch_metrics(
    std::chrono::steady_clock::time_point start, std::size_t detections) {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  detections_total_.fetch_add(detections, std::memory_order_relaxed);
  last_epoch_detections_.store(detections, std::memory_order_relaxed);
  const util::MutexLock lock(latency_mu_);
  epoch_latency_ms_.push_back(ms);
  if (epoch_latency_ms_.size() > 8192) {
    epoch_latency_ms_.erase(epoch_latency_ms_.begin(),
                            epoch_latency_ms_.begin() + 4096);
  }
}

// --- Read side -------------------------------------------------------------

ServiceSnapshot ReputationService::snapshot() const {
  ServiceSnapshot snap;
  snap.shards.reserve(slots_.size());
  for (const auto& slot : slots_) snap.shards.push_back(slot->shard.view());
  return snap;
}

ServiceMetrics ReputationService::metrics() const {
  ServiceMetrics m;
  m.ratings_accepted = accepted_.load(std::memory_order_relaxed);
  m.ratings_rejected = rejected_.load(std::memory_order_relaxed);
  std::uint64_t applied = 0;
  for (const auto& slot : slots_) {
    m.ratings_dropped += slot->queue.dropped();
    m.queue_depth += slot->queue.size();
    applied += slot->shard.applied_total();
    m.wal_records += slot->shard.wal_records();
    m.wal_bytes += slot->shard.wal_bytes();
    m.matrix_bytes += slot->shard.matrix_resident_bytes();
  }
  m.ratings_applied = applied;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  if (secs > 0.0)
    m.ingest_rate_per_sec =
        static_cast<double>(applied - applied_base_) / secs;

  if (config_.epoch_scope == EpochScope::kGlobal) {
    m.epochs_completed = slots_.empty() ? 0 : slots_[0]->shard.epochs_completed();
  } else {
    for (const auto& slot : slots_)
      m.epochs_completed += slot->shard.epochs_completed();
  }
  m.detections_total = detections_total_.load(std::memory_order_relaxed);
  m.last_epoch_detections =
      last_epoch_detections_.load(std::memory_order_relaxed);
  m.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);

  // Ring gauges: global epochs record on the service, per-shard epochs on
  // each shard — found sums, largest/scan take the max across sources.
  m.rings_found = rings_found_.load(std::memory_order_relaxed);
  m.ring_largest = ring_largest_.load(std::memory_order_relaxed);
  m.ring_scan_us = ring_scan_us_.load(std::memory_order_relaxed);
  for (const auto& slot : slots_) {
    m.rings_found += slot->shard.rings_found();
    m.ring_largest = std::max(m.ring_largest, slot->shard.ring_largest());
    m.ring_scan_us = std::max(m.ring_scan_us, slot->shard.ring_scan_us());
  }

  const util::MutexLock lock(latency_mu_);
  if (!epoch_latency_ms_.empty()) {
    std::vector<double> sorted = epoch_latency_ms_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted) sum += v;
    m.epoch_latency_ms_mean = sum / static_cast<double>(sorted.size());
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(
            static_cast<double>(sorted.size()) * 0.99));
    m.epoch_latency_ms_p99 = sorted[idx];
  }
  return m;
}

std::string ReputationService::report_log() const {
  if (config_.epoch_scope == EpochScope::kGlobal) {
    const util::MutexLock lock(log_mu_);
    return report_log_;
  }
  std::string out;
  for (const auto& slot : slots_) out += slot->shard.report_log();
  return out;
}

}  // namespace p2prep::service
