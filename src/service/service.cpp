#include "service/service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "detect/accomplice_exchange.h"
#include "detect/pair_sweep.h"
#include "detect/registry.h"

namespace p2prep::service {

ReputationService::ReputationService(ServiceConfig config)
    : config_(std::move(config)) {
  if (!config_.valid())
    throw std::invalid_argument("service: invalid ServiceConfig");

  if (config_.cluster) {
    // Decentralized-manager mode: shard state lives in the manager
    // cluster; the local shards are per-epoch working copies refreshed by
    // pull. Constraints follow from that shape — epochs must be global
    // (the pull/push commit is cluster-wide), durability belongs to the
    // managers, and reload_from() resets the virtual-time trigger state,
    // so the cadence must be rating-count based.
    if (config_.epoch_scope != EpochScope::kGlobal)
      throw std::invalid_argument(
          "service: cluster mode requires global epoch scope");
    if (!config_.wal_dir.empty())
      throw std::invalid_argument(
          "service: cluster mode is incompatible with a local wal_dir "
          "(the managers own durability)");
    if (config_.detector != "basic" && config_.detector != "optimized")
      throw std::invalid_argument(
          "service: cluster mode supports detectors 'basic' and "
          "'optimized' only");
    if (config_.epoch_ticks != 0 || config_.epoch_ratings == 0)
      throw std::invalid_argument(
          "service: cluster mode requires a rating-count epoch trigger");
    // The epoch body replaces shard matrices wholesale (reload_from), so
    // ingest can never overlap it; checkpointing has nothing local to
    // checkpoint.
    config_.epoch_overlap = false;
    config_.checkpoint_every_epochs = 0;
  }

  // A durable directory that already holds service state decides the live
  // shard layout: recovery adopts the (map_epoch, num_shards) stamped into
  // the stored checkpoints / WAL headers by the most recent committed
  // resize, not config_.num_shards.
  std::size_t live_shards = config_.num_shards;
  std::uint64_t live_epoch = 0;
  std::vector<ShardDurableState> durable;
  bool recovering = false;
  if (!config_.wal_dir.empty()) {
    std::filesystem::create_directories(config_.wal_dir);
    if (std::filesystem::exists(config_.wal_dir + "/service.meta")) {
      check_meta();
      recovering = true;
      durable = read_durable_state();

      bool found_any = false;
      for (const auto& d : durable) {
        const auto consider = [&](std::uint64_t epoch, std::uint32_t shards) {
          if (shards == 0) return;
          if (!found_any || epoch > live_epoch) {
            live_epoch = epoch;
            live_shards = shards;
          }
          found_any = true;
        };
        if (d.ckpt) consider(d.ckpt->map_epoch, d.ckpt->map_num_shards);
        if (d.wal.found) consider(d.wal.map_epoch, d.wal.num_shards);
      }
      // Every file a live shard left behind must carry the winning stamp;
      // a mix means the crash hit the middle of a resize commit, which is
      // not recoverable (checkpoints from two maps describe overlapping
      // state). Files at indices past the live count are shrink leftovers
      // and are cleaned up by recover().
      for (std::size_t s = 0; s < durable.size() && s < live_shards; ++s) {
        const auto& d = durable[s];
        if ((d.ckpt && (d.ckpt->map_epoch != live_epoch ||
                        d.ckpt->map_num_shards != live_shards)) ||
            (d.wal.found && (d.wal.map_epoch != live_epoch ||
                             d.wal.num_shards != live_shards)))
          throw std::runtime_error(
              "service recover: shards disagree on shard map epoch (crash "
              "inside a resize commit)");
      }
      if (live_epoch > 0) {
        for (std::size_t s = 0; s < live_shards; ++s) {
          if (s >= durable.size() ||
              (!durable[s].ckpt && !durable[s].wal.found))
            throw std::runtime_error(
                "service recover: missing durable files for shard " +
                std::to_string(s));
        }
      }
    }
  }

  auto map = std::make_shared<const ShardMap>(live_shards, config_.num_nodes);

  if (config_.epoch_scope == EpochScope::kGlobal) {
    // The group adapter needs full rows in one matrix; a multi-shard
    // global sweep cannot provide them (ring handles sharding natively,
    // and basic/optimized run the cross-shard accomplice exchange).
    if (config_.detector == "group" && map->num_shards() > 1)
      throw std::invalid_argument(
          "service: detector 'group' does not support multi-shard global "
          "epochs (use per-shard scope, one shard, or detector 'ring')");
    if (config_.parallel_epoch) {
      const std::size_t budget =
          config_.epoch_scan_threads != 0
              ? config_.epoch_scan_threads
              : std::min<std::size_t>(
                    std::max<std::size_t>(
                        1, std::thread::hardware_concurrency()),
                    8);
      epoch_scan_threads_.store(budget, std::memory_order_relaxed);
      if (budget > 1)
        epoch_pool_ = std::make_unique<util::ThreadPool>(budget - 1);
    }
  }
  // Fails fast on unknown detector names before any shard work starts
  // (create() throws listing every registered name).
  make_global_detector(*map);

  SlotTable table;
  table.map = map;
  table.map_epoch = live_epoch;
  table.slots.reserve(live_shards);
  for (std::size_t s = 0; s < live_shards; ++s) {
    auto slot = std::make_shared<ShardSlot>(s, config_);
    slot->shard.set_shard_map_stamp(live_epoch,
                                    static_cast<std::uint32_t>(live_shards));
    table.slots.push_back(std::move(slot));
  }
  if (global_detector_ && global_detector_->wants_dirty_tracking()) {
    for (const auto& slot : table.slots)
      slot->shard.manager().enable_dirty_tracking();
  }

  auto table_ptr = std::make_shared<const SlotTable>(std::move(table));
  {
    const util::MutexLock lock(route_mu_);
    routing_ = table_ptr;
  }
  {
    const util::MutexLock lock(applied_mu_);
    applied_ = table_ptr;
  }
  {
    const util::MutexLock lock(epoch_mu_);
    barrier_size_ = live_shards;
    resize_done_epoch_ = live_epoch;
  }

  checkpoints_enabled_.store(config_.checkpoint_every_epochs > 0 &&
                             !config_.wal_dir.empty());

  if (!config_.wal_dir.empty()) {
    if (recovering) {
      recover(std::move(durable), live_epoch);
      recovered_ = true;
    } else {
      write_meta();
      for (std::size_t s = 0; s < table_ptr->slots.size(); ++s)
        table_ptr->slots[s]->shard.attach_wal(WalWriter::create(
            wal_path(s), 0, live_epoch,
            static_cast<std::uint32_t>(live_shards)));
    }
  }

  std::uint64_t applied = 0;
  for (const auto& slot : table_ptr->slots)
    applied += slot->shard.applied_total();
  applied_base_ = applied;
  start_time_ = std::chrono::steady_clock::now();

  for (const auto& slot : table_ptr->slots)
    slot->worker = std::thread([this, slot] { worker_loop(slot); });
}

ReputationService::~ReputationService() { stop(); }

// --- Paths and meta --------------------------------------------------------

std::string ReputationService::wal_path(std::size_t shard) const {
  std::ostringstream os;
  os << config_.wal_dir << "/shard-" << std::setw(3) << std::setfill('0')
     << shard << ".wal";
  return os.str();
}

std::string ReputationService::ckpt_path(std::size_t shard) const {
  std::ostringstream os;
  os << config_.wal_dir << "/shard-" << std::setw(3) << std::setfill('0')
     << shard << ".ckpt";
  return os.str();
}

void ReputationService::write_meta() const {
  std::ofstream out(config_.wal_dir + "/service.meta", std::ios::trunc);
  out << "p2prep-service-meta 1\n"
      << "num_nodes " << config_.num_nodes << "\n"
      << "num_shards " << config_.num_shards << "\n"
      << "scope "
      << (config_.epoch_scope == EpochScope::kGlobal ? "global" : "per_shard")
      << "\n"
      << "detector " << config_.detector << "\n";
  if (!out) throw std::runtime_error("service: cannot write service.meta");
}

void ReputationService::check_meta() const {
  std::ifstream in(config_.wal_dir + "/service.meta");
  std::string magic, version;
  in >> magic >> version;
  if (magic != "p2prep-service-meta" || version != "1")
    throw std::runtime_error("service: unrecognized service.meta");
  std::string key, value;
  auto expect = [&](const std::string& want_key, const std::string& want) {
    if (!(in >> key >> value) || key != want_key || value != want)
      throw std::runtime_error("service: stored state was created with " +
                               key + "=" + value + ", configured " + want_key +
                               "=" + want);
  };
  expect("num_nodes", std::to_string(config_.num_nodes));
  // num_shards records the count the directory was created with; the live
  // count is whatever the stored shard-map stamps say (resize() changes
  // it), so the line is parsed but not enforced.
  if (!(in >> key >> value) || key != "num_shards")
    throw std::runtime_error("service: unrecognized service.meta");
  expect("scope", config_.epoch_scope == EpochScope::kGlobal ? "global"
                                                             : "per_shard");
  expect("detector", config_.detector);
}

// --- Recovery --------------------------------------------------------------

std::vector<ReputationService::ShardDurableState>
ReputationService::read_durable_state() const {
  std::vector<ShardDurableState> state;
  std::size_t max_index = 0;
  bool any = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.wal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const auto dot = name.find('.');
    if (dot == std::string::npos || dot <= 6) continue;
    const std::string digits = name.substr(6, dot - 6);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    max_index = std::max(max_index,
                         static_cast<std::size_t>(std::stoul(digits)));
    any = true;
  }
  if (any) {
    state.resize(max_index + 1);
    for (std::size_t s = 0; s < state.size(); ++s) {
      state[s].ckpt = read_checkpoint(ckpt_path(s));
      state[s].wal = read_wal(wal_path(s));
    }
  }
  return state;
}

void ReputationService::recover(std::vector<ShardDurableState> state,
                                std::uint64_t map_epoch) {
  const auto table = applied_table();
  const auto& slots = table->slots;

  // Files at shard indices the live map no longer covers are leftovers of
  // a committed shrink whose cleanup crashed half-way; finish it.
  for (std::size_t s = slots.size(); s < state.size(); ++s) {
    std::filesystem::remove(wal_path(s));
    std::filesystem::remove(ckpt_path(s));
  }
  state.resize(slots.size());

  struct ShardRecovery {
    WalReadResult wal;
    std::size_t pos = 0;  // next unconsumed record index
    std::uint64_t generation = 0;
    std::uint64_t keep_bytes = kWalHeaderBytes;
    std::uint64_t keep_records = 0;
  };
  std::vector<ShardRecovery> shards(slots.size());

  // Replay runs before the workers are spawned, so it accumulates the
  // router/barrier state in locals and publishes it under the proper
  // locks at the end — keeping the thread-safety contracts checkable.
  std::uint64_t max_epoch = 0;
  rating::Tick last_epoch_tick = 0;
  std::uint64_t since_epoch = 0;

  for (std::size_t s = 0; s < slots.size(); ++s) {
    auto& r = shards[s];
    r.wal = std::move(state[s].wal);
    if (state[s].ckpt) slots[s]->shard.restore(*state[s].ckpt);

    // An uncommitted resize leaves its fence marker as the last record
    // (the worker parks right after logging it, and a committed resize
    // rotates the file away). Strip it — that resize never happened as
    // far as durable state is concerned — and reject anything after it.
    for (std::size_t i = 0; i + 1 < r.wal.records.size(); ++i) {
      if (r.wal.records[i].kind == WalRecordKind::kShardMapChange)
        throw std::runtime_error(
            "service recover: records found after a resize fence marker");
    }
    if (!r.wal.records.empty() &&
        r.wal.records.back().kind == WalRecordKind::kShardMapChange) {
      r.wal.records.pop_back();
      r.wal.end_offsets.pop_back();
      r.wal.valid_bytes = r.wal.end_offsets.empty()
                              ? kWalHeaderBytes
                              : r.wal.end_offsets.back();
    }

    std::uint64_t skip = 0;
    const auto& ckpt = state[s].ckpt;
    if (ckpt && r.wal.found) {
      if (r.wal.generation < ckpt->wal_generation)
        throw std::runtime_error("service recover: WAL generation " +
                                 std::to_string(r.wal.generation) +
                                 " older than checkpoint " +
                                 std::to_string(ckpt->wal_generation));
      if (r.wal.generation == ckpt->wal_generation)
        skip = ckpt->wal_records_applied;
      // A younger-generation WAL holds only post-checkpoint records.
    }
    if (skip > r.wal.records.size())
      throw std::runtime_error(
          "service recover: checkpoint claims more applied records than the "
          "WAL holds");
    r.pos = skip;
    r.generation =
        r.wal.found ? r.wal.generation : (ckpt ? ckpt->wal_generation : 0);
    r.keep_bytes = r.wal.found ? r.wal.valid_bytes : kWalHeaderBytes;
    r.keep_records = r.wal.records.size();
    max_epoch = std::max(max_epoch, slots[s]->shard.epochs_completed());
  }

  rating::Tick max_tick = 0;
  if (config_.epoch_scope == EpochScope::kPerShard) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      auto& r = shards[s];
      for (; r.pos < r.wal.records.size(); ++r.pos) {
        const WalRecord& rec = r.wal.records[r.pos];
        if (rec.kind == WalRecordKind::kRating)
          slots[s]->shard.apply_rating(rec.rating);
        else
          slots[s]->shard.run_local_epoch();
      }
    }
  } else {
    for (;;) {
      for (std::size_t s = 0; s < slots.size(); ++s) {
        auto& r = shards[s];
        while (r.pos < r.wal.records.size() &&
               r.wal.records[r.pos].kind == WalRecordKind::kRating) {
          slots[s]->shard.apply_rating(r.wal.records[r.pos].rating);
          max_tick = std::max(max_tick, r.wal.records[r.pos].rating.time);
          ++r.pos;
        }
      }
      bool all_at_marker = true;
      for (const auto& r : shards)
        all_at_marker = all_at_marker && r.pos < r.wal.records.size();
      if (!all_at_marker) break;

      const std::uint64_t seq = shards[0].wal.records[shards[0].pos].epoch_seq;
      for (const auto& r : shards) {
        if (r.wal.records[r.pos].epoch_seq != seq)
          throw std::runtime_error(
              "service recover: shards disagree on epoch marker sequence");
      }
      run_global_epoch(seq, /*live=*/false);
      max_epoch = std::max(max_epoch, seq);
      last_epoch_tick = max_tick;
      for (auto& r : shards) ++r.pos;
    }

    // An epoch marker not logged by every shard never ran (workers park at
    // the barrier before the last shard's marker is written), so drop it
    // from the resumed WAL; producers will inject that sequence again.
    for (std::size_t s = 0; s < slots.size(); ++s) {
      auto& r = shards[s];
      if (r.pos >= r.wal.records.size()) continue;
      if (r.pos + 1 < r.wal.records.size())
        throw std::runtime_error(
            "service recover: records found after an unpaired epoch marker");
      r.keep_records = r.pos;
      r.keep_bytes =
          r.pos > 0 ? r.wal.end_offsets[r.pos - 1] : kWalHeaderBytes;
    }

    for (const auto& slot : slots)
      since_epoch += slot->shard.applied_since_epoch_;
  }

  {
    const util::MutexLock lock(route_mu_);
    epoch_seq_ = max_epoch;
    global_last_epoch_tick_ = last_epoch_tick;
    routed_since_epoch_ = since_epoch;
  }
  {
    const util::MutexLock lock(epoch_mu_);
    epoch_done_seq_ = max_epoch;
  }

  const auto num_shards = static_cast<std::uint32_t>(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    auto& r = shards[s];
    if (r.wal.found)
      slots[s]->shard.attach_wal(
          WalWriter::resume(wal_path(s), r.generation, map_epoch, num_shards,
                            r.keep_bytes, r.keep_records));
    else
      slots[s]->shard.attach_wal(
          WalWriter::create(wal_path(s), r.generation, map_epoch, num_shards));
  }
}

// --- Ingest ----------------------------------------------------------------

bool ReputationService::ingest(const rating::Rating& r) {
  if (stopped_.load(std::memory_order_relaxed)) return false;
  if (r.rater == r.ratee || r.rater >= config_.num_nodes ||
      r.ratee >= config_.num_nodes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const WalRecord rec = WalRecord::make_rating(r);

  if (config_.epoch_scope == EpochScope::kPerShard) {
    const auto table = routing_table();
    if (!table->slots[table->map->owner(r.ratee)]->queue.push(rec))
      return false;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    routed_records_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Global scope: the router owns the epoch cadence, so the rating push
  // and any marker injection must be one atomic routing step.
  const util::MutexLock lock(route_mu_);
  if (!routing_->slots[routing_->map->owner(r.ratee)]->queue.push(rec))
    return false;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  routed_records_.fetch_add(1, std::memory_order_relaxed);
  ++routed_since_epoch_;

  const bool due =
      (config_.epoch_ratings > 0 &&
       routed_since_epoch_ >= config_.epoch_ratings) ||
      (config_.epoch_ticks > 0 &&
       r.time >= global_last_epoch_tick_ + config_.epoch_ticks);
  if (due) {
    const std::uint64_t seq = ++epoch_seq_;
    for (const auto& slot : routing_->slots) {
      if (slot->queue.push_forced(WalRecord::make_marker(seq)))
        routed_records_.fetch_add(1, std::memory_order_relaxed);
    }
    routed_since_epoch_ = 0;
    global_last_epoch_tick_ = r.time;
  }
  return true;
}

ReputationService::IngestResult ReputationService::try_ingest(
    const rating::Rating& r) {
  using TryPush = IngestQueue<WalRecord>::TryPush;
  if (stopped_.load(std::memory_order_relaxed)) return IngestResult::kStopped;
  if (r.rater == r.ratee || r.rater >= config_.num_nodes ||
      r.ratee >= config_.num_nodes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kInvalid;
  }
  const WalRecord rec = WalRecord::make_rating(r);

  if (config_.epoch_scope == EpochScope::kPerShard) {
    const auto table = routing_table();
    switch (table->slots[table->map->owner(r.ratee)]->queue.try_push(rec)) {
      case TryPush::kClosed: return IngestResult::kStopped;
      case TryPush::kFull: return IngestResult::kBusy;
      case TryPush::kOk: break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    routed_records_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kAccepted;
  }

  // Global scope: same atomic route-and-maybe-epoch step as ingest(); a
  // full queue bails out before any cadence state is touched.
  const util::MutexLock lock(route_mu_);
  switch (routing_->slots[routing_->map->owner(r.ratee)]->queue.try_push(rec)) {
    case TryPush::kClosed: return IngestResult::kStopped;
    case TryPush::kFull: return IngestResult::kBusy;
    case TryPush::kOk: break;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  routed_records_.fetch_add(1, std::memory_order_relaxed);
  ++routed_since_epoch_;

  const bool due =
      (config_.epoch_ratings > 0 &&
       routed_since_epoch_ >= config_.epoch_ratings) ||
      (config_.epoch_ticks > 0 &&
       r.time >= global_last_epoch_tick_ + config_.epoch_ticks);
  if (due) {
    const std::uint64_t seq = ++epoch_seq_;
    for (const auto& slot : routing_->slots) {
      if (slot->queue.push_forced(WalRecord::make_marker(seq)))
        routed_records_.fetch_add(1, std::memory_order_relaxed);
    }
    routed_since_epoch_ = 0;
    global_last_epoch_tick_ = r.time;
  }
  return IngestResult::kAccepted;
}

std::uint64_t ReputationService::queue_depth() const {
  const auto table = routing_table();
  std::uint64_t depth = 0;
  for (const auto& slot : table->slots) depth += slot->queue.size();
  return depth;
}

std::uint64_t ReputationService::force_epoch() {
  const util::MutexLock lock(route_mu_);
  const std::uint64_t seq = ++epoch_seq_;
  for (const auto& slot : routing_->slots) {
    if (slot->queue.push_forced(WalRecord::make_marker(seq)))
      routed_records_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.epoch_scope == EpochScope::kGlobal) routed_since_epoch_ = 0;
  return seq;
}

void ReputationService::drain() {
  for (;;) {
    bool barrier_busy = false;
    {
      const util::MutexLock lock(epoch_mu_);
      barrier_busy =
          arrived_ != 0 || resize_arrived_ != 0 || overlap_inflight_;
    }
    std::uint64_t dropped = retired_dropped_.load(std::memory_order_relaxed);
    std::uint64_t depth = 0;
    const auto table = routing_table();
    for (const auto& slot : table->slots) {
      dropped += slot->queue.dropped();
      depth += slot->queue.size();
    }
    if (!barrier_busy && depth == 0 &&
        handled_records_.load(std::memory_order_acquire) + dropped >=
            routed_records_.load(std::memory_order_acquire))
      return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

// --- Resizing --------------------------------------------------------------

ResizeStats ReputationService::resize(std::size_t new_num_shards) {
  if (config_.epoch_scope != EpochScope::kGlobal)
    throw std::invalid_argument(
        "service resize: only global epoch scope supports online resizing "
        "(per-shard epochs have no fence to move state behind)");
  if (new_num_shards == 0)
    throw std::invalid_argument("service resize: shard count must be >= 1");
  if (config_.detector == "group" && new_num_shards > 1)
    throw std::invalid_argument(
        "service resize: detector 'group' does not support multi-shard "
        "global epochs");
  if (config_.engine_normalize)
    throw std::invalid_argument(
        "service resize: normalized engine publication is not supported "
        "(per-shard normalization mass would shift mid-window)");
  if (config_.cluster)
    throw std::invalid_argument(
        "service resize: decentralized-manager mode pins the shard count "
        "to the cluster's ring size");

  const util::MutexLock resize_lock(resize_mu_);
  if (stopped_.load(std::memory_order_relaxed))
    throw std::runtime_error("service resize: service is stopped");

  const auto old_table = routing_table();
  const std::size_t old_count = old_table->slots.size();
  ResizeStats stats;
  stats.num_shards = new_num_shards;
  if (new_num_shards == old_count) return stats;

  auto new_map =
      std::make_shared<const ShardMap>(new_num_shards, config_.num_nodes);
  const std::uint64_t new_epoch = old_table->map_epoch + 1;
  const auto new_count32 = static_cast<std::uint32_t>(new_num_shards);
  const auto start = std::chrono::steady_clock::now();

  // Successor slot table: surviving shard indices keep their slot objects
  // (state, queue, worker); new indices get fresh slots.
  SlotTable next;
  next.map = new_map;
  next.map_epoch = new_epoch;
  next.slots.reserve(new_num_shards);
  for (std::size_t s = 0; s < new_num_shards; ++s) {
    if (s < old_count)
      next.slots.push_back(old_table->slots[s]);
    else
      next.slots.push_back(std::make_shared<ShardSlot>(s, config_));
  }
  auto next_ptr = std::make_shared<const SlotTable>(std::move(next));

  {
    // Fence injection and routing swap are one atomic routing step: FIFO
    // queue order then guarantees every record a worker pops before its
    // fence was routed under the old map, and everything after it under
    // the new one — which is what makes a shrink safe (nothing lands on a
    // retiring shard after its fence).
    const util::MutexLock lock(route_mu_);
    for (const auto& slot : old_table->slots) {
      if (slot->queue.push_forced(
              WalRecord::make_map_change(new_epoch, new_count32)))
        routed_records_.fetch_add(1, std::memory_order_relaxed);
    }
    routing_ = next_ptr;
  }

  {
    // Wait for every old worker to park at the fence. Ingest of
    // non-moving keys keeps flowing into the new table's queues the whole
    // time; only records for queues whose worker has not started yet (a
    // grown shard) can block the producer, bounded by this window.
    util::MutexLock lock(epoch_mu_);
    while (resize_arrived_ < old_count &&
           !crashing_.load(std::memory_order_relaxed))
      epoch_cv_.wait(epoch_mu_);
    if (crashing_.load(std::memory_order_relaxed))
      throw std::runtime_error("service resize: service crashed");
  }

  // Handoff: every worker is parked, so shard state is single-threaded
  // here. Only the nodes whose owner changed move.
  const std::vector<rating::NodeId> moved =
      ShardMap::moved_nodes(*old_table->map, *new_map);
  for (rating::NodeId id : moved) {
    ServiceShard& from = old_table->slots[old_table->map->owner(id)]->shard;
    ServiceShard& to = next_ptr->slots[new_map->owner(id)]->shard;
    to.restore_node(from.take_node(id));
  }
  stats.keys_moved = moved.size();

  // Re-stamp every live shard and rebuild the global detector: a fresh
  // instance does a full rebuild at the next epoch, so detection reports
  // stay byte-identical to a never-resized run.
  for (const auto& slot : next_ptr->slots)
    slot->shard.set_shard_map_stamp(new_epoch, new_count32);
  make_global_detector(*new_map);
  if (global_detector_ && global_detector_->wants_dirty_tracking()) {
    for (const auto& slot : next_ptr->slots)
      slot->shard.manager().enable_dirty_tracking();
  }

  // Durable commit: every live shard checkpoints under the new map and
  // rotates its WAL to a header stamped (new_epoch, new_count); grown
  // shards get their WAL first so no live shard is left without one.
  // Only once every file carries the new stamp is the resize recoverable
  // as committed; a crash before that point recovers under the old map
  // (recovery strips the fence markers).
  bool commit_ok = true;
  if (!config_.wal_dir.empty()) {
    for (std::size_t s = 0; s < next_ptr->slots.size(); ++s) {
      ServiceShard& shard = next_ptr->slots[s]->shard;
      if (s >= old_count)
        shard.attach_wal(
            WalWriter::create(wal_path(s), 0, new_epoch, new_count32));
      if (shard.checkpoint_and_rotate(ckpt_path(s)))
        checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
      else
        commit_ok = false;
    }
    for (std::size_t s = new_num_shards; s < old_count; ++s) {
      std::filesystem::remove(wal_path(s));
      std::filesystem::remove(ckpt_path(s));
    }
  }

  {
    const util::MutexLock lock(applied_mu_);
    applied_ = next_ptr;
  }
  {
    const util::MutexLock lock(epoch_mu_);
    barrier_size_ = new_num_shards;
    resize_arrived_ = 0;
    resize_done_epoch_ = new_epoch;
  }
  epoch_cv_.notify_all();

  stats.duration_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  // Retire shrunk-away shards: their queues hold nothing past the fence
  // (the swap above), so close + join is immediate. Counter history folds
  // into the retired bases so service totals stay monotone.
  for (std::size_t s = new_num_shards; s < old_count; ++s) {
    const auto& slot = old_table->slots[s];
    retired_applied_.fetch_add(slot->shard.applied_total(),
                               std::memory_order_relaxed);
    retired_dropped_.fetch_add(slot->queue.dropped(),
                               std::memory_order_relaxed);
    slot->queue.close();
    if (slot->worker.joinable()) slot->worker.join();
  }
  // Start workers for grown shards; their queues may already hold records
  // routed during the handoff window.
  for (std::size_t s = old_count; s < new_num_shards; ++s) {
    const auto& slot = next_ptr->slots[s];
    slot->worker = std::thread([this, slot] { worker_loop(slot); });
  }

  resizes_completed_.fetch_add(1, std::memory_order_relaxed);
  keys_moved_last_resize_.store(stats.keys_moved, std::memory_order_relaxed);
  last_resize_ms_.store(stats.duration_ms, std::memory_order_relaxed);

  if (!commit_ok) {
    // The in-memory resize is complete and the service keeps running at
    // the new width, but the on-disk state now mixes map stamps.
    checkpoints_enabled_.store(false, std::memory_order_relaxed);
    throw std::runtime_error(
        "service resize: durable commit failed (service continues; "
        "checkpointing disabled)");
  }
  return stats;
}

// --- Lifecycle -------------------------------------------------------------

void ReputationService::stop() {
  const util::MutexLock resize_lock(resize_mu_);
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  const auto slots = all_slots();
  for (const auto& slot : slots) slot->queue.close();
  for (const auto& slot : slots)
    if (slot->worker.joinable()) slot->worker.join();
}

void ReputationService::crash_stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  crashing_.store(true);
  {
    // Fence + wake: parked workers and a resize() waiting for fence
    // arrivals re-check crashing_ after this lock/notify pair (the resize
    // throws, releasing resize_mu_).
    const util::MutexLock lock(epoch_mu_);
  }
  epoch_cv_.notify_all();
  {
    // Wait out any in-flight resize so the slot tables are stable below.
    const util::MutexLock lock(resize_mu_);
  }
  const auto slots = all_slots();
  for (const auto& slot : slots) slot->queue.purge_and_close();
  {
    const util::MutexLock lock(epoch_mu_);
  }
  epoch_cv_.notify_all();
  for (const auto& slot : slots)
    if (slot->worker.joinable()) slot->worker.join();
}

// --- Workers and epochs ----------------------------------------------------

void ReputationService::worker_loop(std::shared_ptr<ShardSlot> slot_ptr) {
  ShardSlot& slot = *slot_ptr;
  while (auto rec = slot.queue.pop()) {
    if (crashing_.load(std::memory_order_relaxed)) return;
    if (rec->kind == WalRecordKind::kRating) {
      if (config_.cluster) {
        // Decentralized-manager mode: the rating's authoritative home is
        // its owner key range in the manager cluster. The forward is
        // synchronous, so by the time this worker parks at the next epoch
        // barrier every rating it routed is acknowledged cluster-side.
        if (config_.cluster->forward(slot.shard.index(), rec->rating))
          cluster_forwards_.fetch_add(1, std::memory_order_relaxed);
        else
          cluster_forward_failures_.fetch_add(1, std::memory_order_relaxed);
        handled_records_.fetch_add(1, std::memory_order_release);
        continue;
      }
      slot.shard.log_record(*rec);
      {
        // Overlapped-epoch commit point: while the coordinator scans the
        // frozen matrices, ratings are buffered (already WAL-logged, so
        // log order is unchanged) and applied by the coordinator after
        // the epoch commits. Outside an overlap window the lock is
        // uncontended and the rating applies directly.
        const util::MutexLock lock(slot.apply_mu_);
        if (slot.deferred) {
          slot.pending.push_back(*rec);
          handled_records_.fetch_add(1, std::memory_order_release);
          continue;
        }
        slot.shard.apply_rating(rec->rating);
      }
      if (config_.epoch_scope == EpochScope::kPerShard &&
          slot.shard.epoch_due(rec->rating.time)) {
        slot.shard.log_record(
            WalRecord::make_marker(slot.shard.epochs_completed() + 1));
        run_shard_epoch(slot);
      }
    } else if (rec->kind == WalRecordKind::kEpochMarker) {
      slot.shard.log_record(*rec);
      if (config_.epoch_scope == EpochScope::kPerShard)
        run_shard_epoch(slot);
      else
        global_barrier(slot, rec->epoch_seq);
    } else {
      // Resize fence. Logged so a crash inside the handoff window leaves
      // evidence (recovery strips it and resumes under the old map); a
      // committed resize rotates this WAL, so the marker never survives
      // one.
      slot.shard.log_record(*rec);
      resize_fence(rec->epoch_seq);
    }
    handled_records_.fetch_add(1, std::memory_order_release);
  }
}

void ReputationService::resize_fence(std::uint64_t map_epoch) {
  util::MutexLock lock(epoch_mu_);
  ++resize_arrived_;
  epoch_cv_.notify_all();
  while (resize_done_epoch_ < map_epoch &&
         !crashing_.load(std::memory_order_relaxed))
    epoch_cv_.wait(epoch_mu_);
}

void ReputationService::run_shard_epoch(ShardSlot& slot) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t pairs = slot.shard.run_local_epoch();
  record_epoch_metrics(start, pairs);
  if (checkpoints_enabled_.load(std::memory_order_relaxed) &&
      slot.shard.wal_attached() &&
      slot.shard.epochs_completed() % config_.checkpoint_every_epochs == 0)
    checkpoint_shard(slot);
}

void ReputationService::global_barrier(ShardSlot&, std::uint64_t seq) {
  bool coordinator = false;
  {
    const util::MutexLock lock(epoch_mu_);
    ++arrived_;
    if (arrived_ == barrier_size_) {
      arrived_ = 0;
      coordinator = true;
    }
  }
  if (!coordinator) {
    // Parked worker: wait for the epoch to complete, lending this thread
    // to the coordinator's scan whenever tasks are published. The claim
    // loop runs off-lock, hence the re-lock dance.
    for (;;) {
      {
        util::MutexLock lock(epoch_mu_);
        while (epoch_done_seq_ < seq &&
               !crashing_.load(std::memory_order_relaxed) &&
               !scan_work_available())
          epoch_cv_.wait(epoch_mu_);
        if (epoch_done_seq_ >= seq ||
            crashing_.load(std::memory_order_relaxed))
          return;
      }
      scan_claim_loop();
    }
  }
  // Coordinator (last arriver): every other worker is parked, all shard
  // state is frozen. The epoch body runs off-lock so parked workers and
  // pool helpers can claim scan tasks — and, with epoch_overlap, so the
  // released workers can keep ingesting while the scan runs.
  run_global_epoch(seq, /*live=*/true);
  {
    const util::MutexLock lock(epoch_mu_);
    epoch_done_seq_ = seq;
  }
  epoch_cv_.notify_all();
}

bool ReputationService::scan_work_available() const {
  return scan_fn_ != nullptr && scan_next_ < scan_task_count_;
}

std::size_t ReputationService::scan_concurrency() const noexcept {
  return 1 + (epoch_pool_ ? epoch_pool_->size() : 0);
}

void ReputationService::scan_claim_loop() {
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t idx = 0;
    {
      const util::MutexLock lock(epoch_mu_);
      if (scan_fn_ == nullptr || scan_next_ >= scan_task_count_) return;
      idx = scan_next_++;
      fn = scan_fn_;
    }
    try {
      (*fn)(idx);
    } catch (...) {
      const util::MutexLock lock(epoch_mu_);
      if (!scan_error_) scan_error_ = std::current_exception();
    }
    bool batch_done = false;
    {
      const util::MutexLock lock(epoch_mu_);
      ++scan_done_;
      batch_done = scan_done_ >= scan_task_count_;
    }
    if (batch_done) epoch_cv_.notify_all();
  }
}

void ReputationService::run_scan_tasks(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  {
    const util::MutexLock lock(epoch_mu_);
    scan_fn_ = &fn;
    scan_task_count_ = count;
    scan_next_ = 0;
    scan_done_ = 0;
    scan_error_ = nullptr;
  }
  epoch_cv_.notify_all();  // parked workers start claiming
  if (epoch_pool_) {
    const std::size_t helpers = std::min(epoch_pool_->size(), count);
    for (std::size_t h = 0; h < helpers; ++h)
      epoch_pool_->submit([this] { scan_claim_loop(); });
  }
  scan_claim_loop();  // the coordinator claims too
  std::exception_ptr err;
  {
    util::MutexLock lock(epoch_mu_);
    while (scan_done_ < scan_task_count_) epoch_cv_.wait(epoch_mu_);
    scan_fn_ = nullptr;
    err = scan_error_;
    scan_error_ = nullptr;
  }
  // Helper jobs that never got to claim must not outlive this call (they
  // touch epoch_mu_, and `fn` dies with the caller's frame).
  if (epoch_pool_) epoch_pool_->wait_idle();
  if (err) std::rethrow_exception(err);
}

void ReputationService::run_global_epoch(std::uint64_t seq, bool live) {
  const auto start = std::chrono::steady_clock::now();
  const auto table = applied_table();
  const auto& slots = table->slots;

  if (config_.cluster) {
    // Refresh the working copies: every worker is parked at the barrier
    // with its forwards acknowledged, so the managers hold exactly the
    // pre-epoch stream — pulling each range now freezes the same state a
    // single-process epoch would see. A failed pull (all holders down)
    // leaves that range's previous copy in place rather than killing the
    // coordinator thread.
    for (const auto& slot : slots) {
      std::string blob;
      for (int attempt = 0; attempt < 3 && blob.empty(); ++attempt)
        blob = config_.cluster->pull(slot->shard.index());
      if (blob.empty()) continue;
      const auto ckpt = parse_checkpoint(blob);
      if (ckpt) slot->shard.reload_from(*ckpt);
    }
  }

  for (const auto& slot : slots) slot->shard.manager().update_reputations();

  // Detection/ingest overlap: reputations are frozen above and the scan
  // reads only matrix + engine state, so the parked workers can resume
  // draining their queues into per-shard pending buffers right now. The
  // buffers apply after the commit below, so the matrices see exactly the
  // serial record stream. Checkpoint epochs stay non-overlapped — the WAL
  // rotation at the end of this function must not race workers logging
  // into the files being rotated.
  const bool checkpoint_due =
      live && checkpoints_enabled_.load(std::memory_order_relaxed) &&
      seq % config_.checkpoint_every_epochs == 0;
  const bool overlap = live && config_.parallel_epoch &&
                       config_.epoch_overlap && !checkpoint_due &&
                       slots.size() > 1 &&
                       !crashing_.load(std::memory_order_relaxed);
  if (overlap) {
    for (const auto& slot : slots) {
      const util::MutexLock lock(slot->apply_mu_);
      slot->deferred = true;
    }
    {
      const util::MutexLock lock(epoch_mu_);
      overlap_inflight_ = true;
      epoch_done_seq_ = seq;
    }
    epoch_cv_.notify_all();
  }
  const auto scan_start = std::chrono::steady_clock::now();

  const core::DetectionReport report = global_detect(*table);
  const std::vector<rating::NodeId> flagged = report.colluders();

  using SuppressionMode = managers::CentralizedManager::SuppressionMode;
  if (config_.suppression != SuppressionMode::kNone && !flagged.empty()) {
    for (rating::NodeId id : flagged) {
      ServiceShard& owner = slots[table->map->owner(id)]->shard;
      owner.manager().restore_detected({id});
      if (config_.suppression == SuppressionMode::kPin)
        owner.engine().suppress(id);
      else
        owner.engine().reset_reputation(id);
    }
    for (const auto& slot : slots) slot->shard.manager().update_reputations();
  }

  std::string text;
  if (config_.record_reports) {
    text = format_epoch_report("global", seq, report);
    const util::MutexLock lock(log_mu_);
    report_log_ += text;
  }
  for (const auto& slot : slots) {
    std::vector<rating::NodeId> owned;
    for (rating::NodeId id : flagged)
      if (table->map->owner(id) == slot->shard.index()) owned.push_back(id);
    slot->shard.finish_global_epoch(seq, owned, text);
  }

  if (config_.cluster) {
    // Cluster-wide epoch commit: every manager replays the same verdict
    // sequence on its held ranges (idempotent on retry), keeping manager
    // state in lockstep with the reports formatted above.
    (void)config_.cluster->push(seq, flagged);
  }

  rings_found_.fetch_add(report.rings.size(), std::memory_order_relaxed);
  for (const auto& ring : report.rings) {
    std::uint64_t prev = ring_largest_.load(std::memory_order_relaxed);
    while (prev < ring.members.size() &&
           !ring_largest_.compare_exchange_weak(prev, ring.members.size(),
                                                std::memory_order_relaxed)) {
    }
  }
  ring_scan_us_.store(global_detector_ ? global_detector_->stats().scan_us : 0,
                      std::memory_order_relaxed);

  if (overlap) {
    epoch_overlap_us_.store(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - scan_start)
                .count()),
        std::memory_order_relaxed);
    // Commit the buffered streams: each shard's pending ratings apply in
    // pop order, exactly as they would have had the workers stayed
    // parked — just later in wall-clock time.
    for (const auto& slot : slots) {
      const util::MutexLock lock(slot->apply_mu_);
      for (const WalRecord& rec : slot->pending)
        slot->shard.apply_rating(rec.rating);
      slot->pending.clear();
      slot->deferred = false;
    }
    {
      const util::MutexLock lock(epoch_mu_);
      overlap_inflight_ = false;
    }
    epoch_cv_.notify_all();
  }

  if (live) {
    record_epoch_metrics(start, report.pairs.size() + report.rings.size());
    if (checkpoint_due) {
      for (const auto& slot : slots) checkpoint_shard(*slot);
    }
  }
}

void ReputationService::make_global_detector(const ShardMap&) {
  if (config_.epoch_scope != EpochScope::kGlobal) return;
  if (config_.detector == "basic" || config_.detector == "optimized") {
    // global_detect() runs these inline via the range-partitioned
    // detect::sweep_* plus the cross-shard accomplice exchange — which
    // reproduce the pre-registry reports byte-for-byte at any shard
    // count — so no plugin instance is needed.
    global_detector_.reset();
    return;
  }
  global_detector_ = detect::DetectorRegistry::global().create(
      config_.detector, config_.detector_config);
}

core::DetectionReport ReputationService::global_detect(
    const SlotTable& table) {
  const auto& slots = table.slots;
  core::DetectionReport report;

  detect::EpochSnapshot snap;
  snap.matrices.reserve(slots.size());
  for (const auto& slot : slots)
    snap.matrices.push_back(&slot->shard.manager().matrix());
  if (snap.matrices.size() > 1) snap.owners = table.map->owners();
  // Lend the coordinator's scan labor (pool helpers + parked workers) to
  // the detect layer; a null executor keeps every sweep serial.
  if (config_.parallel_epoch) snap.executor = &scan_executor_;

  // Plugin path: any registry detector other than basic/optimized runs
  // over the snapshot of all shard matrices (the adapters handle
  // multi-matrix natively, accomplice exchange included).
  if (global_detector_) {
    if (global_detector_->wants_dirty_tracking()) {
      snap.dirty.reserve(slots.size());
      for (const auto& slot : slots)
        snap.dirty.push_back(slot->shard.manager().take_dirty_cells());
    }
    global_detector_->on_epoch(snap, report);
    accomplice_rounds_.store(global_detector_->stats().accomplice_rounds,
                             std::memory_order_relaxed);
    return report;
  }

  // basic/optimized: range-partitioned sweep plus the cross-shard
  // accomplice exchange. Both reproduce the pre-registry inline sweeps'
  // reports byte-for-byte at any shard count
  // (tests/differential/parallel_epoch_test.cpp).
  report = config_.detector == "basic"
               ? detect::sweep_basic(snap, config_.detector_config)
               : detect::sweep_optimized(snap, config_.detector_config);
  accomplice_rounds_.store(
      detect::propagate_accomplices(snap, config_.detector_config, report),
      std::memory_order_relaxed);
  return report;
}

void ReputationService::checkpoint_shard(ShardSlot& slot) {
  if (slot.shard.checkpoint_and_rotate(ckpt_path(slot.shard.index())))
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  else
    checkpoints_enabled_.store(false, std::memory_order_relaxed);
}

void ReputationService::record_epoch_metrics(
    std::chrono::steady_clock::time_point start, std::size_t detections) {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  detections_total_.fetch_add(detections, std::memory_order_relaxed);
  last_epoch_detections_.store(detections, std::memory_order_relaxed);
  const util::MutexLock lock(latency_mu_);
  epoch_latency_ms_.push_back(ms);
  if (epoch_latency_ms_.size() > 8192) {
    epoch_latency_ms_.erase(epoch_latency_ms_.begin(),
                            epoch_latency_ms_.begin() + 4096);
  }
}

// --- Read side -------------------------------------------------------------

std::shared_ptr<const ReputationService::SlotTable>
ReputationService::routing_table() const {
  const util::MutexLock lock(route_mu_);
  return routing_;
}

std::shared_ptr<const ReputationService::SlotTable>
ReputationService::applied_table() const {
  const util::MutexLock lock(applied_mu_);
  return applied_;
}

std::vector<std::shared_ptr<ReputationService::ShardSlot>>
ReputationService::all_slots() const {
  const auto routing = routing_table();
  const auto applied = applied_table();
  std::vector<std::shared_ptr<ShardSlot>> slots = applied->slots;
  for (const auto& slot : routing->slots) {
    if (std::find(slots.begin(), slots.end(), slot) == slots.end())
      slots.push_back(slot);
  }
  return slots;
}

std::size_t ReputationService::num_shards() const {
  return applied_table()->slots.size();
}

std::size_t ReputationService::shard_of(rating::NodeId id) const {
  const auto table = applied_table();
  return id < config_.num_nodes ? table->map->owner(id) : 0;
}

ServiceSnapshot ReputationService::snapshot() const {
  const auto table = applied_table();
  ServiceSnapshot snap;
  snap.map = table->map;
  snap.shards.reserve(table->slots.size());
  for (const auto& slot : table->slots)
    snap.shards.push_back(slot->shard.view());
  return snap;
}

ServiceMetrics ReputationService::metrics() const {
  const auto table = applied_table();
  const auto& slots = table->slots;
  ServiceMetrics m;
  m.ratings_accepted = accepted_.load(std::memory_order_relaxed);
  m.ratings_rejected = rejected_.load(std::memory_order_relaxed);
  m.ratings_dropped = retired_dropped_.load(std::memory_order_relaxed);
  std::uint64_t applied = retired_applied_.load(std::memory_order_relaxed);
  for (const auto& slot : slots) {
    m.ratings_dropped += slot->queue.dropped();
    m.queue_depth += slot->queue.size();
    applied += slot->shard.applied_total();
    m.wal_records += slot->shard.wal_records();
    m.wal_bytes += slot->shard.wal_bytes();
    m.matrix_bytes += slot->shard.matrix_resident_bytes();
  }
  m.ratings_applied = applied;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  if (secs > 0.0)
    m.ingest_rate_per_sec =
        static_cast<double>(applied - applied_base_) / secs;

  if (config_.epoch_scope == EpochScope::kGlobal) {
    m.epochs_completed = slots.empty() ? 0 : slots[0]->shard.epochs_completed();
  } else {
    for (const auto& slot : slots)
      m.epochs_completed += slot->shard.epochs_completed();
  }
  m.detections_total = detections_total_.load(std::memory_order_relaxed);
  m.last_epoch_detections =
      last_epoch_detections_.load(std::memory_order_relaxed);
  m.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);

  // Ring gauges: global epochs record on the service, per-shard epochs on
  // each shard — found sums, largest/scan take the max across sources.
  m.rings_found = rings_found_.load(std::memory_order_relaxed);
  m.ring_largest = ring_largest_.load(std::memory_order_relaxed);
  m.ring_scan_us = ring_scan_us_.load(std::memory_order_relaxed);
  for (const auto& slot : slots) {
    m.rings_found += slot->shard.rings_found();
    m.ring_largest = std::max(m.ring_largest, slot->shard.ring_largest());
    m.ring_scan_us = std::max(m.ring_scan_us, slot->shard.ring_scan_us());
  }

  // Parallel-epoch gauges.
  m.epoch_scan_threads = epoch_scan_threads_.load(std::memory_order_relaxed);
  m.epoch_overlap_us = epoch_overlap_us_.load(std::memory_order_relaxed);
  m.accomplice_exchange_rounds =
      accomplice_rounds_.load(std::memory_order_relaxed);

  // Cluster gauges (decentralized-manager mode). Forwards that no holder
  // acknowledged are lost ratings — surfaced as drops.
  m.cluster_forwards = cluster_forwards_.load(std::memory_order_relaxed);
  m.ratings_dropped +=
      cluster_forward_failures_.load(std::memory_order_relaxed);
  if (config_.cluster && config_.cluster->failovers)
    m.cluster_failovers = config_.cluster->failovers();

  // Shard-map gauges (elastic resharding).
  m.current_shard_count = slots.size();
  m.shard_map_epoch = table->map_epoch;
  m.resizes_completed = resizes_completed_.load(std::memory_order_relaxed);
  m.keys_moved_last_resize =
      keys_moved_last_resize_.load(std::memory_order_relaxed);
  m.last_resize_ms = last_resize_ms_.load(std::memory_order_relaxed);

  const util::MutexLock lock(latency_mu_);
  if (!epoch_latency_ms_.empty()) {
    std::vector<double> sorted = epoch_latency_ms_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted) sum += v;
    m.epoch_latency_ms_mean = sum / static_cast<double>(sorted.size());
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(
            static_cast<double>(sorted.size()) * 0.99));
    m.epoch_latency_ms_p99 = sorted[idx];
  }
  return m;
}

std::string ReputationService::report_log() const {
  if (config_.epoch_scope == EpochScope::kGlobal) {
    const util::MutexLock lock(log_mu_);
    return report_log_;
  }
  const auto table = applied_table();
  std::string out;
  for (const auto& slot : table->slots) out += slot->shard.report_log();
  return out;
}

}  // namespace p2prep::service
