// One shard of the online reputation service: an IncrementalCentralizedManager
// plus its SummationEngine, detector, WAL writer, epoch counters and the
// published read view. Shards own disjoint ratee partitions (the
// consistent-hash service::ShardMap over dht::hash_node), so every
// quantity detection needs about node i — its matrix row, window totals,
// engine reputation — lives wholly inside its owner shard. The shard's
// worker thread (owned by ReputationService) is the only mutator; readers
// go through the immutable ShardView snapshot. A resize moves a node
// between shards via take_node()/restore_node() while both workers are
// parked at the resize barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "detect/detector.h"
#include "managers/centralized.h"
#include "managers/incremental.h"
#include "reputation/summation.h"
#include "service/ingest_queue.h"
#include "service/wal.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::service {

/// Which state an epoch freezes and detects over.
enum class EpochScope {
  /// Epoch markers are injected into every shard queue; workers barrier on
  /// them and the last arriver coordinates one detection sweep across all
  /// shards' frozen state — fanned out as row-range tasks over the scan
  /// pool and the parked workers (see ServiceConfig::parallel_epoch), with
  /// per-range results merged deterministically. Catches colluding pairs
  /// that span shards; epochs are totally ordered service-wide.
  kGlobal,
  /// Each shard runs epochs on its own cadence over its own partition.
  /// Detection is shard-local (a pair spanning two shards is never
  /// mutually checked), but shards never wait for each other — the
  /// throughput configuration.
  kPerShard,
};

/// Transport seam of the decentralized-manager service mode: when
/// ServiceConfig::cluster is set, shard workers forward ratings to the
/// manager cluster instead of applying them locally, and the global epoch
/// pulls each range's authoritative state back before detecting. Expressed
/// as std::functions so the service layer never depends on src/cluster/
/// (which depends on the service layer) — cluster::make_cluster_backend
/// builds the real implementation over ClusterClients.
///
/// Threading contract: forward(shard, r) is called only by shard `shard`'s
/// worker thread; pull/push/failovers only by the epoch coordinator while
/// every worker is parked at the barrier. Implementations need no locking
/// if they keep per-shard state disjoint.
struct ClusterBackend {
  /// Sends one rating (routed to `shard` == its owner key range) to the
  /// cluster; false when no holder acknowledged.
  std::function<bool(std::size_t shard, const rating::Rating& r)> forward;
  /// Returns key range `range`'s state as canonical checkpoint bytes
  /// (service::parse_checkpoint decodes them); empty on failure.
  std::function<std::string(std::size_t range)> pull;
  /// Commits a global epoch's colluder verdicts cluster-wide.
  std::function<bool(std::uint64_t epoch_seq,
                     const std::vector<rating::NodeId>& flagged)>
      push;
  /// Inserts served by a replica after a primary failure (gauge).
  std::function<std::uint64_t()> failovers;
};

struct ServiceConfig {
  std::size_t num_nodes = 0;
  /// Initial shard count. The live count can change afterwards via
  /// ReputationService::resize(); durable recovery adopts the count the
  /// on-disk state was written under, not this field.
  std::size_t num_shards = 1;
  std::size_t queue_capacity = 4096;
  OverflowPolicy overflow = OverflowPolicy::kBlock;

  EpochScope epoch_scope = EpochScope::kGlobal;
  /// Rating-count epoch trigger: total accepted ratings (kGlobal) or
  /// per-shard applied ratings (kPerShard). 0 disables.
  std::uint64_t epoch_ratings = 1024;
  /// Virtual-time epoch trigger: an epoch fires when an ingested rating's
  /// tick is >= last epoch tick + epoch_ticks. 0 disables.
  std::uint64_t epoch_ticks = 0;

  /// Detection plugin, resolved by name through detect::DetectorRegistry
  /// ("basic", "optimized", "group", "ring", or any registered plugin).
  /// An unknown name throws std::invalid_argument at construction, naming
  /// every registered detector.
  std::string detector = "optimized";
  core::DetectorConfig detector_config{};
  /// Matrix representation of each shard's IncrementalCentralizedManager.
  /// Sparse by default: shard matrices hold O(nnz) cells instead of
  /// num_nodes^2, which is what makes S shards affordable. Detection
  /// output, WAL contents and checkpoints are byte-identical across
  /// backends (tests/differential/service_backend_test.cpp), so a durable
  /// directory written under one backend recovers under the other.
  rating::MatrixBackend matrix_backend = rating::MatrixBackend::kSparse;
  managers::CentralizedManager::SuppressionMode suppression =
      managers::CentralizedManager::SuppressionMode::kReset;
  /// SummationEngine publication mode. The default (false) publishes raw
  /// sums, which are meaningful per shard; normalized values would only
  /// be comparable within a shard's partition anyway.
  bool engine_normalize = false;
  /// Keep per-epoch detection report text (report_log()).
  bool record_reports = true;

  /// Parallelize the global-epoch detection sweep (kGlobal only): the
  /// barrier coordinator fans row-range scan tasks across the scan pool
  /// and the workers parked at the barrier. Per-range results merge in
  /// range order, so reports, WAL bytes and checkpoints are identical to
  /// the serial sweep (tests/differential/parallel_epoch_test.cpp). Off =
  /// the coordinator scans alone on its own thread.
  bool parallel_epoch = true;
  /// Overlap detection with ingest (kGlobal + parallel_epoch): once the
  /// coordinator has frozen reputations, parked workers resume draining
  /// their queues into per-shard pending buffers (WAL-logged immediately,
  /// applied after the epoch commits). Checkpoint epochs never overlap, so
  /// WAL rotation is fenced from the deferred stream. Byte-identical
  /// output to non-overlapped runs. Off = workers stay parked for the
  /// whole epoch.
  bool epoch_overlap = true;
  /// Scan thread budget including the coordinator itself; 0 = auto
  /// (min(hardware_concurrency, 8)). A budget of 1 still lets parked
  /// workers claim tasks in non-overlapped epochs.
  std::size_t epoch_scan_threads = 0;

  /// Directory for WAL + checkpoint files; empty disables durability.
  std::string wal_dir;
  /// Compact (checkpoint + WAL rotate) every N epochs; 0 = never.
  std::uint64_t checkpoint_every_epochs = 0;

  /// Decentralized-manager mode: when set, shard state lives in the
  /// multi-process manager cluster behind this seam — workers forward
  /// ratings instead of applying them, the global epoch pulls range state
  /// back to detect over it and pushes the verdicts cluster-wide.
  /// Requires kGlobal scope with a rating-count trigger, no local wal_dir
  /// and a basic/optimized detector; num_shards must equal the cluster's
  /// ring size. Durability is the managers' concern, not the service's.
  std::shared_ptr<ClusterBackend> cluster;

  [[nodiscard]] bool valid() const noexcept {
    return num_nodes >= 2 && num_shards >= 1 && queue_capacity >= 1 &&
           (epoch_ratings > 0 || epoch_ticks > 0) && detector_config.valid();
  }
};

/// Immutable published state of one shard; swapped wholesale at epoch end
/// so readers never observe a half-updated epoch.
struct ShardView {
  std::uint64_t epoch = 0;
  /// Engine-published reputations (full node range; entries for nodes the
  /// shard does not own are 0 — consult their owner's view).
  std::vector<double> reputations;
  /// Bitmap of nodes this shard has ever flagged as colluders.
  std::vector<std::uint8_t> suspected;
  /// Nodes newly implicated in the last epoch, ascending.
  std::vector<rating::NodeId> flagged_last_epoch;
  /// Detection report text of the last epoch (empty if record_reports off).
  std::string last_report;
};

/// Deterministic detection-report text: header line with epoch number,
/// source label ("shard k" / "global"), pair/ring counts and flagged ids,
/// then one evidence line per pair and per ring. Byte-stable across runs
/// — the recovery tests compare it.
[[nodiscard]] std::string format_epoch_report(
    const std::string& label, std::uint64_t epoch,
    const core::DetectionReport& report);

class ServiceShard {
 public:
  ServiceShard(std::size_t index, const ServiceConfig& config);

  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  // --- Durability ---
  void attach_wal(WalWriter writer);
  [[nodiscard]] bool wal_attached() const noexcept {
    return wal_.has_value();
  }
  /// Appends to the WAL (no-op when detached) and updates WAL metrics.
  void log_record(const WalRecord& rec);

  /// Builds a checkpoint of the full shard state; nullopt when the engine
  /// cannot serialize itself (checkpointing then stays disabled).
  [[nodiscard]] std::optional<ShardCheckpoint> make_checkpoint() const;
  /// Atomically writes the checkpoint and rotates the WAL. Returns false
  /// (leaving the WAL unrotated) when either step fails.
  bool checkpoint_and_rotate(const std::string& ckpt_path);
  /// Restores state from a checkpoint (fresh shard only), republishes the
  /// engine view and the read snapshot.
  void restore(const ShardCheckpoint& ckpt);
  /// Discards the shard's entire state (engine, matrix, counters) and
  /// restores from `ckpt` — restore() for a shard that has already lived.
  /// Used by the cluster paths: a rejoining manager adopting a peer's
  /// authoritative range state, and the decentralized service mode
  /// refreshing its local copies from the cluster at each epoch. Only
  /// safe while the worker is parked (or before workers exist).
  void reload_from(const ShardCheckpoint& ckpt);

  /// Stamps the shard map (epoch, count) this shard currently runs under;
  /// recorded in every checkpoint it writes and in rotated WAL headers.
  void set_shard_map_stamp(std::uint64_t map_epoch,
                           std::uint32_t num_shards) noexcept {
    map_epoch_ = map_epoch;
    map_num_shards_ = num_shards;
  }

  // --- Shard handoff (elastic resharding) ---

  /// Everything one node's state amounts to inside a shard: its window
  /// matrix row, raw engine sum, and suppression / detected membership.
  struct NodeTransfer {
    rating::NodeId id = 0;
    std::vector<std::pair<rating::NodeId, rating::PairStats>> cells;
    std::int64_t raw_sum = 0;
    bool suppressed = false;
    bool detected = false;
  };

  /// Extracts node `id`'s state from this shard, leaving it with no trace
  /// of the node (empty row, zero sum, unsuppressed, undetected). Only
  /// safe while the worker is parked at the resize barrier.
  [[nodiscard]] NodeTransfer take_node(rating::NodeId id);
  /// Installs a transfer taken from another shard. The node must be
  /// untracked here (never owned, or previously taken).
  void restore_node(const NodeTransfer& t);

  // --- Ingest path (worker thread only) ---
  /// Applies one rating to the manager + engine. Returns false when the
  /// manager rejected it (cannot happen for ratings that passed service
  /// validation).
  bool apply_rating(const rating::Rating& r);
  /// Per-shard cadence check, evaluated after each applied rating.
  [[nodiscard]] bool epoch_due(rating::Tick now) const noexcept;
  /// Runs one shard-local epoch: engine update, detection, suppression,
  /// view publication. Returns the number of flagged pairs + rings.
  std::size_t run_local_epoch();

  // --- Hooks for service-driven (global) epochs ---
  [[nodiscard]] managers::IncrementalCentralizedManager& manager() noexcept {
    return *manager_;
  }
  [[nodiscard]] const managers::IncrementalCentralizedManager& manager()
      const noexcept {
    return *manager_;
  }
  [[nodiscard]] reputation::ReputationEngine& engine() noexcept {
    return engine_;
  }
  /// Closes an epoch driven by the service (global scope): bumps counters
  /// and publishes the view with the given epoch number / report text.
  void finish_global_epoch(std::uint64_t epoch_seq,
                           const std::vector<rating::NodeId>& flagged,
                           const std::string& report_text);

  // --- Read side ---
  [[nodiscard]] std::shared_ptr<const ShardView> view() const;
  [[nodiscard]] std::string report_log() const;

  // --- Counters (atomic: read by metrics() from any thread) ---
  [[nodiscard]] std::uint64_t applied_total() const noexcept {
    return applied_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epochs_completed() const noexcept {
    return epochs_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wal_records() const noexcept {
    return wal_records_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wal_bytes() const noexcept {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wal_generation() const noexcept {
    return wal_ ? wal_->generation() : 0;
  }
  [[nodiscard]] std::uint64_t wal_records_written() const noexcept {
    return wal_ ? wal_->records() : 0;
  }
  /// Resident bytes of the shard's rating matrix, refreshed at every view
  /// publication (reading the live matrix from other threads would race
  /// with the worker).
  [[nodiscard]] std::uint64_t matrix_resident_bytes() const noexcept {
    return matrix_bytes_.load(std::memory_order_relaxed);
  }

  // --- Ring gauges (shard-local epochs; zero for pairwise detectors) ---
  [[nodiscard]] std::uint64_t rings_found() const noexcept {
    return rings_found_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ring_largest() const noexcept {
    return ring_largest_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ring_scan_us() const noexcept {
    return ring_scan_us_.load(std::memory_order_relaxed);
  }

 private:
  void publish_view(std::uint64_t epoch,
                    std::vector<rating::NodeId> flagged,
                    std::string report_text);
  void append_report(const std::string& text);

  std::size_t index_;
  const ServiceConfig* config_;
  std::uint64_t map_epoch_ = 0;
  std::uint32_t map_num_shards_ = 1;
  reputation::SummationEngine engine_;
  std::unique_ptr<managers::IncrementalCentralizedManager> manager_;
  std::unique_ptr<detect::Detector> detector_;
  std::optional<WalWriter> wal_;

  // Worker-thread state (global-epoch access happens while workers are
  // parked at the barrier, so no locking is needed beyond the atomics).
  std::atomic<std::uint64_t> applied_total_{0};
  std::uint64_t applied_since_epoch_ = 0;
  rating::Tick last_epoch_tick_ = 0;
  rating::Tick last_applied_tick_ = 0;
  std::atomic<std::uint64_t> epochs_completed_{0};
  std::atomic<std::uint64_t> wal_records_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};
  std::atomic<std::uint64_t> matrix_bytes_{0};
  std::atomic<std::uint64_t> rings_found_{0};
  std::atomic<std::uint64_t> ring_largest_{0};
  std::atomic<std::uint64_t> ring_scan_us_{0};

  mutable util::Mutex view_mu_;
  std::shared_ptr<const ShardView> view_ P2PREP_GUARDED_BY(view_mu_);

  mutable util::Mutex log_mu_;
  std::string report_log_ P2PREP_GUARDED_BY(log_mu_);

  friend class ReputationService;
};

}  // namespace p2prep::service
