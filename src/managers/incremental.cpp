#include "managers/incremental.h"

namespace p2prep::managers {

IncrementalCentralizedManager::IncrementalCentralizedManager(
    std::size_t num_nodes, reputation::ReputationEngine& engine,
    core::DetectorConfig detector_config, rating::MatrixBackend backend)
    : num_nodes_(num_nodes),
      engine_(engine),
      detector_config_(detector_config),
      matrix_(num_nodes, backend) {
  engine_.resize(num_nodes);
  matrix_.set_frequency_threshold(detector_config_.frequency_min);
}

bool IncrementalCentralizedManager::ingest(const rating::Rating& r) {
  if (r.rater == r.ratee || r.rater >= num_nodes_ || r.ratee >= num_nodes_)
    return false;
  matrix_.add_rating(r.ratee, r.rater, r.score);
  engine_.ingest(r);
  return true;
}

void IncrementalCentralizedManager::refresh_reputations() {
  for (rating::NodeId i = 0; i < num_nodes_; ++i) {
    matrix_.set_global_reputation(i, engine_.detection_reputation(i),
                                  detector_config_.high_rep_threshold);
  }
}

void IncrementalCentralizedManager::update_reputations() {
  engine_.update_epoch();
  refresh_reputations();
}

void IncrementalCentralizedManager::reset_window() {
  matrix_.clear_window();
  refresh_reputations();
}

core::DetectionReport IncrementalCentralizedManager::run_detection(
    const core::CollusionDetector& detector,
    CentralizedManager::SuppressionMode mode) {
  core::DetectionReport report = detector.detect(matrix_);
  apply_suppression(report, mode);
  return report;
}

void IncrementalCentralizedManager::apply_suppression(
    const core::DetectionReport& report,
    CentralizedManager::SuppressionMode mode) {
  if (mode == CentralizedManager::SuppressionMode::kNone) return;
  const auto colluders = report.colluders();
  if (colluders.empty()) return;
  for (rating::NodeId id : colluders) {
    detected_.insert(id);
    if (mode == CentralizedManager::SuppressionMode::kPin)
      engine_.suppress(id);
    else
      engine_.reset_reputation(id);
  }
  engine_.update_epoch();
  refresh_reputations();
}

}  // namespace p2prep::managers
