// Centralized reputation manager (paper Sec. IV-B, the Amazon-style
// deployment): one manager ingests every rating, computes global
// reputations through a pluggable ReputationEngine, and periodically runs a
// collusion detector over its rating matrix. Detected colluders have their
// reputations suppressed to zero (the paper's countermeasure).
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/detector.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "reputation/engine.h"

namespace p2prep::managers {

class CentralizedManager {
 public:
  /// `engine` computes the global reputations the detector filters on
  /// (T_R); not owned, must outlive the manager.
  CentralizedManager(std::size_t num_nodes,
                     reputation::ReputationEngine& engine,
                     core::DetectorConfig detector_config);

  /// Records one rating in both the ledger and the engine.
  bool ingest(const rating::Rating& r);

  /// Ends a reputation-update period: recomputes global reputations.
  void update_reputations();

  /// Starts a new detection window T (clears windowed pair counters).
  void reset_window();

  /// Snapshot of the manager's matrix as the detectors consume it.
  [[nodiscard]] rating::RatingMatrix snapshot() const;

  /// What happens to nodes a detection pass implicates.
  enum class SuppressionMode {
    kNone,   ///< Report only; reputations untouched.
    kReset,  ///< Paper semantics: zero the accumulated reputation now;
             ///< future ratings accumulate again (persistent colluders are
             ///< re-detected and re-zeroed every period).
    kPin,    ///< Permanently pin the published reputation to 0.
  };

  /// Runs one detection pass with the given detector and applies `mode`
  /// to every implicated node (subject to the confirmation policy).
  core::DetectionReport run_detection(
      const core::CollusionDetector& detector,
      SuppressionMode mode = SuppressionMode::kReset);

  /// Confirmation policy: a pair must be flagged in `passes` consecutive
  /// detection passes before its nodes are suppressed. 1 (default) is the
  /// paper's immediate suppression; higher values trade detection latency
  /// for robustness against one-window statistical flukes. The returned
  /// report always contains the raw flags; only suppression is gated.
  void set_confirmation_passes(std::size_t passes) {
    confirmation_passes_ = passes == 0 ? 1 : passes;
  }
  [[nodiscard]] std::size_t confirmation_passes() const noexcept {
    return confirmation_passes_;
  }

  [[nodiscard]] const rating::RatingStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] reputation::ReputationEngine& engine() noexcept {
    return engine_;
  }
  [[nodiscard]] const core::DetectorConfig& detector_config() const noexcept {
    return detector_config_;
  }
  /// Nodes flagged by any detection pass so far.
  [[nodiscard]] const std::unordered_set<rating::NodeId>& detected()
      const noexcept {
    return detected_;
  }

 private:
  rating::RatingStore store_;
  reputation::ReputationEngine& engine_;
  core::DetectorConfig detector_config_;
  std::unordered_set<rating::NodeId> detected_;
  std::size_t confirmation_passes_ = 1;
  /// pair key -> consecutive passes flagged (confirmation policy state).
  std::unordered_map<std::uint64_t, std::size_t> pair_streaks_;
};

}  // namespace p2prep::managers
