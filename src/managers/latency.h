// Message-latency measurement of a decentralized detection round, on the
// discrete-event kernel (util::EventQueue).
//
// The paper measures detection in abstract work units; a deployed
// DHT-of-managers also pays wall-clock time for its cross-manager check
// messages. This harness replays one detection round's message pattern
// (captured via DecentralizedReputationSystem's cross-check observer)
// through a per-hop latency model and reports when the round completes —
// with managers either pipelining their outstanding checks or issuing them
// sequentially.
#pragma once

#include <cstdint>

#include "managers/decentralized.h"

namespace p2prep::managers {

struct LatencyModel {
  double per_hop_ms = 20.0;  ///< Mean one-way per-hop latency.
  double jitter_ms = 10.0;   ///< Uniform jitter added per hop, [0, jitter).
  std::uint64_t seed = 0x6c6174656e6379ULL;
  /// Master switch. The model is injectable into paths that also run over
  /// real transports (the manager cluster's serve loop), where simulated
  /// hops are usually unwanted — disabled() turns every hop into zero cost
  /// and measure_detection_round into a no-op.
  bool enabled = true;

  [[nodiscard]] static LatencyModel disabled() noexcept {
    LatencyModel m;
    m.per_hop_ms = 0.0;
    m.jitter_ms = 0.0;
    m.enabled = false;
    return m;
  }
};

struct RoundLatency {
  /// Virtual time at which the slowest manager finished all its checks.
  double completion_ms = 0.0;
  /// Mean round-trip time of a cross-manager check.
  double avg_check_rtt_ms = 0.0;
  std::size_t cross_checks = 0;
  /// Hop messages simulated (requests hop-by-hop + direct responses).
  std::size_t messages = 0;
  /// Events processed by the kernel (diagnostics).
  std::size_t events = 0;
};

/// Runs one detection round on `system` (without suppressing, so the
/// measurement does not change system state) and simulates its message
/// pattern. `pipelined` = managers keep all checks in flight concurrently;
/// otherwise each manager issues its checks one after another.
[[nodiscard]] RoundLatency measure_detection_round(
    DecentralizedReputationSystem& system, DetectionMethod method,
    const LatencyModel& model, bool pipelined = true);

}  // namespace p2prep::managers
