// Decentralized reputation system (paper Sec. IV-B/IV-C, the
// EigenTrust-style deployment of Fig. 2): reputation management is split
// across a set of manager nodes arranged in a Chord DHT. The manager of
// node n_i is the DHT owner of n_i's record key; raters publish ratings
// with Insert(ID_i, r_i) routed through the ring, and managers run the
// detection protocol shard-locally, contacting the partner's manager with a
// check request (another DHT-routed message) when a suspected pair spans
// two managers.
//
// Reputations here are the window summation values R_i = N+_i - N-_i the
// paper's Sec. IV-A model prescribes, so DetectorConfig::high_rep_threshold
// is interpreted in raw rating units (a node is high-reputed when its
// window sum exceeds it), and Formula (2) applies exactly.
//
// Message accounting: every DHT routing hop is one message; a check
// response returns directly to the requesting manager (its address is known
// from the request) and costs one message.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/evidence.h"
#include "dht/chord.h"
#include "rating/store.h"

namespace p2prep::managers {

enum class DetectionMethod {
  kBasic,      ///< Sec. IV-B: complement via explicit row scan.
  kOptimized,  ///< Sec. IV-C: complement via Formula (2).
};

class DecentralizedReputationSystem {
 public:
  struct Config {
    std::size_t num_nodes = 0;
    dht::ChordConfig chord{};
    core::DetectorConfig detector{};
  };

  /// `manager_ids`: the high-reputed "power nodes" forming the DHT; if
  /// empty, every node is a manager (a flat DHT).
  explicit DecentralizedReputationSystem(
      Config config, std::vector<rating::NodeId> manager_ids = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return config_.num_nodes;
  }
  [[nodiscard]] std::size_t num_managers() const noexcept {
    return ring_.size();
  }

  /// Which manager owns node `id`'s reputation records.
  [[nodiscard]] rating::NodeId manager_of(rating::NodeId id) const {
    return ring_.manager_of(id);
  }

  /// Publishes a rating: DHT-routes Insert(ID_ratee, r) from the rater (or
  /// its closest manager if the rater is not on the ring) to the ratee's
  /// manager. Returns false for invalid ratings.
  bool ingest(const rating::Rating& r);

  /// A client queries a node's reputation with Lookup(ID): routed through
  /// the ring, hop-counted. Suppressed nodes report 0.
  struct ReputationAnswer {
    std::int64_t reputation = 0;
    std::size_t hops = 0;
    rating::NodeId manager = rating::kInvalidNode;
  };
  [[nodiscard]] ReputationAnswer query_reputation(rating::NodeId requester,
                                                  rating::NodeId target);

  /// Oracle (no routing): window summation reputation of `id`.
  [[nodiscard]] std::int64_t reputation(rating::NodeId id) const;

  /// Starts a new detection window on every shard.
  void reset_window();

  // --- Manager churn (join/leave with shard handoff) ---

  struct HandoffStats {
    std::size_t reassigned_nodes = 0;    ///< Nodes whose manager changed.
    std::uint64_t transferred_ratings = 0;  ///< Lifetime ratings moved.
    std::uint64_t transfer_messages = 0; ///< Bulk row transfers (1/node).
  };

  /// A node joins the management overlay: it takes ownership of the key
  /// range between its predecessor and itself, and the affected rows move
  /// from their previous managers. Returns nullopt if `id` is invalid or
  /// already a manager.
  std::optional<HandoffStats> add_manager(rating::NodeId id);

  /// A manager leaves; its rows move to the new owners. Refused (nullopt)
  /// for the last manager or a non-member.
  std::optional<HandoffStats> remove_manager(rating::NodeId id);

  struct DetectionOutcome {
    core::DetectionReport report;
    std::uint64_t check_requests = 0;   ///< Manager-to-manager queries sent.
    std::uint64_t check_responses = 0;  ///< Positive/negative replies.
    std::uint64_t request_hops = 0;     ///< DHT routing messages for requests.
    std::uint64_t local_checks = 0;     ///< Pair checks resolved shard-locally.
  };

  /// Runs the full decentralized detection round: every manager scans its
  /// responsible nodes and the cross-manager protocol resolves remote
  /// partners. When `suppress` is true, flagged nodes' reputations are
  /// pinned to 0 for subsequent queries.
  DetectionOutcome run_detection(DetectionMethod method, bool suppress = true);

  /// Observer invoked for every cross-manager check request the detection
  /// protocol sends (requesting manager, target manager, routing hops).
  /// Used by the latency harness (managers/latency.h); null disables.
  using CrossCheckObserver = std::function<void(
      rating::NodeId from_manager, rating::NodeId to_manager,
      std::size_t hops)>;
  void set_cross_check_observer(CrossCheckObserver observer) {
    cross_check_observer_ = std::move(observer);
  }

  [[nodiscard]] const dht::ChordRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const rating::RatingStore& shard(rating::NodeId manager) const {
    return shards_.at(manager);
  }
  [[nodiscard]] const std::unordered_set<rating::NodeId>& detected()
      const noexcept {
    return detected_;
  }
  /// Cumulative Insert/Lookup routing messages (excludes detection).
  [[nodiscard]] std::uint64_t transport_messages() const noexcept {
    return transport_messages_;
  }

 private:
  /// Recomputes node->manager assignments after a ring change and moves
  /// every reassigned row to its new shard.
  HandoffStats reassign_shards();

  /// One-directional deep check evaluated by `i`'s manager on its own
  /// shard. Fills fraction outputs; charges `cost`.
  [[nodiscard]] bool local_directional_check(const rating::RatingStore& shard,
                                             rating::NodeId i,
                                             rating::NodeId j,
                                             DetectionMethod method,
                                             double& positive_fraction,
                                             double& complement_fraction,
                                             util::CostCounter& cost) const;

  /// Sorted list of raters of `i` in `shard`'s current window
  /// (deterministic iteration order for reproducible reports).
  [[nodiscard]] static std::vector<rating::NodeId> sorted_raters(
      const rating::RatingStore& shard, rating::NodeId i);

  Config config_;
  CrossCheckObserver cross_check_observer_;
  dht::ChordRing ring_;
  /// manager id -> that manager's shard ledger (rows of responsible nodes).
  std::map<rating::NodeId, rating::RatingStore> shards_;
  /// node id -> manager id (fixed after construction; no churn modeled).
  std::vector<rating::NodeId> manager_index_;
  std::unordered_set<rating::NodeId> detected_;
  std::uint64_t transport_messages_ = 0;
};

}  // namespace p2prep::managers
