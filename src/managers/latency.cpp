#include "managers/latency.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/event_queue.h"
#include "util/rng.h"

namespace p2prep::managers {

RoundLatency measure_detection_round(DecentralizedReputationSystem& system,
                                     DetectionMethod method,
                                     const LatencyModel& model,
                                     bool pipelined) {
  if (!model.enabled) return RoundLatency{};
  struct Check {
    rating::NodeId from;
    rating::NodeId to;
    std::size_t hops;
  };
  std::vector<Check> checks;
  system.set_cross_check_observer(
      [&checks](rating::NodeId from, rating::NodeId to, std::size_t hops) {
        checks.push_back({from, to, hops});
      });
  (void)system.run_detection(method, /*suppress=*/false);
  system.set_cross_check_observer(nullptr);

  RoundLatency result;
  result.cross_checks = checks.size();

  util::Rng rng(model.seed);
  util::EventQueue queue;
  std::map<rating::NodeId, double> manager_ready;  // next send slot
  double completion = 0.0;
  double rtt_sum = 0.0;

  for (const Check& check : checks) {
    // Request routes hop by hop; the response returns directly (the
    // requester's address travels with the request).
    double rtt = 0.0;
    for (std::size_t h = 0; h < check.hops; ++h) {
      rtt += model.per_hop_ms + rng.uniform(0.0, model.jitter_ms);
      ++result.messages;
    }
    rtt += model.per_hop_ms + rng.uniform(0.0, model.jitter_ms);  // response
    ++result.messages;
    rtt_sum += rtt;

    double start = 0.0;
    if (!pipelined) {
      double& ready = manager_ready[check.from];
      start = ready;
      ready += rtt;  // next check waits for this one's response
    }
    queue.schedule(start + rtt, [&completion, &queue] {
      completion = std::max(completion, queue.now());
    });
  }

  result.events = queue.run();
  result.completion_ms = completion;
  result.avg_check_rtt_ms =
      checks.empty() ? 0.0 : rtt_sum / static_cast<double>(checks.size());
  return result;
}

}  // namespace p2prep::managers
