#include "managers/decentralized.h"

#include <algorithm>
#include <cassert>

#include "core/formula.h"
#include "core/predicates.h"

namespace p2prep::managers {

DecentralizedReputationSystem::DecentralizedReputationSystem(
    Config config, std::vector<rating::NodeId> manager_ids)
    : config_(config), ring_(config.chord) {
  if (manager_ids.empty()) {
    manager_ids.resize(config_.num_nodes);
    for (rating::NodeId i = 0; i < config_.num_nodes; ++i) manager_ids[i] = i;
  }
  for (rating::NodeId id : manager_ids) ring_.add_node(id);
  ring_.rebuild();
  assert(!ring_.empty());

  manager_index_.resize(config_.num_nodes, rating::kInvalidNode);
  for (rating::NodeId id = 0; id < config_.num_nodes; ++id) {
    const rating::NodeId mgr = ring_.manager_of(id);
    manager_index_[id] = mgr;
    shards_.try_emplace(mgr, config_.num_nodes);
  }
}

bool DecentralizedReputationSystem::ingest(const rating::Rating& r) {
  if (r.rater >= config_.num_nodes || r.ratee >= config_.num_nodes ||
      r.rater == r.ratee) {
    return false;
  }
  // Insert(ID_ratee, r): route from the rater's position on the ring (or
  // from its own manager when the rater is not a ring member).
  const rating::NodeId start =
      ring_.contains(r.rater) ? r.rater : manager_index_[r.rater];
  const dht::LookupResult route =
      ring_.lookup(start, dht::hash_reputation_record(r.ratee));
  transport_messages_ += route.hops;
  assert(route.owner == manager_index_[r.ratee]);
  return shards_.at(route.owner).ingest(r);
}

DecentralizedReputationSystem::ReputationAnswer
DecentralizedReputationSystem::query_reputation(rating::NodeId requester,
                                                rating::NodeId target) {
  ReputationAnswer answer;
  if (target >= config_.num_nodes) return answer;
  const rating::NodeId start =
      ring_.contains(requester) ? requester : manager_index_[requester];
  const dht::LookupResult route =
      ring_.lookup(start, dht::hash_reputation_record(target));
  transport_messages_ += route.hops;
  answer.hops = route.hops;
  answer.manager = route.owner;
  answer.reputation = detected_.contains(target)
                          ? 0
                          : shards_.at(route.owner).reputation(target);
  return answer;
}

DecentralizedReputationSystem::HandoffStats
DecentralizedReputationSystem::reassign_shards() {
  HandoffStats stats;
  for (rating::NodeId id = 0; id < config_.num_nodes; ++id) {
    const rating::NodeId new_mgr = ring_.manager_of(id);
    const rating::NodeId old_mgr = manager_index_[id];
    if (new_mgr == old_mgr) continue;
    shards_.try_emplace(new_mgr, config_.num_nodes);
    rating::RatingStore& from = shards_.at(old_mgr);
    rating::RatingStore& to = shards_.at(new_mgr);
    stats.transferred_ratings += from.lifetime_totals(id).total;
    from.transfer_ratee(to, id);
    manager_index_[id] = new_mgr;
    ++stats.reassigned_nodes;
    ++stats.transfer_messages;
  }
  return stats;
}

std::optional<DecentralizedReputationSystem::HandoffStats>
DecentralizedReputationSystem::add_manager(rating::NodeId id) {
  if (id >= config_.num_nodes || ring_.contains(id)) return std::nullopt;
  if (!ring_.add_node(id)) return std::nullopt;
  ring_.rebuild();
  return reassign_shards();
}

std::optional<DecentralizedReputationSystem::HandoffStats>
DecentralizedReputationSystem::remove_manager(rating::NodeId id) {
  if (ring_.size() <= 1 || !ring_.contains(id)) return std::nullopt;
  ring_.remove_node(id);
  ring_.rebuild();
  HandoffStats stats = reassign_shards();
  shards_.erase(id);  // all of its rows were just moved away
  return stats;
}

std::int64_t DecentralizedReputationSystem::reputation(
    rating::NodeId id) const {
  if (detected_.contains(id)) return 0;
  return shards_.at(manager_index_.at(id))
      .window_totals(id)
      .reputation_delta();
}

void DecentralizedReputationSystem::reset_window() {
  for (auto& [mgr, shard] : shards_) shard.reset_window();
}

std::vector<rating::NodeId> DecentralizedReputationSystem::sorted_raters(
    const rating::RatingStore& shard, rating::NodeId i) {
  std::vector<rating::NodeId> raters;
  shard.for_each_window_rater(
      i, [&raters](rating::NodeId j, const rating::PairStats&) {
        raters.push_back(j);
      });
  std::sort(raters.begin(), raters.end());
  return raters;
}

bool DecentralizedReputationSystem::local_directional_check(
    const rating::RatingStore& shard, rating::NodeId i, rating::NodeId j,
    DetectionMethod method, double& positive_fraction,
    double& complement_fraction, util::CostCounter& cost) const {
  const rating::PairStats pair = shard.window_pair(i, j);
  cost.add_scan();

  cost.add_check();
  if (!core::frequency_ok(pair, config_.detector)) return false;
  positive_fraction = pair.positive_fraction();

  if (method == DetectionMethod::kBasic) {
    cost.add_check();
    if (!core::positive_fraction_ok(pair, config_.detector)) return false;
    // Complement via explicit scan of every other rater (the O(n) step).
    // Joint-complement mode skips other frequent raters (suspected
    // partners) so they cannot mask each other (DetectorConfig docs).
    rating::PairStats complement;
    shard.for_each_window_rater(
        i, [&](rating::NodeId k, const rating::PairStats& stats) {
          if (k == j) return;
          cost.add_scan();
          if (config_.detector.joint_complement &&
              stats.total >= config_.detector.frequency_min) {
            return;
          }
          complement += stats;
        });
    complement_fraction = complement.positive_fraction();
    cost.add_check();
    return core::complement_ok(complement, config_.detector);
  }

  // Optimized path.
  const rating::PairStats& totals = shard.window_totals(i);
  if (!config_.detector.joint_complement) {
    // Paper-literal Formula (2) on quantities the manager already has.
    complement_fraction =
        (totals - pair).positive_fraction();  // evidence only, O(1)
    cost.add_check();
    return core::optimized_directional(pair, totals.total,
                                       totals.reputation_delta(),
                                       config_.detector);
  }

  // Joint-complement generalization: C3 from the pair cell, C2 from the
  // frequent-rater aggregate. A deployed manager maintains the aggregate
  // incrementally (O(1) per rating, see RatingMatrix::add_rating); this
  // simulation recomputes it from the shard but charges the single
  // aggregate read the deployment would pay.
  cost.add_check();
  if (!core::positive_fraction_ok(pair, config_.detector)) return false;
  rating::PairStats frequent;
  shard.for_each_window_rater(
      i, [&](rating::NodeId k, const rating::PairStats& stats) {
        (void)k;
        if (stats.total >= config_.detector.frequency_min) frequent += stats;
      });
  cost.add_scan();  // the aggregate read
  const rating::PairStats complement = totals - frequent;
  complement_fraction = complement.positive_fraction();
  cost.add_check();
  return core::complement_ok(complement, config_.detector);
}

DecentralizedReputationSystem::DetectionOutcome
DecentralizedReputationSystem::run_detection(DetectionMethod method,
                                             bool suppress) {
  DetectionOutcome outcome;
  const double t_r = config_.detector.high_rep_threshold;

  // Managers run their scans in id order for deterministic reports; in a
  // deployment they run concurrently and independently.
  for (const auto& [mgr, shard] : shards_) {
    for (rating::NodeId i = 0; i < config_.num_nodes; ++i) {
      if (manager_index_[i] != mgr) continue;
      outcome.report.cost.add_check();
      const auto r_i = static_cast<double>(
          shard.window_totals(i).reputation_delta());
      if (r_i <= t_r) continue;  // C1 for the local node

      for (rating::NodeId j : sorted_raters(shard, i)) {
        double a_i = 0.0;
        double b_i = 0.0;
        if (!local_directional_check(shard, i, j, method, a_i, b_i,
                                     outcome.report.cost)) {
          continue;
        }

        // n_i is suspected to collude with n_j; resolve n_j's side.
        const rating::NodeId mgr_j = manager_index_[j];
        double a_j = 0.0;
        double b_j = 0.0;
        bool j_side = false;
        double r_j = 0.0;
        if (mgr_j == mgr) {
          ++outcome.local_checks;
          r_j = static_cast<double>(
              shard.window_totals(j).reputation_delta());
          outcome.report.cost.add_check();
          j_side = r_j > t_r &&
                   local_directional_check(shard, j, i, method, a_j, b_j,
                                           outcome.report.cost);
        } else {
          // Insert(j, msg): DHT-route the check request to n_j's manager.
          const dht::LookupResult route =
              ring_.lookup(mgr, dht::hash_reputation_record(j));
          assert(route.owner == mgr_j);
          ++outcome.check_requests;
          outcome.request_hops += route.hops;
          if (cross_check_observer_)
            cross_check_observer_(mgr, mgr_j, route.hops);
          const rating::RatingStore& remote = shards_.at(mgr_j);
          r_j = static_cast<double>(
              remote.window_totals(j).reputation_delta());
          outcome.report.cost.add_check();
          j_side = r_j > t_r &&
                   local_directional_check(remote, j, i, method, a_j, b_j,
                                           outcome.report.cost);
          ++outcome.check_responses;  // direct reply to the requester
        }
        if (!j_side) continue;

        core::PairEvidence ev;
        ev.first = i;
        ev.second = j;
        ev.ratings_to_first = shard.window_pair(i, j).total;
        ev.ratings_to_second =
            shards_.at(mgr_j).window_pair(j, i).total;
        ev.positive_fraction_first = a_i;
        ev.positive_fraction_second = a_j;
        ev.complement_fraction_first = b_i;
        ev.complement_fraction_second = b_j;
        ev.global_rep_first = r_i;
        ev.global_rep_second = r_j;
        outcome.report.pairs.push_back(ev);
      }
    }
  }

  // Accomplice propagation across shards (see core/accomplice.h): once a
  // node is flagged, any mutual frequent mostly-positive partner of it is
  // flagged too. The partner-side pair stats live at the partner's
  // manager, so each probe that crosses shards is another routed request.
  if (config_.detector.flag_accomplices) {
    std::unordered_set<std::uint64_t> known;
    std::vector<rating::NodeId> worklist;
    std::unordered_set<rating::NodeId> queued;
    for (const core::PairEvidence& e : outcome.report.pairs) {
      known.insert(core::pair_key(e.first, e.second));
      if (queued.insert(e.first).second) worklist.push_back(e.first);
      if (queued.insert(e.second).second) worklist.push_back(e.second);
    }
    while (!worklist.empty()) {
      const rating::NodeId d = worklist.back();
      worklist.pop_back();
      const rating::NodeId mgr_d = manager_index_[d];
      const rating::RatingStore& shard_d = shards_.at(mgr_d);
      for (rating::NodeId k : sorted_raters(shard_d, d)) {
        if (known.contains(core::pair_key(d, k))) continue;
        const rating::PairStats from_k = shard_d.window_pair(d, k);
        outcome.report.cost.add_scan();
        outcome.report.cost.add_check();
        if (!core::frequency_ok(from_k, config_.detector) ||
            !core::positive_fraction_ok(from_k, config_.detector)) {
          continue;
        }
        const rating::NodeId mgr_k = manager_index_[k];
        if (mgr_k != mgr_d) {
          const dht::LookupResult route =
              ring_.lookup(mgr_d, dht::hash_reputation_record(k));
          assert(route.owner == mgr_k);
          ++outcome.check_requests;
          outcome.request_hops += route.hops;
          ++outcome.check_responses;
          if (cross_check_observer_)
            cross_check_observer_(mgr_d, mgr_k, route.hops);
        }
        const rating::PairStats from_d =
            shards_.at(mgr_k).window_pair(k, d);
        outcome.report.cost.add_scan();
        outcome.report.cost.add_check();
        if (!core::frequency_ok(from_d, config_.detector) ||
            !core::positive_fraction_ok(from_d, config_.detector)) {
          continue;
        }
        core::PairEvidence ev;
        ev.first = d;
        ev.second = k;
        ev.ratings_to_first = from_k.total;
        ev.ratings_to_second = from_d.total;
        ev.positive_fraction_first = from_k.positive_fraction();
        ev.positive_fraction_second = from_d.positive_fraction();
        ev.complement_fraction_first =
            (shard_d.window_totals(d) - from_k).positive_fraction();
        ev.complement_fraction_second =
            (shards_.at(mgr_k).window_totals(k) - from_d).positive_fraction();
        ev.global_rep_first = static_cast<double>(
            shard_d.window_totals(d).reputation_delta());
        ev.global_rep_second = static_cast<double>(
            shards_.at(mgr_k).window_totals(k).reputation_delta());
        outcome.report.pairs.push_back(ev);
        known.insert(core::pair_key(d, k));
        if (queued.insert(k).second) worklist.push_back(k);
      }
    }
  }

  outcome.report.cost.add_message(outcome.check_requests +
                                  outcome.check_responses +
                                  outcome.request_hops);
  outcome.report.canonicalize();

  if (suppress) {
    for (rating::NodeId id : outcome.report.colluders()) detected_.insert(id);
  }
  return outcome;
}

}  // namespace p2prep::managers
