#include "managers/centralized.h"

namespace p2prep::managers {

CentralizedManager::CentralizedManager(std::size_t num_nodes,
                                       reputation::ReputationEngine& engine,
                                       core::DetectorConfig detector_config)
    : store_(num_nodes),
      engine_(engine),
      detector_config_(detector_config) {
  engine_.resize(num_nodes);
}

bool CentralizedManager::ingest(const rating::Rating& r) {
  if (!store_.ingest(r)) return false;
  engine_.ingest(r);
  return true;
}

void CentralizedManager::update_reputations() { engine_.update_epoch(); }

void CentralizedManager::reset_window() { store_.reset_window(); }

rating::RatingMatrix CentralizedManager::snapshot() const {
  std::vector<double> detection_reps(store_.num_nodes());
  for (rating::NodeId i = 0; i < detection_reps.size(); ++i)
    detection_reps[i] = engine_.detection_reputation(i);
  return rating::RatingMatrix::build(store_, detection_reps,
                                     detector_config_.high_rep_threshold,
                                     detector_config_.frequency_min);
}

core::DetectionReport CentralizedManager::run_detection(
    const core::CollusionDetector& detector, SuppressionMode mode) {
  const rating::RatingMatrix matrix = snapshot();
  core::DetectionReport report = detector.detect(matrix);

  // Confirmation policy: advance streaks for flagged pairs, reset the
  // rest, and collect the nodes of pairs that have reached the bar.
  std::unordered_set<std::uint64_t> flagged_now;
  std::vector<rating::NodeId> confirmed;
  for (const core::PairEvidence& e : report.pairs) {
    const std::uint64_t key = core::pair_key(e.first, e.second);
    flagged_now.insert(key);
    const std::size_t streak = ++pair_streaks_[key];
    if (streak >= confirmation_passes_) {
      confirmed.push_back(e.first);
      confirmed.push_back(e.second);
    }
  }
  for (auto it = pair_streaks_.begin(); it != pair_streaks_.end();) {
    if (!flagged_now.contains(it->first)) it = pair_streaks_.erase(it);
    else ++it;
  }

  if (mode != SuppressionMode::kNone && !confirmed.empty()) {
    for (rating::NodeId id : confirmed) {
      detected_.insert(id);
      if (mode == SuppressionMode::kPin) engine_.suppress(id);
      else engine_.reset_reputation(id);
    }
    engine_.update_epoch();
  }
  return report;
}

}  // namespace p2prep::managers
