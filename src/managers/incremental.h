// IncrementalCentralizedManager: the deployment-shaped variant of
// CentralizedManager. Instead of snapshotting the RatingStore into a fresh
// dense matrix before every detection pass (O(n^2) per pass), it maintains
// the RatingMatrix directly as ratings arrive — O(1) per rating including
// the frequent-rater aggregates — and refreshes only the global-reputation
// column after each engine epoch (O(n)). Detection results are identical
// to the snapshot manager's (tested); only the bookkeeping cost differs,
// which is precisely the state model the paper's Optimized method assumes
// the manager to have ("quantities the manager already holds").
#pragma once

#include <unordered_set>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "managers/centralized.h"
#include "rating/matrix.h"
#include "reputation/engine.h"

namespace p2prep::managers {

class IncrementalCentralizedManager {
 public:
  /// `backend` selects the matrix representation: the dense oracle
  /// (paper-cost reference) or the sparse hash-map rows. Detection output
  /// is bit-identical across backends (tests/differential/); per-shard
  /// service managers default to sparse for the O(nnz) footprint.
  IncrementalCentralizedManager(
      std::size_t num_nodes, reputation::ReputationEngine& engine,
      core::DetectorConfig detector_config,
      rating::MatrixBackend backend = rating::MatrixBackend::kDense);

  /// Records one rating in both the matrix and the engine. O(1).
  bool ingest(const rating::Rating& r);

  /// Ends a reputation-update period: engine epoch + O(n) refresh of the
  /// matrix's reputation column.
  void update_reputations();

  /// Starts a new detection window: clears the matrix's pair counters
  /// (reputations are refreshed from the engine).
  void reset_window();

  /// Re-reads detection reputations from the engine into the matrix's
  /// reputation column without running an engine epoch. Used after the
  /// engine's state was mutated externally (e.g. checkpoint restore).
  void refresh_reputations();

  // --- Checkpoint restore hooks (service layer) ---

  /// Reinstalls one window cell exactly as checkpointed. The manager must
  /// not have seen ratings for that (ratee, rater) cell this window.
  void restore_window_cell(rating::NodeId ratee, rating::NodeId rater,
                           const rating::PairStats& stats) {
    matrix_.restore_cell(ratee, rater, stats);
  }
  /// Reinstalls the detected-colluders set.
  void restore_detected(const std::vector<rating::NodeId>& nodes) {
    detected_.insert(nodes.begin(), nodes.end());
  }

  // --- Shard handoff hooks (elastic resharding) ---

  /// Extracts the window row of `ratee` from the matrix, clearing it
  /// here; the receiving shard reinstalls each cell via
  /// restore_window_cell(). Ascending rater order.
  [[nodiscard]] std::vector<std::pair<rating::NodeId, rating::PairStats>>
  take_window_row(rating::NodeId ratee) {
    return matrix_.take_row(ratee);
  }
  /// Removes `id` from the detected set; true when it was present (the
  /// receiving shard then restore_detected()s it).
  bool take_detected(rating::NodeId id) { return detected_.erase(id) > 0; }

  core::DetectionReport run_detection(
      const core::CollusionDetector& detector,
      CentralizedManager::SuppressionMode mode =
          CentralizedManager::SuppressionMode::kReset);

  /// The suppression half of run_detection, for hosts that run detection
  /// themselves (the detect::Detector plugin path): records every
  /// implicated node — pair and ring members alike — and suppresses or
  /// resets its reputation, then re-runs an engine epoch so the published
  /// view reflects the suppression.
  void apply_suppression(const core::DetectionReport& report,
                         CentralizedManager::SuppressionMode mode);

  // --- Dirty-cell tracking passthroughs (incremental detectors) ---

  /// Turns on matrix dirty-cell recording (detect::Detector hosts call
  /// this once when the detector wants_dirty_tracking()).
  void enable_dirty_tracking() { matrix_.set_dirty_tracking(true); }
  /// Drains the matrix's dirty delta for the epoch snapshot.
  [[nodiscard]] rating::DirtyCells take_dirty_cells() {
    return matrix_.take_dirty_cells();
  }

  [[nodiscard]] const rating::RatingMatrix& matrix() const noexcept {
    return matrix_;
  }
  [[nodiscard]] const std::unordered_set<rating::NodeId>& detected()
      const noexcept {
    return detected_;
  }

 private:
  std::size_t num_nodes_;
  reputation::ReputationEngine& engine_;
  core::DetectorConfig detector_config_;
  rating::RatingMatrix matrix_;
  std::unordered_set<rating::NodeId> detected_;
};

}  // namespace p2prep::managers
