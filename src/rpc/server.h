// TCP front-end of the reputation service: a poll()-based event-loop
// server that speaks the rpc/protocol.h wire format and dispatches into
// ReputationService (DESIGN.md "Network RPC front-end").
//
// Threading model: N acceptor-workers, each running its own poll() loop
// over (a) the shared listening socket — whichever worker wakes first
// accepts, and owns the connection for its lifetime — and (b) its own
// connections' sockets. Connections never migrate between workers, so all
// per-connection state (read/write buffers, deadlines) is worker-local and
// lock-free; the only cross-thread state is the atomic counters and the
// lifecycle flags.
//
// Overload control (doorman-style shedding, after nginx-overload-handler):
// the server never blocks its event loop on a saturated service. Three
// admission gates, all surfaced as rpc_* counters in ServiceMetrics:
//  * accept:   beyond max_connections, the connection gets one kGoAway
//              (kRetryLater + backoff hint) frame and is closed.
//  * inflight: while the service's total queue depth is at or above
//              max_inflight, submits are answered kRetryLater without
//              touching the queues.
//  * ingest:   a full owner-shard queue (ReputationService::try_ingest ==
//              kBusy) answers kRetryLater with the backoff hint instead of
//              blocking. Batches stop at the first shed; the response
//              reports how much of the batch was consumed so the client
//              resubmits only the remainder.
// Queries and metrics reads are never shed — they only touch immutable
// published snapshots.
//
// Robustness: per-connection idle timeout (no traffic at all) and request
// timeout (a partial frame that never completes — slowloris guard); frames
// failing length or CRC checks drop the connection, while well-framed but
// unknown/mis-versioned requests get a status response and the connection
// lives on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rpc/protocol.h"
#include "service/metrics.h"
#include "service/service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::rpc {

struct RpcServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; RpcServer::port() reports the actual one.
  std::uint16_t port = 0;
  std::size_t num_workers = 2;
  /// Accept gate: connections beyond this are refused with kGoAway.
  std::size_t max_connections = 256;
  /// Inflight gate: submits shed while the service's total queue depth is
  /// at or above this budget (admitted-but-unapplied ratings).
  std::size_t max_inflight = 1 << 16;
  /// Close connections with no traffic for this long.
  std::uint32_t idle_timeout_ms = 30000;
  /// Close connections whose partial frame stalls for this long.
  std::uint32_t request_timeout_ms = 10000;
  /// Backoff hint sent with every kRetryLater shed.
  std::uint32_t shed_backoff_ms = 50;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on colluder ids in one QueryColluders response.
  std::size_t max_colluders_per_response = 4096;

  [[nodiscard]] bool valid() const noexcept {
    return num_workers >= 1 && max_connections >= 1 && max_inflight >= 1 &&
           idle_timeout_ms > 0 && request_timeout_ms > 0 &&
           max_frame_bytes >= 64;
  }
};

/// Point-in-time counter snapshot (also exported into ServiceMetrics'
/// rpc_* fields via fill_metrics()).
struct RpcServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< Refused at max_connections.
  std::uint64_t active_connections = 0;    ///< Gauge.
  std::uint64_t requests = 0;              ///< Complete frames decoded.
  std::uint64_t responses = 0;
  std::uint64_t shed = 0;                  ///< kRetryLater answers.
  std::uint64_t protocol_errors = 0;       ///< Corrupt frames/payloads.
  std::uint64_t idle_closed = 0;
  std::uint64_t request_timeouts = 0;      ///< Stalled-partial-frame closes.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class RpcServer {
 public:
  /// Binds, listens and starts the workers; throws std::runtime_error when
  /// the socket cannot be set up or the config is invalid. `service` must
  /// outlive the server.
  RpcServer(service::ReputationService& service, RpcServerConfig config);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// The port actually bound (== config.port unless that was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, answer in-flight requests, flush
  /// write buffers, then close. Connections still open after `grace_ms`
  /// are torn down. Idempotent; the destructor calls it implicitly.
  void shutdown(std::uint32_t grace_ms = 1000);

  [[nodiscard]] RpcServerStats stats() const;
  /// Copies the counters into the ServiceMetrics rpc_* fields, so serve
  /// and serve-replay report through one dump (and GetMetrics returns the
  /// server's own traffic).
  void fill_metrics(service::ServiceMetrics& m) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    int fd = -1;
    std::string rbuf;
    std::string wbuf;
    Clock::time_point last_activity;
    /// Set while rbuf holds an incomplete frame (request-timeout clock).
    std::optional<Clock::time_point> partial_since;
    bool failed = false;  ///< Corrupt stream; close without draining.
  };

  struct Worker {
    std::thread thread;
    int wake_rd = -1;  ///< Self-pipe: shutdown() wakes the poll loop.
    int wake_wr = -1;
    std::vector<Connection> conns;  ///< Owned by this worker's thread only.
  };

  void worker_loop(std::size_t index);
  void accept_ready(Worker& w);
  /// Reads all available bytes; returns false when the connection died.
  bool read_ready(Connection& c);
  /// Decodes and handles every complete frame in c.rbuf; returns false on
  /// a corrupt stream.
  bool process_frames(Connection& c);
  void handle_payload(Connection& c, std::string_view payload);
  /// Flushes as much of c.wbuf as the socket accepts; false when dead.
  bool flush_writes(Connection& c);
  void close_connection(Connection& c);

  Status submit_one(const rating::Rating& r);
  void handle_submit_batch(Reader& r, ResponseHeader& resp,
                           std::string& body);
  void handle_query_reputation(Reader& r, ResponseHeader& resp,
                               std::string& body);
  void handle_query_colluders(ResponseHeader& resp, std::string& body);
  void handle_get_metrics(std::string& body);
  /// Admin resize. Runs on the event-loop thread, so the server answers
  /// nothing else during the handoff window — acceptable for an
  /// operator-rate operation.
  void handle_resize(Reader& r, ResponseHeader& resp, std::string& body);
  [[nodiscard]] std::string goaway_frame(Status status) const;

  service::ReputationService* service_;
  RpcServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Lifecycle. draining_: stop accepting, finish in-flight work and close
  // idle connections cleanly. stop_now_: tear everything down.
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_now_{false};
  util::Mutex shutdown_mu_;
  bool shutdown_done_ P2PREP_GUARDED_BY(shutdown_mu_) = false;

  // Counters (RpcServerStats).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> request_timeouts_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace p2prep::rpc
