#include "rpc/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace p2prep::rpc {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] int remaining_ms(Clock::time_point deadline) {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms, 60 * 1000));
}

}  // namespace

RpcClient::RpcClient(RpcClientConfig config) : config_(std::move(config)) {}

RpcClient::~RpcClient() { close(); }

void RpcClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool RpcClient::connect(std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host '" + config_.host + "'";
    close();
    return false;
  }

  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    if (error != nullptr) *error = std::strerror(errno);
    close();
    return false;
  }
  pollfd pfd{fd_, POLLOUT, 0};
  const int ready =
      ::poll(&pfd, 1, static_cast<int>(config_.connect_timeout_ms));
  int so_error = 0;
  socklen_t len = sizeof so_error;
  ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
  if (ready <= 0 || so_error != 0) {
    if (error != nullptr)
      *error = ready <= 0 ? "connect timeout" : std::strerror(so_error);
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool RpcClient::send_all(const std::string& data, std::string* error) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, remaining_ms(deadline)) <= 0) {
        if (error != nullptr) *error = "send timeout";
        return false;
      }
      continue;
    }
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<std::string> RpcClient::recv_frame(Clock::time_point deadline,
                                                 std::string* error) {
  char buf[16384];
  for (;;) {
    std::string_view payload;
    std::size_t consumed = 0;
    std::string frame_err;
    const FrameResult res =
        try_decode_frame(rbuf_, config_.max_frame_bytes, &payload, &consumed,
                         &frame_err);
    if (res == FrameResult::kFrame) {
      std::string out(payload);
      rbuf_.erase(0, consumed);
      return out;
    }
    if (res == FrameResult::kError) {
      if (error != nullptr) *error = "corrupt response: " + frame_err;
      return std::nullopt;
    }

    const int wait = remaining_ms(deadline);
    if (wait <= 0) {
      if (error != nullptr) *error = "request timeout";
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready <= 0) {
      if (error != nullptr)
        *error = ready == 0 ? "request timeout" : std::strerror(errno);
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (error != nullptr) *error = "connection closed by server";
      return std::nullopt;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (error != nullptr) *error = std::strerror(errno);
    return std::nullopt;
  }
}

CallResult RpcClient::call(MsgType type, const std::string& body,
                           std::string* body_out) {
  CallResult result;
  if (fd_ < 0) {
    result.error = "not connected";
    ++stats_.transport_errors;
    return result;
  }
  ++stats_.requests;
  const std::uint64_t id = next_request_id_++;
  std::string payload;
  encode_request_header(payload, type, id);
  payload += body;

  std::string err;
  if (!send_all(encode_frame(payload), &err)) {
    result.error = err;
    ++stats_.transport_errors;
    close();
    return result;
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  for (;;) {
    const auto frame = recv_frame(deadline, &err);
    if (!frame) {
      result.error = err;
      ++stats_.transport_errors;
      close();
      return result;
    }
    Reader r(*frame);
    ResponseHeader h;
    if (!decode_response_header(r, h)) {
      result.error = "malformed response envelope";
      ++stats_.transport_errors;
      close();
      return result;
    }
    // Unsolicited kGoAway: the server is refusing service (connection
    // limit or shutdown) — surface its status; it will close on us.
    const bool goaway =
        h.type == static_cast<std::uint8_t>(MsgType::kGoAway) &&
        h.request_id == 0;
    if (!goaway && h.request_id != id) continue;  // stale frame; skip

    result.ok = true;
    result.status = h.status;
    result.backoff_hint_ms = h.backoff_hint_ms;
    if (result.status == Status::kRetryLater) ++stats_.sheds_seen;
    if (goaway) close();  // server hangs up after a GoAway
    if (body_out != nullptr) {
      body_out->clear();
      body_out->reserve(r.remaining());
      while (r.remaining() > 0) {
        std::uint8_t b = 0;
        (void)r.get_u8(b);
        body_out->push_back(static_cast<char>(b));
      }
    }
    return result;
  }
}

// --- Single-shot calls -----------------------------------------------------

CallResult RpcClient::ping() { return call(MsgType::kPing, {}, nullptr); }

CallResult RpcClient::call_raw(MsgType type, const std::string& body,
                               std::string* body_out) {
  return call(type, body, body_out);
}

CallResult RpcClient::submit_rating(const rating::Rating& r) {
  std::string body;
  SubmitRatingRequest{r}.encode(body);
  return call(MsgType::kSubmitRating, body, nullptr);
}

CallResult RpcClient::query_reputation(rating::NodeId node,
                                       QueryReputationResponse* out) {
  std::string body;
  QueryReputationRequest{node}.encode(body);
  std::string resp_body;
  CallResult result = call(MsgType::kQueryReputation, body, &resp_body);
  if (result.ok && result.status == Status::kOk && out != nullptr) {
    Reader r(resp_body);
    const auto decoded = QueryReputationResponse::decode(r);
    if (!decoded) {
      result.ok = false;
      result.error = "malformed query-reputation body";
      ++stats_.transport_errors;
      close();
      return result;
    }
    *out = *decoded;
  }
  return result;
}

CallResult RpcClient::query_colluders(QueryColludersResponse* out) {
  std::string resp_body;
  CallResult result = call(MsgType::kQueryColluders, {}, &resp_body);
  if (result.ok && result.status == Status::kOk && out != nullptr) {
    Reader r(resp_body);
    const auto decoded = QueryColludersResponse::decode(r);
    if (!decoded) {
      result.ok = false;
      result.error = "malformed query-colluders body";
      ++stats_.transport_errors;
      close();
      return result;
    }
    *out = *decoded;
  }
  return result;
}

CallResult RpcClient::get_metrics(service::ServiceMetrics* out) {
  std::string resp_body;
  CallResult result = call(MsgType::kGetMetrics, {}, &resp_body);
  if (result.ok && result.status == Status::kOk && out != nullptr) {
    Reader r(resp_body);
    const auto decoded = GetMetricsResponse::decode(r);
    if (!decoded) {
      result.ok = false;
      result.error = "malformed get-metrics body";
      ++stats_.transport_errors;
      close();
      return result;
    }
    *out = decoded->metrics;
  }
  return result;
}

CallResult RpcClient::resize(std::uint32_t new_num_shards,
                             ResizeResponse* out) {
  std::string body;
  ResizeRequest{new_num_shards}.encode(body);
  std::string resp_body;
  CallResult result = call(MsgType::kResize, body, &resp_body);
  if (result.ok && out != nullptr && !resp_body.empty()) {
    // The server encodes the current shard count even on failure statuses,
    // so the operator sees where the service actually landed.
    Reader r(resp_body);
    const auto decoded = ResizeResponse::decode(r);
    if (!decoded) {
      result.ok = false;
      result.error = "malformed resize body";
      ++stats_.transport_errors;
      close();
      return result;
    }
    *out = *decoded;
  }
  return result;
}

// --- Retrying submit paths -------------------------------------------------

void RpcClient::backoff(std::uint32_t attempt, std::uint32_t hint_ms) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 16);
  std::uint64_t wait = static_cast<std::uint64_t>(config_.backoff_initial_ms)
                       << shift;
  wait = std::min<std::uint64_t>(wait, config_.backoff_max_ms);
  wait = std::max<std::uint64_t>(wait, hint_ms);  // server hint is a floor
  if (wait > 0) std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

CallResult RpcClient::submit_rating_with_retry(const rating::Rating& r) {
  CallResult last;
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (fd_ < 0) {
      ++stats_.reconnects;
      if (!connect(&last.error)) {
        backoff(attempt, 0);
        continue;
      }
    }
    last = submit_rating(r);
    if (last.ok && (last.status == Status::kOk ||
                    last.status == Status::kInvalidArgument))
      return last;
    // Shed (honor the hint) or transport loss (reconnect next round).
    backoff(attempt, last.ok ? last.backoff_hint_ms : 0);
  }
  return last;
}

RpcClient::BatchOutcome RpcClient::submit_batch(
    std::span<const rating::Rating> ratings, std::size_t batch_size) {
  BatchOutcome outcome;
  if (batch_size == 0) batch_size = 1;
  std::size_t pos = 0;
  std::uint32_t attempt = 0;

  while (pos < ratings.size()) {
    if (attempt >= config_.max_attempts) {
      outcome.error = outcome.error.empty() ? "attempts exhausted"
                                            : outcome.error;
      return outcome;
    }
    if (fd_ < 0) {
      ++stats_.reconnects;
      std::string err;
      if (!connect(&err)) {
        outcome.error = err;
        ++attempt;
        ++stats_.retries;
        backoff(attempt, 0);
        continue;
      }
    }

    const std::size_t n = std::min(batch_size, ratings.size() - pos);
    SubmitBatchRequest req;
    req.ratings.assign(ratings.begin() + static_cast<std::ptrdiff_t>(pos),
                       ratings.begin() + static_cast<std::ptrdiff_t>(pos + n));
    std::string body;
    req.encode(body);
    std::string resp_body;
    const CallResult result = call(MsgType::kSubmitBatch, body, &resp_body);

    if (!result.ok) {
      outcome.error = result.error;
      ++attempt;
      ++stats_.retries;
      backoff(attempt, 0);
      continue;
    }
    Reader r(resp_body);
    const auto resp = SubmitBatchResponse::decode(r);
    if (!resp) {
      outcome.error = "malformed submit-batch body";
      ++stats_.transport_errors;
      close();
      ++attempt;
      ++stats_.retries;
      continue;
    }
    const std::size_t consumed = resp->accepted + resp->rejected;
    pos += consumed;
    outcome.accepted += resp->accepted;
    outcome.rejected += resp->rejected;
    if (consumed > 0) attempt = 0;  // progress resets the retry budget

    if (result.status == Status::kOk) continue;
    if (result.status == Status::kRetryLater) {
      ++attempt;
      ++stats_.retries;
      backoff(attempt, result.backoff_hint_ms);
      continue;
    }
    outcome.error = std::string(to_string(result.status));
    return outcome;  // kShuttingDown or an unexpected status: give up
  }
  outcome.complete = true;
  return outcome;
}

}  // namespace p2prep::rpc
