#include "rpc/protocol.h"

#include <bit>
#include <cstring>

#include "service/wal.h"  // crc32 — the WAL framing checksum

namespace p2prep::rpc {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRetryLater: return "retry-later";
    case Status::kInvalidArgument: return "invalid-argument";
    case Status::kUnsupportedVersion: return "unsupported-version";
    case Status::kUnsupportedType: return "unsupported-type";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kInternal: return "internal";
  }
  return "?";
}

std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kSubmitRating: return "submit-rating";
    case MsgType::kSubmitBatch: return "submit-batch";
    case MsgType::kQueryReputation: return "query-reputation";
    case MsgType::kQueryColluders: return "query-colluders";
    case MsgType::kGetMetrics: return "get-metrics";
    case MsgType::kResize: return "resize";
    case MsgType::kMgrInsert: return "mgr-insert";
    case MsgType::kMgrReplicate: return "mgr-replicate";
    case MsgType::kMgrStatePull: return "mgr-state-pull";
    case MsgType::kMgrColluderSet: return "mgr-colluder-set";
    case MsgType::kMgrRingInfo: return "mgr-ring-info";
    case MsgType::kMgrRejoin: return "mgr-rejoin";
    case MsgType::kMgrResyncHint: return "mgr-resync-hint";
    case MsgType::kGoAway: return "go-away";
  }
  return "?";
}

// --- Byte-level helpers ----------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

bool Reader::get_u8(std::uint8_t& v) {
  if (pos_ + 1 > data_.size()) return false;
  v = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

bool Reader::get_u16(std::uint16_t& v) {
  if (pos_ + 2 > data_.size()) return false;
  v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i));
  pos_ += 2;
  return true;
}

bool Reader::get_u32(std::uint32_t& v) {
  if (pos_ + 4 > data_.size()) return false;
  v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 4;
  return true;
}

bool Reader::get_u64(std::uint64_t& v) {
  if (pos_ + 8 > data_.size()) return false;
  v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 8;
  return true;
}

bool Reader::get_f64(double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

bool Reader::get_bytes(std::string& out, std::size_t n) {
  if (pos_ + n > data_.size()) return false;
  out.assign(data_.substr(pos_, n));
  pos_ += n;
  return true;
}

// --- Framing ---------------------------------------------------------------

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, service::crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

FrameResult try_decode_frame(std::string_view buffer,
                             std::uint32_t max_frame_bytes,
                             std::string_view* payload, std::size_t* consumed,
                             std::string* error) {
  if (buffer.size() < kFrameHeaderBytes) return FrameResult::kNeedMore;
  Reader r(buffer);
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  (void)r.get_u32(len);
  (void)r.get_u32(crc);
  if (len > max_frame_bytes) {
    if (error != nullptr)
      *error = "frame length " + std::to_string(len) + " exceeds limit " +
               std::to_string(max_frame_bytes);
    return FrameResult::kError;
  }
  if (buffer.size() < kFrameHeaderBytes + len) return FrameResult::kNeedMore;
  const std::string_view body = buffer.substr(kFrameHeaderBytes, len);
  if (service::crc32(body.data(), body.size()) != crc) {
    if (error != nullptr) *error = "frame CRC mismatch";
    return FrameResult::kError;
  }
  *payload = body;
  *consumed = kFrameHeaderBytes + len;
  return FrameResult::kFrame;
}

// --- Envelope --------------------------------------------------------------

void encode_request_header(std::string& out, MsgType type,
                           std::uint64_t request_id) {
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, request_id);
}

void encode_response_header(std::string& out, const ResponseHeader& h) {
  put_u8(out, h.version);
  put_u8(out, static_cast<std::uint8_t>(h.type | kResponseBit));
  put_u64(out, h.request_id);
  put_u8(out, static_cast<std::uint8_t>(h.status));
  put_u32(out, h.backoff_hint_ms);
}

bool decode_request_header(Reader& r, RequestHeader& h) {
  return r.get_u8(h.version) && r.get_u8(h.type) && r.get_u64(h.request_id);
}

bool decode_response_header(Reader& r, ResponseHeader& h) {
  std::uint8_t status = 0;
  if (!r.get_u8(h.version) || !r.get_u8(h.type) || !r.get_u64(h.request_id) ||
      !r.get_u8(status) || !r.get_u32(h.backoff_hint_ms))
    return false;
  if ((h.type & kResponseBit) == 0) return false;
  h.type = static_cast<std::uint8_t>(h.type & ~kResponseBit);
  if (status > static_cast<std::uint8_t>(Status::kInternal)) return false;
  h.status = static_cast<Status>(status);
  return true;
}

// --- Message bodies --------------------------------------------------------

void put_rating(std::string& out, const rating::Rating& r) {
  put_u32(out, r.rater);
  put_u32(out, r.ratee);
  // Same +1 bias the WAL uses: scores -1/0/+1 travel as 0/1/2.
  put_u8(out, static_cast<std::uint8_t>(rating::score_value(r.score) + 1));
  put_u64(out, r.time);
}

bool get_rating(Reader& r, rating::Rating& out) {
  std::uint8_t score = 0;
  if (!r.get_u32(out.rater) || !r.get_u32(out.ratee) || !r.get_u8(score) ||
      !r.get_u64(out.time))
    return false;
  if (score > 2) return false;
  out.score = static_cast<rating::Score>(static_cast<int>(score) - 1);
  return true;
}

void SubmitRatingRequest::encode(std::string& out) const {
  put_rating(out, rating);
}

std::optional<SubmitRatingRequest> SubmitRatingRequest::decode(Reader& r) {
  SubmitRatingRequest req;
  if (!get_rating(r, req.rating)) return std::nullopt;
  return req;
}

void SubmitBatchRequest::encode(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(ratings.size()));
  for (const auto& r : ratings) put_rating(out, r);
}

std::optional<SubmitBatchRequest> SubmitBatchRequest::decode(Reader& r) {
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return std::nullopt;
  if (count > kMaxBatchRatings ||
      static_cast<std::size_t>(count) * kRatingBytes > r.remaining())
    return std::nullopt;
  SubmitBatchRequest req;
  req.ratings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    rating::Rating rt;
    if (!get_rating(r, rt)) return std::nullopt;
    req.ratings.push_back(rt);
  }
  return req;
}

void SubmitBatchResponse::encode(std::string& out) const {
  put_u32(out, accepted);
  put_u32(out, rejected);
}

std::optional<SubmitBatchResponse> SubmitBatchResponse::decode(Reader& r) {
  SubmitBatchResponse resp;
  if (!r.get_u32(resp.accepted) || !r.get_u32(resp.rejected))
    return std::nullopt;
  return resp;
}

void QueryReputationRequest::encode(std::string& out) const {
  put_u32(out, node);
}

std::optional<QueryReputationRequest> QueryReputationRequest::decode(
    Reader& r) {
  QueryReputationRequest req;
  if (!r.get_u32(req.node)) return std::nullopt;
  return req;
}

void QueryReputationResponse::encode(std::string& out) const {
  put_f64(out, reputation);
  put_u8(out, suspected);
  put_u64(out, epoch);
  put_u32(out, shard);
}

std::optional<QueryReputationResponse> QueryReputationResponse::decode(
    Reader& r) {
  QueryReputationResponse resp;
  if (!r.get_f64(resp.reputation) || !r.get_u8(resp.suspected) ||
      !r.get_u64(resp.epoch) || !r.get_u32(resp.shard))
    return std::nullopt;
  return resp;
}

void QueryColludersResponse::encode(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(colluders.size()));
  for (rating::NodeId id : colluders) put_u32(out, id);
  put_u32(out, total_suspected);
  put_u8(out, truncated);
}

std::optional<QueryColludersResponse> QueryColludersResponse::decode(
    Reader& r) {
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return std::nullopt;
  if (count > kMaxColluderIds ||
      static_cast<std::size_t>(count) * 4 > r.remaining())
    return std::nullopt;
  QueryColludersResponse resp;
  resp.colluders.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    rating::NodeId id = 0;
    if (!r.get_u32(id)) return std::nullopt;
    resp.colluders.push_back(id);
  }
  if (!r.get_u32(resp.total_suspected) || !r.get_u8(resp.truncated))
    return std::nullopt;
  return resp;
}

void GetMetricsResponse::encode(std::string& out) const {
  const service::ServiceMetrics& m = metrics;
  put_u64(out, m.ratings_accepted);
  put_u64(out, m.ratings_rejected);
  put_u64(out, m.ratings_dropped);
  put_u64(out, m.ratings_applied);
  put_u64(out, m.queue_depth);
  put_f64(out, m.ingest_rate_per_sec);
  put_u64(out, m.epochs_completed);
  put_u64(out, m.detections_total);
  put_u64(out, m.last_epoch_detections);
  put_f64(out, m.epoch_latency_ms_mean);
  put_f64(out, m.epoch_latency_ms_p99);
  put_u64(out, m.wal_records);
  put_u64(out, m.wal_bytes);
  put_u64(out, m.checkpoints_written);
  put_u64(out, m.matrix_bytes);
  put_u64(out, m.rpc_accepted);
  put_u64(out, m.rpc_rejected);
  put_u64(out, m.rpc_requests);
  put_u64(out, m.rpc_shed);
  put_u64(out, m.rpc_bytes_in);
  put_u64(out, m.rpc_bytes_out);
  put_u64(out, m.rpc_active_connections);
  // Appended fields (ring gauges) — decoders enumerate in the same order,
  // so new fields always go at the end.
  put_u64(out, m.rings_found);
  put_u64(out, m.ring_largest);
  put_u64(out, m.ring_scan_us);
  // Appended fields (shard-map gauges, elastic resharding).
  put_u64(out, m.current_shard_count);
  put_u64(out, m.shard_map_epoch);
  put_u64(out, m.resizes_completed);
  put_u64(out, m.keys_moved_last_resize);
  put_f64(out, m.last_resize_ms);
  // Appended fields (parallel-epoch gauges).
  put_u64(out, m.epoch_scan_threads);
  put_u64(out, m.epoch_overlap_us);
  put_u64(out, m.accomplice_exchange_rounds);
  // Appended fields (manager-cluster gauges).
  put_u64(out, m.cluster_owned_keys);
  put_u64(out, m.cluster_replica_lag);
  put_u64(out, m.cluster_forwards);
  put_u64(out, m.cluster_failovers);
}

std::optional<GetMetricsResponse> GetMetricsResponse::decode(Reader& r) {
  GetMetricsResponse resp;
  service::ServiceMetrics& m = resp.metrics;
  if (!r.get_u64(m.ratings_accepted) || !r.get_u64(m.ratings_rejected) ||
      !r.get_u64(m.ratings_dropped) || !r.get_u64(m.ratings_applied) ||
      !r.get_u64(m.queue_depth) || !r.get_f64(m.ingest_rate_per_sec) ||
      !r.get_u64(m.epochs_completed) || !r.get_u64(m.detections_total) ||
      !r.get_u64(m.last_epoch_detections) ||
      !r.get_f64(m.epoch_latency_ms_mean) ||
      !r.get_f64(m.epoch_latency_ms_p99) || !r.get_u64(m.wal_records) ||
      !r.get_u64(m.wal_bytes) || !r.get_u64(m.checkpoints_written) ||
      !r.get_u64(m.matrix_bytes) || !r.get_u64(m.rpc_accepted) ||
      !r.get_u64(m.rpc_rejected) || !r.get_u64(m.rpc_requests) ||
      !r.get_u64(m.rpc_shed) || !r.get_u64(m.rpc_bytes_in) ||
      !r.get_u64(m.rpc_bytes_out) || !r.get_u64(m.rpc_active_connections) ||
      !r.get_u64(m.rings_found) || !r.get_u64(m.ring_largest) ||
      !r.get_u64(m.ring_scan_us) || !r.get_u64(m.current_shard_count) ||
      !r.get_u64(m.shard_map_epoch) || !r.get_u64(m.resizes_completed) ||
      !r.get_u64(m.keys_moved_last_resize) || !r.get_f64(m.last_resize_ms) ||
      !r.get_u64(m.epoch_scan_threads) || !r.get_u64(m.epoch_overlap_us) ||
      !r.get_u64(m.accomplice_exchange_rounds) ||
      !r.get_u64(m.cluster_owned_keys) || !r.get_u64(m.cluster_replica_lag) ||
      !r.get_u64(m.cluster_forwards) || !r.get_u64(m.cluster_failovers))
    return std::nullopt;
  return resp;
}

void ResizeRequest::encode(std::string& out) const {
  put_u32(out, new_num_shards);
}

std::optional<ResizeRequest> ResizeRequest::decode(Reader& r) {
  ResizeRequest req;
  if (!r.get_u32(req.new_num_shards)) return std::nullopt;
  return req;
}

void ResizeResponse::encode(std::string& out) const {
  put_u32(out, num_shards);
  put_u64(out, keys_moved);
  put_u64(out, duration_ms);
}

std::optional<ResizeResponse> ResizeResponse::decode(Reader& r) {
  ResizeResponse resp;
  if (!r.get_u32(resp.num_shards) || !r.get_u64(resp.keys_moved) ||
      !r.get_u64(resp.duration_ms))
    return std::nullopt;
  return resp;
}

}  // namespace p2prep::rpc
