#include "rpc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace p2prep::rpc {

namespace {

/// Poll tick: deadlines (idle / partial-frame) are checked at this
/// granularity, so effective timeouts are accurate to within one tick.
constexpr int kPollTickMs = 20;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[nodiscard]] std::uint32_t ms_since(
    std::chrono::steady_clock::time_point since,
    std::chrono::steady_clock::time_point now) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
          .count();
  return ms < 0 ? 0 : static_cast<std::uint32_t>(ms);
}

}  // namespace

RpcServer::RpcServer(service::ReputationService& service,
                     RpcServerConfig config)
    : service_(&service), config_(std::move(config)) {
  if (!config_.valid())
    throw std::runtime_error("rpc server: invalid RpcServerConfig");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("rpc server: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("rpc server: bad bind address '" +
                             config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("rpc server: bind/listen on " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port) + " failed: " + err);
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("rpc server: pipe2() failed");
    }
    w->wake_rd = pipefd[0];
    w->wake_wr = pipefd[1];
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
}

RpcServer::~RpcServer() { shutdown(); }

void RpcServer::shutdown(std::uint32_t grace_ms) {
  {
    const util::MutexLock lock(shutdown_mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  draining_.store(true, std::memory_order_release);
  for (const auto& w : workers_) {
    const char b = 1;
    (void)!::write(w->wake_wr, &b, 1);
  }

  // Grace window: workers drain and exit on their own once their
  // connections are flushed and closed; after the deadline, force.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(grace_ms);
  for (;;) {
    if (active_.load(std::memory_order_acquire) == 0) break;
    if (Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop_now_.store(true, std::memory_order_release);
  for (const auto& w : workers_) {
    const char b = 1;
    (void)!::write(w->wake_wr, &b, 1);
  }
  for (const auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  for (const auto& w : workers_) {
    ::close(w->wake_rd);
    ::close(w->wake_wr);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// --- Event loop ------------------------------------------------------------

void RpcServer::worker_loop(std::size_t index) {
  Worker& w = *workers_[index];
  std::vector<pollfd> pfds;

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (stop_now_.load(std::memory_order_acquire)) break;
    if (draining && w.conns.empty()) break;

    pfds.clear();
    pfds.push_back({w.wake_rd, POLLIN, 0});
    if (!draining) pfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_base = pfds.size();
    for (const Connection& c : w.conns) {
      short events = POLLIN;
      if (!c.wbuf.empty()) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
    }

    const int ready = ::poll(pfds.data(), pfds.size(), kPollTickMs);
    if (ready < 0 && errno != EINTR) break;

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(w.wake_rd, buf, sizeof buf) > 0) {
      }
    }
    if (!draining && (pfds[1].revents & (POLLIN | POLLERR)) != 0)
      accept_ready(w);

    const auto now = Clock::now();
    for (std::size_t i = 0; i < w.conns.size();) {
      Connection& c = w.conns[i];
      // pfds entry for conns[i] — stable because close removes via erase
      // only after this loop's body finishes with the connection.
      const short revents =
          conn_base + i < pfds.size() ? pfds[conn_base + i].revents : 0;
      bool alive = true;

      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (revents & POLLIN) != 0) alive = read_ready(c);
      if (alive && !c.wbuf.empty()) alive = flush_writes(c);
      if (c.failed) alive = false;

      if (alive) {
        // Deadlines: idle (no traffic at all) and stalled partial frame.
        if (ms_since(c.last_activity, now) >= config_.idle_timeout_ms) {
          idle_closed_.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        } else if (c.partial_since &&
                   ms_since(*c.partial_since, now) >=
                       config_.request_timeout_ms) {
          request_timeouts_.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
      }
      // Draining: once the response buffer is flushed, hang up cleanly.
      if (alive && draining_.load(std::memory_order_acquire) &&
          c.wbuf.empty())
        alive = false;

      if (alive) {
        ++i;
      } else {
        close_connection(c);
        w.conns.erase(w.conns.begin() + static_cast<std::ptrdiff_t>(i));
        // pfds is now stale past this index; re-enter poll rather than
        // risk matching events to the wrong connection.
        break;
      }
    }
  }

  for (Connection& c : w.conns) {
    (void)flush_writes(c);  // best effort
    close_connection(c);
  }
  w.conns.clear();
}

void RpcServer::accept_ready(Worker& w) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient
    if (draining_.load(std::memory_order_acquire) ||
        active_.load(std::memory_order_acquire) >= config_.max_connections) {
      // Doorman refusal: one kGoAway frame with the backoff hint, then
      // close — the client backs off instead of queueing invisibly.
      const std::string frame = goaway_frame(
          draining_.load(std::memory_order_acquire) ? Status::kShuttingDown
                                                    : Status::kRetryLater);
      const ssize_t n = ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      if (n > 0)
        bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    Connection c;
    c.fd = fd;
    c.last_activity = Clock::now();
    w.conns.push_back(std::move(c));
  }
}

bool RpcServer::read_ready(Connection& c) {
  char buf[16384];
  bool got_bytes = false;
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.rbuf.append(buf, static_cast<std::size_t>(n));
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      got_bytes = true;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  if (got_bytes) c.last_activity = Clock::now();
  return process_frames(c);
}

bool RpcServer::process_frames(Connection& c) {
  std::size_t off = 0;
  const std::string_view whole(c.rbuf);
  for (;;) {
    std::string_view payload;
    std::size_t consumed = 0;
    const FrameResult res =
        try_decode_frame(whole.substr(off), config_.max_frame_bytes,
                         &payload, &consumed);
    if (res == FrameResult::kNeedMore) break;
    if (res == FrameResult::kError) {
      // Length or CRC corruption: the stream's frame boundaries can no
      // longer be trusted, so the connection is dropped.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    handle_payload(c, payload);
    off += consumed;
    if (c.failed) return false;
  }
  c.rbuf.erase(0, off);
  if (c.rbuf.empty()) {
    c.partial_since.reset();
  } else if (!c.partial_since) {
    c.partial_since = Clock::now();
  }
  return true;
}

bool RpcServer::flush_writes(Connection& c) {
  while (!c.wbuf.empty()) {
    const ssize_t n =
        ::send(c.fd, c.wbuf.data(), c.wbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      c.wbuf.erase(0, static_cast<std::size_t>(n));
      c.last_activity = Clock::now();
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return true;
}

void RpcServer::close_connection(Connection& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

// --- Request handling ------------------------------------------------------

void RpcServer::handle_payload(Connection& c, std::string_view payload) {
  Reader r(payload);
  RequestHeader h;
  if (!decode_request_header(r, h)) {
    // A CRC-clean frame too short for the envelope is corruption, not a
    // malformed request — drop the connection.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    c.failed = true;
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  ResponseHeader resp;
  resp.type = static_cast<std::uint8_t>(h.type & ~kResponseBit);
  resp.request_id = h.request_id;
  std::string body;

  if (h.version != kProtocolVersion) {
    resp.status = Status::kUnsupportedVersion;
  } else if ((h.type & kResponseBit) != 0) {
    resp.status = Status::kUnsupportedType;
  } else {
    switch (static_cast<MsgType>(h.type)) {
      case MsgType::kPing:
        break;
      case MsgType::kSubmitRating: {
        const auto req = SubmitRatingRequest::decode(r);
        resp.status =
            req ? submit_one(req->rating) : Status::kInvalidArgument;
        break;
      }
      case MsgType::kSubmitBatch:
        handle_submit_batch(r, resp, body);
        break;
      case MsgType::kQueryReputation:
        handle_query_reputation(r, resp, body);
        break;
      case MsgType::kQueryColluders:
        handle_query_colluders(resp, body);
        break;
      case MsgType::kGetMetrics:
        handle_get_metrics(body);
        break;
      case MsgType::kResize:
        handle_resize(r, resp, body);
        break;
      case MsgType::kGoAway:
      default:
        resp.status = Status::kUnsupportedType;
        break;
    }
  }

  if (resp.status == Status::kRetryLater) {
    resp.backoff_hint_ms = config_.shed_backoff_ms;
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
  std::string out;
  encode_response_header(out, resp);
  out += body;
  c.wbuf += encode_frame(out);
  responses_.fetch_add(1, std::memory_order_relaxed);
}

Status RpcServer::submit_one(const rating::Rating& r) {
  if (draining_.load(std::memory_order_acquire)) return Status::kShuttingDown;
  // Inflight gate first: cheaper than routing, and it bounds the admitted-
  // but-unapplied backlog across all shards.
  if (service_->queue_depth() >= config_.max_inflight)
    return Status::kRetryLater;
  switch (service_->try_ingest(r)) {
    case service::ReputationService::IngestResult::kAccepted:
      return Status::kOk;
    case service::ReputationService::IngestResult::kInvalid:
      return Status::kInvalidArgument;
    case service::ReputationService::IngestResult::kBusy:
      return Status::kRetryLater;
    case service::ReputationService::IngestResult::kStopped:
      return Status::kShuttingDown;
  }
  return Status::kInternal;
}

void RpcServer::handle_submit_batch(Reader& r, ResponseHeader& resp,
                                    std::string& body) {
  const auto req = SubmitBatchRequest::decode(r);
  if (!req) {
    resp.status = Status::kInvalidArgument;
    return;
  }
  SubmitBatchResponse out;
  for (const rating::Rating& rt : req->ratings) {
    const Status s = submit_one(rt);
    if (s == Status::kOk) {
      ++out.accepted;
    } else if (s == Status::kInvalidArgument) {
      ++out.rejected;  // skip the bad rating, keep consuming
    } else {
      // Shed or shutdown: stop here; accepted+rejected tells the client
      // which suffix to resubmit after backing off.
      resp.status = s;
      break;
    }
  }
  out.encode(body);
}

void RpcServer::handle_query_reputation(Reader& r, ResponseHeader& resp,
                                        std::string& body) {
  const auto req = QueryReputationRequest::decode(r);
  if (!req || req->node >= service_->config().num_nodes) {
    resp.status = Status::kInvalidArgument;
    QueryReputationResponse{}.encode(body);
    return;
  }
  const service::ServiceSnapshot snap = service_->snapshot();
  QueryReputationResponse out;
  out.reputation = snap.reputation(req->node);
  out.suspected = snap.suspected(req->node) ? 1 : 0;
  // Resolve the owner through the snapshot's own map: shard_of() reads the
  // live map, which a concurrent resize() may already have swapped.
  const std::size_t shard = snap.owner(req->node);
  out.shard = static_cast<std::uint32_t>(shard);
  out.epoch = snap.shards[shard]->epoch;
  out.encode(body);
}

void RpcServer::handle_resize(Reader& r, ResponseHeader& resp,
                              std::string& body) {
  const auto req = ResizeRequest::decode(r);
  if (!req) {
    resp.status = Status::kInvalidArgument;
    ResizeResponse{}.encode(body);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    resp.status = Status::kShuttingDown;
    ResizeResponse{}.encode(body);
    return;
  }
  ResizeResponse out;
  try {
    const service::ResizeStats stats = service_->resize(req->new_num_shards);
    out.num_shards = static_cast<std::uint32_t>(stats.num_shards);
    out.keys_moved = stats.keys_moved;
    out.duration_ms = static_cast<std::uint64_t>(stats.duration_ms);
  } catch (const std::invalid_argument&) {
    resp.status = Status::kInvalidArgument;
    out.num_shards = static_cast<std::uint32_t>(service_->num_shards());
  } catch (const std::runtime_error&) {
    resp.status = Status::kInternal;
    out.num_shards = static_cast<std::uint32_t>(service_->num_shards());
  }
  out.encode(body);
}

void RpcServer::handle_query_colluders(ResponseHeader&, std::string& body) {
  const service::ServiceSnapshot snap = service_->snapshot();
  QueryColludersResponse out;
  const std::size_t n = service_->config().num_nodes;
  for (rating::NodeId i = 0; i < n; ++i) {
    if (!snap.suspected(i)) continue;
    ++out.total_suspected;
    if (out.colluders.size() < config_.max_colluders_per_response)
      out.colluders.push_back(i);
  }
  out.truncated = out.colluders.size() < out.total_suspected ? 1 : 0;
  out.encode(body);
}

void RpcServer::handle_get_metrics(std::string& body) {
  GetMetricsResponse out;
  out.metrics = service_->metrics();
  fill_metrics(out.metrics);
  out.encode(body);
}

std::string RpcServer::goaway_frame(Status status) const {
  ResponseHeader h;
  h.type = static_cast<std::uint8_t>(MsgType::kGoAway);
  h.request_id = 0;
  h.status = status;
  h.backoff_hint_ms =
      status == Status::kRetryLater ? config_.shed_backoff_ms : 0;
  std::string payload;
  encode_response_header(payload, h);
  return encode_frame(payload);
}

// --- Stats -----------------------------------------------------------------

RpcServerStats RpcServer::stats() const {
  RpcServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.active_connections = active_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.request_timeouts = request_timeouts_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

void RpcServer::fill_metrics(service::ServiceMetrics& m) const {
  const RpcServerStats s = stats();
  m.rpc_accepted = s.connections_accepted;
  m.rpc_rejected = s.connections_rejected;
  m.rpc_requests = s.requests;
  m.rpc_shed = s.shed;
  m.rpc_bytes_in = s.bytes_in;
  m.rpc_bytes_out = s.bytes_out;
  m.rpc_active_connections = s.active_connections;
}

}  // namespace p2prep::rpc
