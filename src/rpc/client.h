// Blocking RPC client for the reputation service (rpc/protocol.h wire
// format). One connection, synchronous request/response; connect and
// per-request timeouts; submit paths retry on kRetryLater sheds with
// bounded exponential backoff that honors the server's backoff hint — the
// contract half of the server's doorman-style overload control.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "rating/types.h"
#include "rpc/protocol.h"
#include "service/metrics.h"

namespace p2prep::rpc {

struct RpcClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t connect_timeout_ms = 2000;
  /// Deadline for one full request/response round trip.
  std::uint32_t request_timeout_ms = 5000;
  /// Backoff after a shed doubles from `initial` up to `max`; the server's
  /// backoff hint is a floor on every wait.
  std::uint32_t backoff_initial_ms = 5;
  std::uint32_t backoff_max_ms = 1000;
  /// Attempts per logical operation in the retrying submit paths (one
  /// initial try + max_attempts-1 retries).
  std::uint32_t max_attempts = 16;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

struct RpcClientStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;           ///< Re-sends after shed/transport loss.
  std::uint64_t sheds_seen = 0;        ///< kRetryLater responses received.
  std::uint64_t reconnects = 0;
  std::uint64_t transport_errors = 0;  ///< Timeouts, resets, bad frames.
};

/// Outcome of one RPC round trip. `ok` means a well-formed response
/// arrived (its status may still be an application error); on !ok, `error`
/// says what broke and the connection is closed (reconnect to continue).
struct CallResult {
  bool ok = false;
  Status status = Status::kInternal;
  std::uint32_t backoff_hint_ms = 0;
  std::string error;
};

class RpcClient {
 public:
  explicit RpcClient(RpcClientConfig config);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Connects (or reconnects) within connect_timeout_ms. A kGoAway frame
  /// the server sends instead of accepting (connection-limit shed) is
  /// surfaced on the first request, not here.
  bool connect(std::string* error = nullptr);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // --- Single-shot calls (no retry; !ok closes the connection) ---
  CallResult ping();
  CallResult submit_rating(const rating::Rating& r);
  CallResult query_reputation(rating::NodeId node,
                              QueryReputationResponse* out);
  CallResult query_colluders(QueryColludersResponse* out);
  CallResult get_metrics(service::ServiceMetrics* out);
  /// Admin: change the shard count online. Blocks for the whole handoff
  /// window (the server answers it inline), so use a generous timeout.
  CallResult resize(std::uint32_t new_num_shards, ResizeResponse* out);

  /// One raw round trip with an already-encoded body — the transport seam
  /// the cluster's manager-to-manager surface (cluster/protocol.h) calls
  /// through. Semantics match the single-shot calls: no retry, !ok closes
  /// the connection, `body_out` receives the response body bytes.
  CallResult call_raw(MsgType type, const std::string& body,
                      std::string* body_out);

  // --- Retrying submit paths ---

  /// Submits one rating, retrying sheds (after the hinted backoff) and
  /// transport failures (after reconnecting) up to max_attempts. Returns
  /// the final status: kOk, kInvalidArgument, or the last failure.
  CallResult submit_rating_with_retry(const rating::Rating& r);

  struct BatchOutcome {
    std::size_t accepted = 0;
    std::size_t rejected = 0;   ///< Invalid ratings skipped by the server.
    bool complete = false;      ///< Whole span consumed.
    std::string error;          ///< Set when !complete.
  };

  /// Submits `ratings` in frames of `batch_size`, resuming after partial
  /// consumption: when the server sheds mid-batch its response reports the
  /// consumed prefix, and only the remainder is resent after backoff.
  BatchOutcome submit_batch(std::span<const rating::Rating> ratings,
                            std::size_t batch_size = 256);

  [[nodiscard]] const RpcClientStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const RpcClientConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One round trip: frame + send `payload`, receive and validate the
  /// response envelope (matching request_id), leave the body in
  /// `body_out`. Transport errors close the connection.
  CallResult call(MsgType type, const std::string& body,
                  std::string* body_out);
  bool send_all(const std::string& data, std::string* error);
  /// Receives one frame within the deadline; empty optional on failure.
  std::optional<std::string> recv_frame(
      std::chrono::steady_clock::time_point deadline, std::string* error);
  /// Backoff wait before retry `attempt` (0-based), >= the server hint.
  void backoff(std::uint32_t attempt, std::uint32_t hint_ms);

  RpcClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::string rbuf_;  ///< Bytes received past the current frame.
  RpcClientStats stats_;
};

}  // namespace p2prep::rpc
