// Wire protocol of the reputation-service RPC front-end (DESIGN.md
// "Network RPC front-end"). Request/response messages travel in the same
// CRC32 framing the WAL uses:
//
//   frame:    u32 payload_len | u32 crc32(payload) | payload
//   request:  u8 version | u8 msg_type        | u64 request_id | body
//   response: u8 version | u8 msg_type|0x80   | u64 request_id |
//             u8 status | u32 backoff_hint_ms | body
//
// All integers are little-endian (host-order independent, matching the
// WAL layout). `msg_type|0x80` marks a response to the request type in the
// low bits; `kGoAway` is the one server-initiated message (sent before a
// connection is refused or torn down) and is always a response. Every
// response carries the status envelope; `backoff_hint_ms` is non-zero only
// with `kRetryLater`, the overload-shed status — the client is expected to
// wait at least that long before retrying (rpc/client.h honors it).
//
// Versioning: a request whose version byte differs from kProtocolVersion
// is answered with kUnsupportedVersion (the envelope is forward-stable:
// only bodies may change shape between versions). Unknown message types
// get kUnsupportedType. Neither closes the connection — frame boundaries
// are still trustworthy. A frame that fails its length or CRC check is not
// trustworthy, and the server drops the connection instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rating/types.h"
#include "service/metrics.h"

namespace p2prep::rpc {

inline constexpr std::uint8_t kProtocolVersion = 1;
/// u32 payload_len + u32 crc32.
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Default cap on one frame's payload; a peer announcing more is treated
/// as corrupt (protects the read buffer from a hostile 4 GiB length).
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;
/// High bit of the msg_type byte marks a response.
inline constexpr std::uint8_t kResponseBit = 0x80;
/// Hard cap on ratings in one SubmitBatch request. Decoders reject a
/// larger count outright — even when the frame really carries that many
/// bytes — so one request cannot stage an outsized allocation or hold a
/// server worker for an unbounded apply loop. (The bench sweet spot is
/// batch=256; the cap leaves two orders of magnitude of headroom.)
inline constexpr std::uint32_t kMaxBatchRatings = 1u << 16;
/// Hard cap on node ids in one QueryColluders response; the server's own
/// truncation cap is far below this.
inline constexpr std::uint32_t kMaxColluderIds = 1u << 20;

enum class MsgType : std::uint8_t {
  kPing = 1,
  kSubmitRating = 2,
  kSubmitBatch = 3,
  kQueryReputation = 4,
  kQueryColluders = 5,
  kGetMetrics = 6,
  /// Admin: change the shard count online (ReputationService::resize).
  kResize = 7,
  // Manager-to-manager surface of the multi-process cluster (src/cluster/).
  // Bodies live in cluster/protocol.h; the type values are registered here
  // so one byte space covers the whole deployment and to_string stays
  // exhaustive.
  /// Client/peer → holder: ingest one rating into its owner key range.
  kMgrInsert = 16,
  /// Primary → replica: synchronous copy of an accepted rating.
  kMgrReplicate = 17,
  /// Peer → holder: pull a whole key range's checkpoint-encoded state.
  kMgrStatePull = 18,
  /// Coordinator → manager: apply a global epoch's colluder verdicts.
  kMgrColluderSet = 19,
  /// Any → any: ring membership, replication factor, liveness view.
  kMgrRingInfo = 20,
  /// Restarted manager → peers: resynced and serving again.
  kMgrRejoin = 21,
  /// Holder → lagging holder: replication copies were missed while the
  /// receiver was unreachable; re-pull the named range from the other
  /// holders now. Response has no body.
  kMgrResyncHint = 22,
  /// Server-initiated: connection refused (max_connections) or about to
  /// be torn down. Always sent as a response with request_id 0.
  kGoAway = 0x7f,
};

enum class Status : std::uint8_t {
  kOk = 0,
  /// Overload shed: ingest queues saturated or the inflight budget is
  /// exhausted. The response's backoff_hint_ms tells the client how long
  /// to wait before retrying.
  kRetryLater = 1,
  kInvalidArgument = 2,
  kUnsupportedVersion = 3,
  kUnsupportedType = 4,
  kShuttingDown = 5,
  kInternal = 6,
};

[[nodiscard]] std::string_view to_string(Status s) noexcept;
[[nodiscard]] std::string_view to_string(MsgType t) noexcept;

// --- Byte-level helpers (little-endian) ------------------------------------

/// Appends little-endian scalars to a byte string.
void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);

/// Bytes one encoded rating occupies (u32 rater + u32 ratee + u8 score +
/// u64 tick) — shared by SubmitBatch's and the cluster codecs' count
/// guards.
inline constexpr std::size_t kRatingBytes = 17;

/// Appends one rating in the canonical 17-byte wire layout (score travels
/// with the WAL's +1 bias: -1/0/+1 as 0/1/2).
void put_rating(std::string& out, const rating::Rating& r);
/// Reads one rating; false on underrun or an out-of-range score byte.
[[nodiscard]] bool get_rating(class Reader& r, rating::Rating& out);

/// Bounds-checked little-endian reader; get_* return false on underrun and
/// leave the cursor unmoved past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool get_u8(std::uint8_t& v);
  [[nodiscard]] bool get_u16(std::uint16_t& v);
  [[nodiscard]] bool get_u32(std::uint32_t& v);
  [[nodiscard]] bool get_u64(std::uint64_t& v);
  [[nodiscard]] bool get_f64(double& v);
  /// Reads `n` raw bytes into `out` (replacing its contents); false on
  /// underrun with the cursor unmoved. Callers validate `n` against
  /// remaining() *before* any allocation it sizes.
  [[nodiscard]] bool get_bytes(std::string& out, std::size_t n);
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- Framing ---------------------------------------------------------------

/// Wraps `payload` in the length+CRC frame header.
[[nodiscard]] std::string encode_frame(std::string_view payload);

enum class FrameResult : std::uint8_t {
  kFrame,     ///< One complete, CRC-clean frame was extracted.
  kNeedMore,  ///< The buffer holds only a prefix; read more bytes.
  kError,     ///< Oversized length or CRC mismatch; the stream is corrupt.
};

/// Attempts to extract the first frame from `buffer`. On kFrame, `payload`
/// views the payload bytes inside `buffer` (valid until the buffer
/// changes) and `consumed` is the total frame size to erase. On kError,
/// `error` (when non-null) describes the corruption.
FrameResult try_decode_frame(std::string_view buffer,
                             std::uint32_t max_frame_bytes,
                             std::string_view* payload, std::size_t* consumed,
                             std::string* error = nullptr);

// --- Envelope --------------------------------------------------------------

struct RequestHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;  ///< Raw byte; may not name a known MsgType.
  std::uint64_t request_id = 0;
};

struct ResponseHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;  ///< Request's type byte (response bit stripped).
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::uint32_t backoff_hint_ms = 0;
};

/// Appends a request envelope; body bytes follow.
void encode_request_header(std::string& out, MsgType type,
                           std::uint64_t request_id);
/// Appends a response envelope; body bytes follow.
void encode_response_header(std::string& out, const ResponseHeader& h);

/// Decodes a request envelope. Fails only on underrun — an unknown type or
/// version is reported through the header so the server can answer with
/// the right status instead of dropping the connection.
[[nodiscard]] bool decode_request_header(Reader& r, RequestHeader& h);
/// Decodes a response envelope; fails on underrun or if the response bit
/// is missing from the type byte.
[[nodiscard]] bool decode_response_header(Reader& r, ResponseHeader& h);

// --- Message bodies --------------------------------------------------------
// Requests/responses with no fields beyond the envelope (Ping, GoAway,
// QueryColluders request, GetMetrics request, SubmitRating response) have
// no body struct.

struct SubmitRatingRequest {
  rating::Rating rating;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<SubmitRatingRequest> decode(Reader& r);
};

struct SubmitBatchRequest {
  std::vector<rating::Rating> ratings;

  void encode(std::string& out) const;
  /// Rejects a count field that exceeds the bytes actually present, so a
  /// hostile count cannot force a huge allocation.
  [[nodiscard]] static std::optional<SubmitBatchRequest> decode(Reader& r);
};

/// Batch outcome: the server stops at the first shed/shutdown, so
/// `accepted + rejected` ratings were consumed from the front of the batch
/// and the client resubmits the remainder (see RpcClient::submit_batch).
struct SubmitBatchResponse {
  std::uint32_t accepted = 0;  ///< Routed into shard queues.
  std::uint32_t rejected = 0;  ///< Invalid (self-rating / id out of range).

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<SubmitBatchResponse> decode(Reader& r);
};

struct QueryReputationRequest {
  rating::NodeId node = 0;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<QueryReputationRequest> decode(Reader& r);
};

struct QueryReputationResponse {
  double reputation = 0.0;
  std::uint8_t suspected = 0;
  std::uint64_t epoch = 0;      ///< Owner shard's published epoch.
  std::uint32_t shard = 0;      ///< Owner shard index.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<QueryReputationResponse> decode(
      Reader& r);
};

struct QueryColludersResponse {
  /// Suspected nodes, ascending, truncated to the server's response cap.
  std::vector<rating::NodeId> colluders;
  std::uint32_t total_suspected = 0;  ///< Service-wide count (pre-cap).
  std::uint8_t truncated = 0;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<QueryColludersResponse> decode(
      Reader& r);
};

struct GetMetricsResponse {
  service::ServiceMetrics metrics;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<GetMetricsResponse> decode(Reader& r);
};

struct ResizeRequest {
  std::uint32_t new_num_shards = 0;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<ResizeRequest> decode(Reader& r);
};

struct ResizeResponse {
  std::uint32_t num_shards = 0;    ///< Live shard count after the call.
  std::uint64_t keys_moved = 0;    ///< Nodes whose owner shard changed.
  std::uint64_t duration_ms = 0;   ///< Handoff window, rounded to ms.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<ResizeResponse> decode(Reader& r);
};

}  // namespace p2prep::rpc
