// Interest-clustered unstructured overlay (paper Sec. V network model):
// each node holds 1-5 of the 20 interest categories; all nodes sharing an
// interest form a fully connected cluster, and a node with m interests
// belongs to m clusters. Queries for a file in an interest go to the
// members of that interest's cluster.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/config.h"
#include "rating/types.h"
#include "util/rng.h"

namespace p2prep::net {

using InterestId = std::uint32_t;

class InterestOverlay {
 public:
  /// Assigns interests to all nodes from `rng` per the SimConfig bounds.
  InterestOverlay(const SimConfig& config, util::Rng& rng);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return interests_of_.size();
  }
  [[nodiscard]] std::size_t num_interests() const noexcept {
    return clusters_.size();
  }

  /// Interests node `id` holds (1..max per config), ascending.
  [[nodiscard]] std::span<const InterestId> interests_of(
      rating::NodeId id) const {
    return interests_of_.at(id);
  }

  /// All members of interest `cat`'s cluster, ascending node id.
  [[nodiscard]] std::span<const rating::NodeId> cluster(InterestId cat) const {
    return clusters_.at(cat);
  }

  [[nodiscard]] bool has_interest(rating::NodeId id, InterestId cat) const;

 private:
  std::vector<std::vector<InterestId>> interests_of_;
  std::vector<std::vector<rating::NodeId>> clusters_;
};

}  // namespace p2prep::net
