// Simulation parameters, one field per knob in the paper's Sec. V setup.
// Defaults reproduce the evaluation configuration exactly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace p2prep::net {

struct SimConfig {
  /// Network size (paper: unstructured P2P network with 200 nodes).
  std::size_t num_nodes = 200;

  /// Interest categories in the system (paper: 20; ratio of per-node
  /// interests to categories mirrors Overstock).
  std::size_t num_interests = 20;
  /// Per-node interest count is uniform in [min, max] (paper: [1, 5]).
  std::size_t min_interests_per_node = 1;
  std::size_t max_interests_per_node = 5;

  /// Requests a node can serve simultaneously per query cycle (paper: 50).
  std::uint32_t node_capacity = 50;

  /// Per-node activity probability is uniform in [min, max] (paper:
  /// [0.3, 0.8]); drawn once per node, applied each query cycle.
  double min_active_prob = 0.3;
  double max_active_prob = 0.8;

  /// Query cycles per simulation cycle (paper: 20).
  std::size_t query_cycles_per_sim_cycle = 20;
  /// Simulation cycles per run (paper: 20). Reputations update once per
  /// simulation cycle; the detection window T is one simulation cycle.
  std::size_t sim_cycles = 20;

  /// Probability of serving an authentic file ("good behavior" B).
  double normal_good_prob = 0.8;      ///< Paper: normal nodes 80%.
  double pretrusted_good_prob = 1.0;  ///< Paper: pretrusted always good.
  double colluder_good_prob = 0.2;    ///< Paper: B in {0.2, 0.6}.

  /// Positive ratings each colluder sends its partner per query cycle
  /// (paper: "rate each other 10 times per query cycle").
  std::size_t collusion_ratings_per_query_cycle = 10;

  /// Camouflage: probability a collusion rating is positive (1.0 = the
  /// paper's model). Colluders can mix negatives into their mutual
  /// ratings to duck under T_a — sacrificing boost for stealth
  /// (bench_ablation_evasion quantifies the trade).
  double collusion_positive_prob = 1.0;

  /// Traitor behaviour (NodeRoles::traitors): honest until this simulation
  /// cycle, then defecting to `traitor_good_prob_after`.
  std::size_t traitor_defect_cycle = 10;
  double traitor_good_prob_after = 0.1;

  /// Whitewashing: when a detected colluder's reputation is zeroed, the
  /// attacker abandons that identity and re-enters under a fresh one
  /// (drawn from the unused top of the id space), resuming the same
  /// collusion edges. Models the classic cheap-identity attack; windowed
  /// detection re-catches each generation within one period, but the
  /// identity itself escapes lasting damage (bench_ablation_whitewash).
  bool whitewash_on_detection = false;

  /// Network churn, evaluated at every simulation-cycle boundary: an
  /// online NORMAL node goes offline with `churn_leave_prob`; an offline
  /// node returns with `churn_rejoin_prob`. Offline nodes neither query
  /// nor serve nor rate. Pretrusted nodes and colluders stay online
  /// (colluders are financially motivated; the paper holds special nodes
  /// fixed). Defaults reproduce the paper's churn-free setting.
  double churn_leave_prob = 0.0;
  double churn_rejoin_prob = 0.0;

  /// Master seed; every run derives independent substreams from it.
  std::uint64_t seed = 20120910;  // ICPP 2012 opening day

  [[nodiscard]] constexpr bool valid() const noexcept {
    return num_nodes >= 2 && num_interests >= 1 &&
           min_interests_per_node >= 1 &&
           min_interests_per_node <= max_interests_per_node &&
           max_interests_per_node <= num_interests &&
           min_active_prob >= 0.0 && max_active_prob <= 1.0 &&
           min_active_prob <= max_active_prob && node_capacity > 0 &&
           query_cycles_per_sim_cycle > 0 && sim_cycles > 0;
  }
};

}  // namespace p2prep::net
