// The P2P file-sharing simulator (paper Sec. V "Network model" /
// "Node model" / "Simulation execution" / "Collusion model").
//
// Per query cycle: every node that is active this cycle issues one file
// query in one of its interests; it asks all neighbors in that interest's
// cluster and picks the highest-reputed one with remaining capacity (ties
// broken uniformly at random). The chosen server delivers an authentic file
// with its good-behavior probability, and the client rates +1/-1
// accordingly through the centralized manager. Colluding pairs additionally
// exchange `collusion_ratings_per_query_cycle` positive ratings per query
// cycle.
//
// Per simulation cycle (= query_cycles_per_sim_cycle query cycles): the
// reputation engine recomputes global reputations; if a detector is
// attached, the manager runs a detection pass (suppressing flagged nodes'
// reputations to 0) and the window T rolls over.
//
// All randomness flows from SimConfig::seed; two simulators with the same
// config, roles and engine state produce identical runs.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/detector.h"
#include "managers/centralized.h"
#include "net/config.h"
#include "net/metrics.h"
#include "net/overlay.h"
#include "net/roles.h"
#include "reputation/engine.h"
#include "util/cost.h"
#include "util/rng.h"

namespace p2prep::net {

class Simulator {
 public:
  /// `engine` is not owned and must outlive the simulator. `detector` may
  /// be null (baseline run without collusion detection).
  Simulator(SimConfig config, NodeRoles roles,
            reputation::ReputationEngine& engine,
            const core::CollusionDetector* detector = nullptr);

  /// Runs the configured number of simulation cycles.
  void run();
  /// Runs one simulation cycle (query cycles + reputation update +
  /// optional detection + window rollover).
  void run_sim_cycle();

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NodeRoles& roles() const noexcept { return roles_; }
  [[nodiscard]] const InterestOverlay& overlay() const noexcept {
    return overlay_;
  }
  [[nodiscard]] managers::CentralizedManager& manager() noexcept {
    return manager_;
  }
  [[nodiscard]] const managers::CentralizedManager& manager() const noexcept {
    return manager_;
  }
  /// Published global reputations (engine view).
  [[nodiscard]] std::span<const double> reputations() const {
    return engine_.reputations();
  }

  [[nodiscard]] NodeType type_of(rating::NodeId id) const {
    return types_.at(id);
  }
  [[nodiscard]] double good_prob_of(rating::NodeId id) const {
    return good_prob_.at(id);
  }
  [[nodiscard]] double active_prob_of(rating::NodeId id) const {
    return active_prob_.at(id);
  }
  /// Whether node `id` is currently online (churn model; see SimConfig).
  [[nodiscard]] bool online(rating::NodeId id) const {
    return online_.at(id);
  }
  /// Count of currently online nodes.
  [[nodiscard]] std::size_t online_count() const;

  /// Accumulated detector cost across all detection passes (Fig. 13).
  [[nodiscard]] const util::CostCounter& detection_cost() const noexcept {
    return detection_cost_;
  }
  /// Pairs flagged across the run (deduplicated by the manager's set).
  [[nodiscard]] std::size_t detections() const noexcept { return detections_; }
  /// Simulation cycle (0-based) at which each node was first flagged.
  [[nodiscard]] const std::unordered_map<rating::NodeId, std::size_t>&
  first_detected_cycle() const noexcept {
    return first_detected_cycle_;
  }
  /// Identity swaps performed by whitewashing colluders.
  [[nodiscard]] std::size_t whitewash_count() const noexcept {
    return whitewash_count_;
  }
  [[nodiscard]] std::size_t sim_cycles_run() const noexcept {
    return cycles_run_;
  }

 private:
  void run_query_cycle();
  void inject_collusion_ratings();
  void apply_churn();
  /// Swaps detected colluders' identities for fresh ones (whitewashing).
  void apply_whitewash(const std::vector<rating::NodeId>& flagged);
  /// Highest-reputed neighbor of `client` in `cat`'s cluster with remaining
  /// capacity; kInvalidNode if none. Ties broken uniformly.
  [[nodiscard]] rating::NodeId select_server(rating::NodeId client,
                                             InterestId cat);

  SimConfig config_;
  NodeRoles roles_;
  util::Rng rng_;
  InterestOverlay overlay_;
  reputation::ReputationEngine& engine_;
  managers::CentralizedManager manager_;
  const core::CollusionDetector* detector_;

  std::vector<NodeType> types_;
  std::vector<double> good_prob_;
  std::vector<double> active_prob_;
  std::vector<std::uint32_t> capacity_left_;
  std::vector<std::uint8_t> online_;
  std::vector<rating::NodeId> tie_scratch_;

  Metrics metrics_;
  util::CostCounter detection_cost_;
  std::unordered_map<rating::NodeId, std::size_t> first_detected_cycle_;
  std::size_t whitewash_count_ = 0;
  rating::NodeId next_fresh_id_ = 0;  // whitewash identity pool cursor
  std::size_t detections_ = 0;
  std::size_t cycles_run_ = 0;
  rating::Tick now_ = 0;  // global query-cycle counter
};

}  // namespace p2prep::net
