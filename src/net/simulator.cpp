#include "net/simulator.h"

#include <algorithm>
#include <cassert>

namespace p2prep::net {

namespace {
util::Rng make_overlay_rng(const SimConfig& config) {
  util::Rng root(config.seed);
  return root.fork(0x6f76657268656164ULL);
}
}  // namespace

Simulator::Simulator(SimConfig config, NodeRoles roles,
                     reputation::ReputationEngine& engine,
                     const core::CollusionDetector* detector)
    : config_(config),
      roles_(std::move(roles)),
      rng_(util::Rng(config.seed).fork(0x73696d756c617465ULL)),
      overlay_([&config] {
        util::Rng overlay_rng = make_overlay_rng(config);
        return InterestOverlay(config, overlay_rng);
      }()),
      engine_(engine),
      manager_(config.num_nodes, engine,
               detector != nullptr ? detector->config()
                                   : core::DetectorConfig{}),
      detector_(detector) {
  assert(config_.valid());

  engine_.set_pretrusted(roles_.pretrusted);

  types_.resize(config_.num_nodes, NodeType::kNormal);
  good_prob_.resize(config_.num_nodes, config_.normal_good_prob);
  for (rating::NodeId p : roles_.pretrusted) {
    types_.at(p) = NodeType::kPretrusted;
    good_prob_.at(p) = config_.pretrusted_good_prob;
  }
  for (rating::NodeId c : roles_.colluders) {
    types_.at(c) = NodeType::kColluder;
    good_prob_.at(c) = config_.colluder_good_prob;
  }

  active_prob_.resize(config_.num_nodes);
  for (auto& p : active_prob_)
    p = rng_.uniform(config_.min_active_prob, config_.max_active_prob);

  capacity_left_.resize(config_.num_nodes, config_.node_capacity);
  online_.resize(config_.num_nodes, 1);
  metrics_.requests_served.resize(config_.num_nodes, 0);
  next_fresh_id_ = static_cast<rating::NodeId>(config_.num_nodes - 1);
}

void Simulator::apply_whitewash(const std::vector<rating::NodeId>& flagged) {
  for (rating::NodeId old_id : flagged) {
    if (types_.at(old_id) != NodeType::kColluder) continue;
    // Find an unused identity from the top of the id space: a normal,
    // still-online account (burned identities are parked offline and must
    // not be resurrected as "fresh").
    auto usable = [this](rating::NodeId id) {
      return types_.at(id) == NodeType::kNormal && online_.at(id) != 0;
    };
    while (next_fresh_id_ > 0 && !usable(next_fresh_id_)) {
      --next_fresh_id_;
    }
    if (next_fresh_id_ == 0 || !usable(next_fresh_id_)) {
      return;  // identity pool exhausted
    }
    const rating::NodeId fresh = next_fresh_id_--;

    // The fresh identity inherits the colluder role; the burned identity
    // becomes an abandoned normal account (offline).
    types_.at(fresh) = NodeType::kColluder;
    good_prob_.at(fresh) = config_.colluder_good_prob;
    types_.at(old_id) = NodeType::kNormal;
    online_.at(old_id) = 0;
    for (auto& c : roles_.colluders) {
      if (c == old_id) c = fresh;
    }
    for (auto& [a, b] : roles_.collusion_edges) {
      if (a == old_id) a = fresh;
      if (b == old_id) b = fresh;
    }
    for (auto& [a, b] : roles_.boost_edges) {
      if (a == old_id) a = fresh;
      if (b == old_id) b = fresh;
    }
    ++whitewash_count_;
  }
}

std::size_t Simulator::online_count() const {
  std::size_t count = 0;
  for (std::uint8_t o : online_) count += o;
  return count;
}

void Simulator::apply_churn() {
  if (config_.churn_leave_prob <= 0.0 && config_.churn_rejoin_prob <= 0.0)
    return;
  for (rating::NodeId id = 0; id < config_.num_nodes; ++id) {
    if (types_[id] != NodeType::kNormal) continue;  // specials stay online
    if (online_[id]) {
      if (rng_.chance(config_.churn_leave_prob)) online_[id] = 0;
    } else if (rng_.chance(config_.churn_rejoin_prob)) {
      online_[id] = 1;
    }
  }
}

rating::NodeId Simulator::select_server(rating::NodeId client,
                                        InterestId cat) {
  const auto members = overlay_.cluster(cat);
  double best_rep = -1.0;
  tie_scratch_.clear();
  for (rating::NodeId candidate : members) {
    if (candidate == client || capacity_left_[candidate] == 0 ||
        !online_[candidate]) {
      continue;
    }
    const double rep = engine_.reputation(candidate);
    if (rep > best_rep) {
      best_rep = rep;
      tie_scratch_.clear();
      tie_scratch_.push_back(candidate);
    } else if (rep == best_rep) {
      tie_scratch_.push_back(candidate);
    }
  }
  if (tie_scratch_.empty()) return rating::kInvalidNode;
  if (tie_scratch_.size() == 1) return tie_scratch_.front();
  return tie_scratch_[rng_.next_below(tie_scratch_.size())];
}

void Simulator::inject_collusion_ratings() {
  for (const auto& [u, v] : roles_.collusion_edges) {
    for (std::size_t k = 0; k < config_.collusion_ratings_per_query_cycle;
         ++k) {
      manager_.ingest({.rater = u,
                       .ratee = v,
                       .score = rng_.chance(config_.collusion_positive_prob)
                                    ? rating::Score::kPositive
                                    : rating::Score::kNegative,
                       .time = now_});
      manager_.ingest({.rater = v,
                       .ratee = u,
                       .score = rng_.chance(config_.collusion_positive_prob)
                                    ? rating::Score::kPositive
                                    : rating::Score::kNegative,
                       .time = now_});
      metrics_.collusion_ratings += 2;
    }
  }
  // Sybil-style one-directional boosts: the throwaway identity rates the
  // beneficiary, never the reverse.
  for (const auto& [sybil, target] : roles_.boost_edges) {
    for (std::size_t k = 0; k < config_.collusion_ratings_per_query_cycle;
         ++k) {
      manager_.ingest({.rater = sybil,
                       .ratee = target,
                       .score = rating::Score::kPositive,
                       .time = now_});
      ++metrics_.collusion_ratings;
    }
  }
}

void Simulator::run_query_cycle() {
  // Fresh capacity each query cycle ("50 requests simultaneously per query
  // cycle").
  std::fill(capacity_left_.begin(), capacity_left_.end(),
            config_.node_capacity);

  for (rating::NodeId client = 0; client < config_.num_nodes; ++client) {
    if (!online_[client]) continue;
    if (!rng_.chance(active_prob_[client])) continue;

    const auto interests = overlay_.interests_of(client);
    if (interests.empty()) continue;
    const InterestId cat =
        interests[rng_.next_below(interests.size())];

    const rating::NodeId server = select_server(client, cat);
    if (server == rating::kInvalidNode) {
      ++metrics_.unserved_queries;
      continue;
    }

    --capacity_left_[server];
    ++metrics_.total_requests;
    ++metrics_.requests_served[server];
    if (types_[server] == NodeType::kColluder)
      ++metrics_.requests_to_colluders;

    const bool authentic = rng_.chance(good_prob_[server]);
    if (authentic) ++metrics_.authentic_files;
    else ++metrics_.inauthentic_files;

    manager_.ingest({.rater = client,
                     .ratee = server,
                     .score = authentic ? rating::Score::kPositive
                                        : rating::Score::kNegative,
                     .time = now_});
  }

  inject_collusion_ratings();
  ++now_;
}

void Simulator::run_sim_cycle() {
  apply_churn();

  // Traitors defect at the configured cycle boundary.
  if (cycles_run_ == config_.traitor_defect_cycle) {
    for (rating::NodeId t : roles_.traitors)
      good_prob_.at(t) = config_.traitor_good_prob_after;
  }

  for (std::size_t q = 0; q < config_.query_cycles_per_sim_cycle; ++q)
    run_query_cycle();

  manager_.update_reputations();

  if (detector_ != nullptr) {
    const core::DetectionReport report = manager_.run_detection(*detector_);
    detection_cost_ += report.cost;
    detections_ += report.pairs.size();
    for (rating::NodeId id : report.colluders())
      first_detected_cycle_.try_emplace(id, cycles_run_);
    if (config_.whitewash_on_detection)
      apply_whitewash(report.colluders());
  }

  // The detection window T is one reputation-update period.
  manager_.reset_window();
  ++cycles_run_;
}

void Simulator::run() {
  for (std::size_t c = 0; c < config_.sim_cycles; ++c) run_sim_cycle();
}

}  // namespace p2prep::net
