// Node role assignment: which nodes are pretrusted, which collude, and the
// collusion edge set (paper Sec. V node model). Node ids here are 0-based;
// the paper's figures use 1-based ids (its "node 1" is our node 0) and the
// figure harnesses translate when printing.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rating/types.h"

namespace p2prep::net {

enum class NodeType : std::uint8_t { kNormal, kPretrusted, kColluder };

struct NodeRoles {
  std::vector<rating::NodeId> pretrusted;
  /// Designated colluders (for metrics such as "% of requests sent to
  /// colluders"); every node appearing in collusion_edges that is not
  /// pretrusted should be listed here.
  std::vector<rating::NodeId> colluders;
  /// Mutual collusion relationships: each edge's endpoints rate each other
  /// positively `collusion_ratings_per_query_cycle` times per query cycle.
  /// A node may appear in several edges (e.g. a compromised pretrusted node
  /// boosting a colluder that also has its own partner).
  std::vector<std::pair<rating::NodeId, rating::NodeId>> collusion_edges;

  /// One-directional boost relationships (Sybil-style): `first` rates
  /// `second` positively every query cycle but is never rated back —
  /// throwaway identities inflating a beneficiary. Evades the paper's
  /// mutual-frequency predicate (see DetectorConfig::require_mutual).
  std::vector<std::pair<rating::NodeId, rating::NodeId>> boost_edges;

  /// Traitors (TrustGuard's motivating behaviour): serve honestly until
  /// SimConfig::traitor_defect_cycle, then defect to
  /// SimConfig::traitor_good_prob_after.
  std::vector<rating::NodeId> traitors;

  [[nodiscard]] NodeType type_of(rating::NodeId id) const {
    for (rating::NodeId p : pretrusted)
      if (p == id) return NodeType::kPretrusted;
    for (rating::NodeId c : colluders)
      if (c == id) return NodeType::kColluder;
    return NodeType::kNormal;
  }

  [[nodiscard]] std::unordered_set<rating::NodeId> colluder_set() const {
    return {colluders.begin(), colluders.end()};
  }
};

/// The paper's standard evaluation cast: pretrusted nodes with (1-based)
/// ids 1..3 and `num_colluders` colluders with ids 4, 5, ... paired up
/// consecutively ((4,5), (6,7), ...). `num_colluders` must be even.
[[nodiscard]] NodeRoles paper_roles(std::size_t num_colluders = 8,
                                    std::size_t num_pretrusted = 3);

/// The Fig. 8 cast (our methods alone, no pretrusted nodes): colluders with
/// 1-based ids 1..8, paired consecutively.
[[nodiscard]] NodeRoles fig8_roles(std::size_t num_colluders = 8);

/// The Fig. 7 / Fig. 11 cast: paper_roles(8, 3) plus compromised pretrusted
/// nodes — pretrusted n1 colludes with colluder n4 and pretrusted n2 with
/// colluder n6 (1-based ids).
[[nodiscard]] NodeRoles compromised_roles();

/// Sybil attack cast (the paper's future-work threat): `num_targets`
/// beneficiaries, each boosted by `sybils_per_target` dedicated throwaway
/// identities. When `mutual` is true the ring rates back and forth (a
/// collusion collective the detectors catch); when false the boost is
/// one-directional (evades the mutual-frequency predicate unless
/// DetectorConfig::require_mutual is relaxed). Targets take the lowest
/// ids; sybils follow them.
[[nodiscard]] NodeRoles sybil_roles(std::size_t num_targets,
                                    std::size_t sybils_per_target,
                                    bool mutual,
                                    std::size_t num_pretrusted = 3);

/// Traitor cast: `num_traitors` nodes (lowest ids after the pretrusted)
/// that defect mid-run; no collusion edges at all.
[[nodiscard]] NodeRoles traitor_roles(std::size_t num_traitors,
                                      std::size_t num_pretrusted = 3);

}  // namespace p2prep::net
