#include "net/roles.h"

#include <cassert>

namespace p2prep::net {

namespace {
/// 1-based paper id -> 0-based NodeId.
constexpr rating::NodeId from_paper_id(std::size_t paper_id) {
  return static_cast<rating::NodeId>(paper_id - 1);
}
}  // namespace

NodeRoles paper_roles(std::size_t num_colluders, std::size_t num_pretrusted) {
  assert(num_colluders % 2 == 0);
  NodeRoles roles;
  for (std::size_t p = 1; p <= num_pretrusted; ++p)
    roles.pretrusted.push_back(from_paper_id(p));
  const std::size_t first = num_pretrusted + 1;  // paper id of colluder 1
  for (std::size_t c = 0; c < num_colluders; ++c)
    roles.colluders.push_back(from_paper_id(first + c));
  for (std::size_t c = 0; c < num_colluders; c += 2) {
    roles.collusion_edges.emplace_back(from_paper_id(first + c),
                                       from_paper_id(first + c + 1));
  }
  return roles;
}

NodeRoles fig8_roles(std::size_t num_colluders) {
  return paper_roles(num_colluders, 0);
}

NodeRoles sybil_roles(std::size_t num_targets, std::size_t sybils_per_target,
                      bool mutual, std::size_t num_pretrusted) {
  NodeRoles roles;
  for (std::size_t p = 1; p <= num_pretrusted; ++p)
    roles.pretrusted.push_back(from_paper_id(p));
  const std::size_t first_target = num_pretrusted + 1;  // paper id
  const std::size_t first_sybil = first_target + num_targets;
  for (std::size_t t = 0; t < num_targets; ++t) {
    const rating::NodeId target = from_paper_id(first_target + t);
    roles.colluders.push_back(target);
    for (std::size_t s = 0; s < sybils_per_target; ++s) {
      const rating::NodeId sybil =
          from_paper_id(first_sybil + t * sybils_per_target + s);
      roles.colluders.push_back(sybil);
      if (mutual) roles.collusion_edges.emplace_back(sybil, target);
      else roles.boost_edges.emplace_back(sybil, target);
    }
  }
  return roles;
}

NodeRoles traitor_roles(std::size_t num_traitors, std::size_t num_pretrusted) {
  NodeRoles roles;
  for (std::size_t p = 1; p <= num_pretrusted; ++p)
    roles.pretrusted.push_back(from_paper_id(p));
  for (std::size_t t = 0; t < num_traitors; ++t)
    roles.traitors.push_back(from_paper_id(num_pretrusted + 1 + t));
  return roles;
}

NodeRoles compromised_roles() {
  NodeRoles roles = paper_roles(8, 3);
  // Pretrusted n1 colludes with n4; pretrusted n2 with n6 (1-based ids).
  roles.collusion_edges.emplace_back(from_paper_id(1), from_paper_id(4));
  roles.collusion_edges.emplace_back(from_paper_id(2), from_paper_id(6));
  return roles;
}

}  // namespace p2prep::net
