// Multi-run experiment harness (paper: "Each experiment is run 5 times and
// the average of the results is the final result"). Builds a fresh engine,
// detector and simulator per run with a derived seed, runs it, and averages
// reputations, request shares, costs and detection quality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.h"
#include "net/config.h"
#include "net/roles.h"
#include "util/cost.h"

namespace p2prep::net {

enum class EngineKind {
  kWeighted,     ///< Paper Sec. V configuration (w_N = 0.2, w_P = 0.5).
  kEigenTrust,   ///< Full power-iteration EigenTrust.
  kSummation,    ///< eBay summation model.
  kPeerTrust,    ///< Credibility-weighted feedback (related work).
  kGossipTrust,  ///< Gossip-aggregated EigenTrust (related work).
  kTrustGuard,   ///< History + fluctuation penalty (related work).
};

enum class DetectorKind {
  kNone,       ///< Baseline: host reputation system only.
  kBasic,      ///< + Unoptimized collusion detection.
  kOptimized,  ///< + Optimized collusion detection.
};

[[nodiscard]] std::string to_string(EngineKind k);
[[nodiscard]] std::string to_string(DetectorKind k);

struct ExperimentSpec {
  SimConfig config{};
  NodeRoles roles{};
  EngineKind engine = EngineKind::kWeighted;
  DetectorKind detector = DetectorKind::kNone;
  /// Detector thresholds; high_rep_threshold doubles as the engine-side
  /// T_R. Defaults follow the paper (T_R = 0.05, T_N = 20).
  core::DetectorConfig detector_config{};
  std::size_t runs = 5;
};

struct ExperimentResult {
  std::size_t runs = 0;
  /// Final published reputation per node, averaged over runs.
  std::vector<double> avg_reputation;
  /// % of file requests routed to designated colluders (Fig. 12 metric).
  double avg_percent_to_colluders = 0.0;
  double avg_total_requests = 0.0;
  /// Mean per-run operation cost (Fig. 13 metric): reputation-engine cost
  /// and detector cost, in abstract work units.
  double avg_engine_cost = 0.0;
  double avg_detector_cost = 0.0;
  /// Detection quality against the ground-truth collusion edge set (the
  /// spec's ORIGINAL roles — under whitewashing, flagged replacement
  /// identities count as false positives here even though they are
  /// guilty; use Simulator::whitewash_count() to interpret such runs).
  double avg_recall = 0.0;           ///< Detected true colluders / true colluders.
  double avg_false_positives = 0.0;  ///< Flagged nodes outside the truth set.
  /// Detected-node indicator averaged over runs (1.0 = always detected).
  std::vector<double> detection_rate;
  /// Mean simulation cycles (1-based) until a true colluder was first
  /// flagged, averaged over all detections across runs; 0 when none.
  double avg_detection_latency = 0.0;
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec);

}  // namespace p2prep::net
