// Run metrics the evaluation figures are built from.
#pragma once

#include <cstdint>
#include <vector>

#include "rating/types.h"

namespace p2prep::net {

struct Metrics {
  /// File requests issued (every served query).
  std::uint64_t total_requests = 0;
  /// Requests whose selected server is a designated colluder (Fig. 12).
  std::uint64_t requests_to_colluders = 0;
  /// Authentic / inauthentic deliveries.
  std::uint64_t authentic_files = 0;
  std::uint64_t inauthentic_files = 0;
  /// Collusion ratings injected by colluding pairs.
  std::uint64_t collusion_ratings = 0;
  /// Queries skipped because no neighbor had capacity (or no neighbors).
  std::uint64_t unserved_queries = 0;
  /// Requests served per node, indexed by NodeId.
  std::vector<std::uint64_t> requests_served;

  [[nodiscard]] double percent_to_colluders() const noexcept {
    return total_requests == 0
               ? 0.0
               : 100.0 * static_cast<double>(requests_to_colluders) /
                     static_cast<double>(total_requests);
  }
};

}  // namespace p2prep::net
