#include "net/overlay.h"

#include <algorithm>
#include <cassert>

namespace p2prep::net {

InterestOverlay::InterestOverlay(const SimConfig& config, util::Rng& rng) {
  assert(config.valid());
  interests_of_.resize(config.num_nodes);
  clusters_.resize(config.num_interests);

  for (rating::NodeId id = 0; id < config.num_nodes; ++id) {
    const auto want = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_interests_per_node),
        static_cast<std::int64_t>(config.max_interests_per_node)));
    // Sample `want` distinct interests (partial Fisher-Yates over a small
    // scratch permutation keeps this exact and unbiased).
    std::vector<InterestId> all(config.num_interests);
    for (InterestId c = 0; c < config.num_interests; ++c) all[c] = c;
    for (std::size_t k = 0; k < want; ++k) {
      const auto pick =
          k + static_cast<std::size_t>(rng.next_below(all.size() - k));
      std::swap(all[k], all[pick]);
    }
    auto& mine = interests_of_[id];
    mine.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(want));
    std::sort(mine.begin(), mine.end());
    for (InterestId cat : mine) clusters_[cat].push_back(id);
  }
}

bool InterestOverlay::has_interest(rating::NodeId id, InterestId cat) const {
  const auto& mine = interests_of_.at(id);
  return std::binary_search(mine.begin(), mine.end(), cat);
}

}  // namespace p2prep::net
