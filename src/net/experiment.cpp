#include "net/experiment.h"

#include <memory>
#include <unordered_set>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/eigentrust.h"
#include "reputation/gossiptrust.h"
#include "reputation/peertrust.h"
#include "reputation/summation.h"
#include "reputation/trustguard.h"
#include "reputation/weighted.h"
#include "util/rng.h"

namespace p2prep::net {

std::string to_string(EngineKind k) {
  switch (k) {
    case EngineKind::kWeighted: return "WeightedEigenTrust";
    case EngineKind::kEigenTrust: return "EigenTrust";
    case EngineKind::kSummation: return "Summation";
    case EngineKind::kPeerTrust: return "PeerTrust";
    case EngineKind::kGossipTrust: return "GossipTrust";
    case EngineKind::kTrustGuard: return "TrustGuard";
  }
  return "?";
}

std::string to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kNone: return "None";
    case DetectorKind::kBasic: return "Unoptimized";
    case DetectorKind::kOptimized: return "Optimized";
  }
  return "?";
}

namespace {

std::unique_ptr<reputation::ReputationEngine> make_engine(EngineKind kind,
                                                          std::size_t n) {
  switch (kind) {
    case EngineKind::kWeighted:
      return std::make_unique<reputation::WeightedFeedbackEngine>(n);
    case EngineKind::kEigenTrust:
      return std::make_unique<reputation::EigenTrustEngine>(n);
    case EngineKind::kSummation:
      return std::make_unique<reputation::SummationEngine>(n);
    case EngineKind::kPeerTrust:
      return std::make_unique<reputation::PeerTrustEngine>(n);
    case EngineKind::kGossipTrust:
      return std::make_unique<reputation::GossipTrustEngine>(n);
    case EngineKind::kTrustGuard:
      return std::make_unique<reputation::TrustGuardEngine>(n);
  }
  return nullptr;
}

std::unique_ptr<core::CollusionDetector> make_detector(
    DetectorKind kind, const core::DetectorConfig& config) {
  switch (kind) {
    case DetectorKind::kNone:
      return nullptr;
    case DetectorKind::kBasic:
      return std::make_unique<core::BasicCollusionDetector>(config);
    case DetectorKind::kOptimized:
      return std::make_unique<core::OptimizedCollusionDetector>(config);
  }
  return nullptr;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  ExperimentResult result;
  result.runs = spec.runs;
  const std::size_t n = spec.config.num_nodes;
  result.avg_reputation.assign(n, 0.0);
  result.detection_rate.assign(n, 0.0);

  // Ground truth: every endpoint of a collusion edge.
  std::unordered_set<rating::NodeId> truth;
  for (const auto& [u, v] : spec.roles.collusion_edges) {
    truth.insert(u);
    truth.insert(v);
  }

  std::size_t latency_samples = 0;
  for (std::size_t run = 0; run < spec.runs; ++run) {
    SimConfig config = spec.config;
    config.seed = util::mix64(spec.config.seed + 0x9e3779b9ULL * (run + 1));

    auto engine = make_engine(spec.engine, n);
    auto detector = make_detector(spec.detector, spec.detector_config);
    Simulator sim(config, spec.roles, *engine, detector.get());
    sim.run();

    for (std::size_t i = 0; i < n; ++i)
      result.avg_reputation[i] += engine->reputation(
          static_cast<rating::NodeId>(i));
    result.avg_percent_to_colluders += sim.metrics().percent_to_colluders();
    result.avg_total_requests +=
        static_cast<double>(sim.metrics().total_requests);
    result.avg_engine_cost += static_cast<double>(engine->cost().total());
    result.avg_detector_cost +=
        static_cast<double>(sim.detection_cost().total());

    const auto& detected = sim.manager().detected();
    std::size_t hit = 0;
    std::size_t fp = 0;
    for (rating::NodeId id : detected) {
      if (truth.contains(id)) ++hit;
      else ++fp;
    }
    if (!truth.empty())
      result.avg_recall +=
          static_cast<double>(hit) / static_cast<double>(truth.size());
    result.avg_false_positives += static_cast<double>(fp);
    for (rating::NodeId id : detected) result.detection_rate[id] += 1.0;
    for (const auto& [id, cycle] : sim.first_detected_cycle()) {
      if (truth.contains(id)) {
        result.avg_detection_latency += static_cast<double>(cycle + 1);
        ++latency_samples;
      }
    }
  }

  const auto runs = static_cast<double>(spec.runs);
  for (auto& r : result.avg_reputation) r /= runs;
  for (auto& r : result.detection_rate) r /= runs;
  result.avg_percent_to_colluders /= runs;
  result.avg_total_requests /= runs;
  result.avg_engine_cost /= runs;
  result.avg_detector_cost /= runs;
  result.avg_recall /= runs;
  result.avg_false_positives /= runs;
  if (latency_samples > 0)
    result.avg_detection_latency /= static_cast<double>(latency_samples);
  return result;
}

}  // namespace p2prep::net
