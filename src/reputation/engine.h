// ReputationEngine: the host-reputation-system abstraction the collusion
// detectors plug into (paper: "our proposed methods can be built on any
// reputation system").
//
// Lifecycle: ratings stream in via ingest(); once per simulation cycle the
// caller invokes update_epoch(), after which reputations() reflects the new
// global values. suppress(node) is the detection action the paper applies
// ("after the methods detect the colluders, they set their reputations to
// 0") — it pins a node's published reputation to zero across future epochs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "rating/types.h"
#include "util/cost.h"

namespace p2prep::reputation {

class ReputationEngine {
 public:
  virtual ~ReputationEngine() = default;

  /// Human-readable engine name for reports.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Grows to `n` nodes (never shrinks).
  virtual void resize(std::size_t n) = 0;
  [[nodiscard]] virtual std::size_t num_nodes() const noexcept = 0;

  /// Feeds one rating event into the engine's aggregates.
  virtual void ingest(const rating::Rating& r) = 0;

  /// Recomputes global reputations from the aggregates. Charges the
  /// engine's cost counter with the work performed.
  virtual void update_epoch() = 0;

  /// Published global reputation of node i (valid after update_epoch()).
  [[nodiscard]] virtual double reputation(rating::NodeId i) const = 0;
  [[nodiscard]] virtual std::span<const double> reputations() const = 0;

  /// Reputation view the collusion detectors filter on (the paper's T_R
  /// is an absolute threshold, e.g. 0.05). Defaults to the published
  /// value; engines that normalize their published values for display
  /// (so that thresholds would dilute as the population grows) override
  /// this to expose the raw accumulated score. Suppressed nodes report 0.
  [[nodiscard]] virtual double detection_reputation(rating::NodeId i) const {
    return is_suppressed(i) ? 0.0 : reputation(i);
  }

  /// Marks the set of pretrusted nodes. Engines that have no notion of
  /// pretrust may ignore this; the default stores the set for subclasses.
  virtual void set_pretrusted(std::vector<rating::NodeId> nodes) {
    pretrusted_.clear();
    pretrusted_.insert(nodes.begin(), nodes.end());
  }
  [[nodiscard]] bool is_pretrusted(rating::NodeId i) const {
    return pretrusted_.contains(i);
  }
  [[nodiscard]] std::size_t pretrusted_count() const noexcept {
    return pretrusted_.size();
  }

  /// Detection action, paper semantics: zeroes node i's accumulated
  /// reputation *now* but lets future ratings accumulate again (so a
  /// still-colluding node is re-detected and re-zeroed every period —
  /// the dynamic behind Fig. 13's cost growth). Engines override to clear
  /// their accumulators.
  virtual void reset_reputation(rating::NodeId i) { (void)i; }

  /// Detection action, permanent variant: pins node i's published
  /// reputation to 0 from now on.
  virtual void suppress(rating::NodeId i) { suppressed_.insert(i); }
  /// Undoes suppress() for node i (shard handoff: the suppression moves
  /// with the node to its new owner's engine).
  void unsuppress(rating::NodeId i) { suppressed_.erase(i); }
  [[nodiscard]] bool is_suppressed(rating::NodeId i) const {
    return suppressed_.contains(i);
  }
  [[nodiscard]] std::size_t suppressed_count() const noexcept {
    return suppressed_.size();
  }

  /// Cumulative computation cost of all update_epoch() calls.
  [[nodiscard]] const util::CostCounter& cost() const noexcept { return cost_; }
  void reset_cost() noexcept { cost_ = {}; }

  // --- Checkpoint support (service layer) ---

  /// Serializes the engine's accumulated state (not the suppressed set —
  /// the caller owns that) to `out`. Returns false when the engine does
  /// not support checkpointing; callers then fall back to WAL-only
  /// recovery. The default supports nothing.
  virtual bool save_state(std::ostream& out) const {
    (void)out;
    return false;
  }
  /// Restores state written by save_state() of the same engine type.
  /// Returns false on unsupported / malformed input.
  virtual bool load_state(std::istream& in) {
    (void)in;
    return false;
  }

  /// Read/restore access to the suppressed set for checkpointing.
  [[nodiscard]] const std::unordered_set<rating::NodeId>& suppressed_set()
      const noexcept {
    return suppressed_;
  }
  void restore_suppressed(const std::vector<rating::NodeId>& nodes) {
    for (rating::NodeId i : nodes) suppress(i);
  }

 protected:
  util::CostCounter cost_;
  std::unordered_set<rating::NodeId> pretrusted_;
  std::unordered_set<rating::NodeId> suppressed_;
};

}  // namespace p2prep::reputation
