// eBay-style summation reputation (paper Sec. IV-A): a node's reputation is
// the sum of all its received -1/0/+1 ratings. Published either raw or
// normalized to [0, 1] across nodes (raw negative sums clamp to 0 before
// normalization so the published vector is a distribution, comparable with
// EigenTrust's output scale and the paper's T_R = 0.05 threshold).
#pragma once

#include <vector>

#include "reputation/engine.h"

namespace p2prep::reputation {

class SummationEngine final : public ReputationEngine {
 public:
  /// If `normalize` is true (default), published reputations are
  /// max(sum,0)/Σ max(sum,0); otherwise the raw sums are published.
  explicit SummationEngine(std::size_t n = 0, bool normalize = true);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Summation";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return sums_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return published_;
  }

  /// Raw lifetime sum N+_i - N-_i (always available, even when normalizing).
  [[nodiscard]] std::int64_t raw_sum(rating::NodeId i) const {
    return sums_.at(i);
  }

  /// T_R filters on the raw sum (see WeightedFeedbackEngine).
  [[nodiscard]] double detection_reputation(rating::NodeId i) const override {
    return is_suppressed(i) ? 0.0 : static_cast<double>(sums_.at(i));
  }

  void reset_reputation(rating::NodeId i) override {
    if (i < sums_.size()) {
      sums_[i] = 0;
      published_[i] = 0.0;
    }
  }

  /// Shard handoff: extracts node i's raw sum (zeroing it here) so the
  /// receiving shard's engine can restore_raw_sum() it. The published
  /// view refreshes at the next update_epoch().
  [[nodiscard]] std::int64_t take_raw_sum(rating::NodeId i) {
    const std::int64_t sum = sums_.at(i);
    sums_[i] = 0;
    published_[i] = 0.0;
    return sum;
  }
  /// Installs a raw sum moved from another shard's engine. The target
  /// must not be accumulating for node i (its sum is overwritten).
  void restore_raw_sum(rating::NodeId i, std::int64_t sum) {
    sums_.at(i) = sum;
    published_[i] = normalize_ ? 0.0 : static_cast<double>(sum);
  }

  /// Checkpointing: writes node count + raw sums; load recomputes the
  /// published view so reputations() is valid immediately after.
  bool save_state(std::ostream& out) const override;
  bool load_state(std::istream& in) override;

 private:
  std::vector<std::int64_t> sums_;
  std::vector<double> published_;
  bool normalize_;
};

}  // namespace p2prep::reputation
