// Full EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW'03): global trust
// is the stationary vector of the normalized local-trust matrix, computed
// by power iteration with a pretrusted restart distribution —
//
//   t^(k+1) = (1 - alpha) * C^T t^(k) + alpha * p
//
// where c_ij = max(s_ij, 0) / sum_k max(s_ik, 0), s_ij is node i's
// experience with node j (sum of its -1/0/+1 ratings of j), and p is
// uniform over the pretrusted set (uniform over all nodes if none).
//
// This is the "recursive matrix calculation" whose cost Figure 13 of the
// reproduced paper charges to EigenTrust: the per-epoch cost counter grows
// by ~n^2 multiply-adds per iteration and is independent of the number of
// colluders. The mat-vec optionally runs on a util::ThreadPool.
#pragma once

#include <vector>

#include "reputation/engine.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace p2prep::reputation {

struct EigenTrustConfig {
  /// Restart probability toward the pretrusted distribution (the paper's
  /// EigenTrust "a"); typical values 0.1-0.2.
  double alpha = 0.15;
  /// L1 convergence tolerance of the power iteration.
  double epsilon = 1e-9;
  /// Hard iteration cap (the matrix "normally converges within several
  /// iterations" — this is a safety bound).
  std::size_t max_iterations = 200;
};

class EigenTrustEngine final : public ReputationEngine {
 public:
  explicit EigenTrustEngine(std::size_t n = 0, EigenTrustConfig config = {},
                            util::ThreadPool* pool = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "EigenTrust";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return trust_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return trust_;
  }

  /// Local experience s_ij (sum of i's ratings of j).
  [[nodiscard]] std::int64_t local_experience(rating::NodeId i,
                                              rating::NodeId j) const {
    return local_(i, j);
  }

  /// Zeroes the published trust immediately. EigenTrust recomputes trust
  /// from the (unchanged) local-experience matrix at the next epoch, so a
  /// reset here lasts until then; permanent removal needs suppress().
  void reset_reputation(rating::NodeId i) override {
    if (i < trust_.size()) trust_[i] = 0.0;
  }

  /// Iterations the last update_epoch() took to converge.
  [[nodiscard]] std::size_t last_iterations() const noexcept {
    return last_iterations_;
  }

  [[nodiscard]] const EigenTrustConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Row-normalizes local experience into the column-stochastic-by-row
  /// matrix C; rows with no positive experience fall back to p.
  void normalize_local(std::vector<double>& c) const;

  EigenTrustConfig config_;
  util::ThreadPool* pool_;  // optional, not owned
  util::Matrix<std::int64_t> local_;
  std::vector<double> trust_;
  std::size_t last_iterations_ = 0;
};

}  // namespace p2prep::reputation
