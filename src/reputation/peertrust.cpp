#include "reputation/peertrust.h"

#include <algorithm>
#include <cmath>

namespace p2prep::reputation {

PeerTrustEngine::PeerTrustEngine(std::size_t n, PeerTrustConfig config)
    : config_(config) {
  resize(n);
}

void PeerTrustEngine::resize(std::size_t n) {
  if (n <= trust_.size()) return;
  received_.resize(n);
  totals_.resize(n);
  trust_.resize(n, config_.prior);
  credibility_.resize(n, 1.0);
}

void PeerTrustEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= trust_.size() || r.rater >= trust_.size())
    resize(std::max(r.ratee, r.rater) + 1);
  received_[r.ratee][r.rater].add(r.score);
  totals_[r.ratee].add(r.score);
  cost_.add_arith();
}

void PeerTrustEngine::update_epoch() {
  const std::size_t n = trust_.size();

  // Consensus positive fraction per ratee.
  std::vector<double> consensus(n, 0.0);
  for (std::size_t u = 0; u < n; ++u)
    consensus[u] = totals_[u].positive_fraction();
  cost_.add_arith(n);

  // Credibility: 1 - RMS deviation of each rater's opinions from the
  // consensus about the nodes it rated.
  std::vector<double> sq_dev(n, 0.0);
  std::vector<std::uint32_t> rated(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& [rater, stats] : received_[u]) {
      const double diff = stats.positive_fraction() - consensus[u];
      sq_dev[rater] += diff * diff;
      ++rated[rater];
      cost_.add_arith();
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    credibility_[v] =
        rated[v] == 0
            ? 1.0
            : std::max(config_.min_credibility,
                       1.0 - std::sqrt(sq_dev[v] /
                                       static_cast<double>(rated[v])));
  }
  cost_.add_arith(n);

  // Trust: credibility-weighted positive fractions.
  for (std::size_t u = 0; u < n; ++u) {
    double weighted = 0.0;
    double weight = 0.0;
    for (const auto& [rater, stats] : received_[u]) {
      weighted += stats.positive_fraction() * credibility_[rater];
      weight += credibility_[rater];
      cost_.add_arith(2);
    }
    trust_[u] = weight == 0.0 ? config_.prior : weighted / weight;
  }

  for (rating::NodeId i : suppressed_) {
    if (i < trust_.size()) trust_[i] = 0.0;
  }
}

double PeerTrustEngine::reputation(rating::NodeId i) const {
  return trust_.at(i);
}

void PeerTrustEngine::reset_reputation(rating::NodeId i) {
  if (i >= trust_.size()) return;
  received_[i].clear();
  totals_[i] = rating::PairStats{};
  trust_[i] = 0.0;
}

}  // namespace p2prep::reputation
