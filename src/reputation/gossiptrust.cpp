#include "reputation/gossiptrust.h"

#include <algorithm>
#include <cassert>

namespace p2prep::reputation {

GossipTrustEngine::GossipTrustEngine(std::size_t n, GossipTrustConfig config)
    : config_(config), rng_(config.seed) {
  resize(n);
}

void GossipTrustEngine::resize(std::size_t n) {
  if (n <= trust_.size()) return;
  local_.resize(n, n);
  const double uniform = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  trust_.assign(n, uniform);
}

void GossipTrustEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= trust_.size() || r.rater >= trust_.size())
    resize(std::max(r.ratee, r.rater) + 1);
  local_(r.rater, r.ratee) += rating::score_value(r.score);
  cost_.add_arith();
}

double GossipTrustEngine::push_sum_average(std::vector<double> values) {
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  std::vector<double> weights(n, 1.0);
  for (std::size_t round = 0; round < config_.gossip_rounds; ++round) {
    // Synchronous push-sum: every node pushes half its (value, weight) to
    // one uniformly random peer; deliveries are accumulated then applied.
    std::vector<double> value_in(n, 0.0);
    std::vector<double> weight_in(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      auto peer = static_cast<std::size_t>(rng_.next_below(n));
      if (peer == i) peer = (peer + 1) % n;
      values[i] *= 0.5;
      weights[i] *= 0.5;
      value_in[peer] += values[i];
      weight_in[peer] += weights[i];
      ++gossip_messages_;
      cost_.add_message();
    }
    for (std::size_t i = 0; i < n; ++i) {
      values[i] += value_in[i];
      weights[i] += weight_in[i];
    }
    cost_.add_arith(2 * n);
  }
  // Mass conservation: sum(values)/sum(weights) is exact; individual
  // nodes' estimates carry the residual error of finite rounds. Report
  // node 0's estimate, as a real deployment would use a node-local value.
  return weights[0] > 0.0 ? values[0] / weights[0] : 0.0;
}

void GossipTrustEngine::update_epoch() {
  const std::size_t n = trust_.size();
  if (n == 0) return;

  // Restart distribution.
  std::vector<double> p(n, 0.0);
  if (!pretrusted_.empty()) {
    const double share = 1.0 / static_cast<double>(pretrusted_.size());
    for (rating::NodeId i : pretrusted_)
      if (i < n) p[i] = share;
  } else {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
  }

  // Row-normalized local trust.
  std::vector<double> c(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      row_sum += static_cast<double>(
          std::max<std::int64_t>(local_(i, j), 0));
    for (std::size_t j = 0; j < n; ++j) {
      c[i * n + j] =
          row_sum > 0.0 ? static_cast<double>(std::max<std::int64_t>(
                              local_(i, j), 0)) /
                              row_sum
                        : p[j];
    }
  }
  cost_.add_arith(2 * n * n);

  std::vector<double> t = p;
  std::vector<double> next(n);
  std::vector<double> scratch(n);
  for (std::size_t iter = 0; iter < config_.power_iterations; ++iter) {
    for (std::size_t j = 0; j < n; ++j) {
      // t'_j = n * avg_i(c_ij * t_i), the average computed by gossip.
      for (std::size_t i = 0; i < n; ++i) scratch[i] = c[i * n + j] * t[i];
      cost_.add_arith(n);
      const double avg = push_sum_average(scratch);
      next[j] = (1.0 - config_.alpha) * avg * static_cast<double>(n) +
                config_.alpha * p[j];
    }
    t = next;
  }

  // Gossip noise can leave tiny negatives / drift; publish a clean
  // distribution.
  double sum = 0.0;
  for (auto& x : t) {
    x = std::max(0.0, x);
    sum += x;
  }
  if (sum > 0.0) {
    for (auto& x : t) x /= sum;
  }
  cost_.add_arith(2 * n);

  trust_ = std::move(t);
  for (rating::NodeId i : suppressed_) {
    if (i < trust_.size()) trust_[i] = 0.0;
  }
}

double GossipTrustEngine::reputation(rating::NodeId i) const {
  return trust_.at(i);
}

}  // namespace p2prep::reputation
