// Amazon-style ratio reputation (paper Sec. III): a seller's reputation is
// the number of positive ratings divided by the count of all (non-neutral)
// ratings, in [0, 1]. Used by the trace-analysis layer to reproduce the
// Figure 1 seller-reputation bands.
#pragma once

#include <vector>

#include "rating/pair_stats.h"
#include "reputation/engine.h"

namespace p2prep::reputation {

class RatioEngine final : public ReputationEngine {
 public:
  explicit RatioEngine(std::size_t n = 0);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "Ratio";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return agg_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return published_;
  }

  [[nodiscard]] const rating::PairStats& aggregate(rating::NodeId i) const {
    return agg_.at(i);
  }

  /// Reputation of nodes with no ratings yet (default 0.5, "unknown").
  void set_prior(double prior) noexcept { prior_ = prior; }

  void reset_reputation(rating::NodeId i) override {
    if (i < agg_.size()) {
      agg_[i] = rating::PairStats{};
      published_[i] = 0.0;
    }
  }

 private:
  std::vector<rating::PairStats> agg_;
  std::vector<double> published_;
  double prior_ = 0.5;
};

}  // namespace p2prep::reputation
