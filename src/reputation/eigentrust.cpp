#include "reputation/eigentrust.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p2prep::reputation {

EigenTrustEngine::EigenTrustEngine(std::size_t n, EigenTrustConfig config,
                                   util::ThreadPool* pool)
    : config_(config), pool_(pool) {
  resize(n);
}

void EigenTrustEngine::resize(std::size_t n) {
  if (n <= trust_.size()) return;
  local_.resize(n, n);
  const double uniform = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  trust_.assign(n, uniform);
}

void EigenTrustEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= trust_.size() || r.rater >= trust_.size())
    resize(std::max(r.ratee, r.rater) + 1);
  // s_ij: rater i's accumulated experience with ratee j.
  local_(r.rater, r.ratee) += rating::score_value(r.score);
  cost_.add_arith();
}

void EigenTrustEngine::normalize_local(std::vector<double>& c) const {
  const std::size_t n = trust_.size();
  // Pretrusted restart distribution p.
  std::vector<double> p(n, 0.0);
  if (!pretrusted_.empty()) {
    const double share = 1.0 / static_cast<double>(pretrusted_.size());
    for (rating::NodeId i : pretrusted_)
      if (i < n) p[i] = share;
  } else if (n > 0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
  }

  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    const auto row = local_.row(i);
    for (std::size_t j = 0; j < n; ++j)
      row_sum += static_cast<double>(std::max<std::int64_t>(row[j], 0));
    if (row_sum > 0.0) {
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] =
            static_cast<double>(std::max<std::int64_t>(row[j], 0)) / row_sum;
    } else {
      // No positive experience: trust the pretrusted distribution.
      for (std::size_t j = 0; j < n; ++j) c[i * n + j] = p[j];
    }
  }
}

void EigenTrustEngine::update_epoch() {
  const std::size_t n = trust_.size();
  if (n == 0) return;

  std::vector<double> c(n * n);
  normalize_local(c);
  cost_.add_arith(2 * n * n);  // row-sum + divide passes

  std::vector<double> p(n, 0.0);
  if (!pretrusted_.empty()) {
    const double share = 1.0 / static_cast<double>(pretrusted_.size());
    for (rating::NodeId i : pretrusted_)
      if (i < n) p[i] = share;
  } else {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
  }

  std::vector<double> t = p;  // standard EigenTrust initialization
  std::vector<double> next(n, 0.0);

  std::size_t iter = 0;
  for (; iter < config_.max_iterations; ++iter) {
    // next = (1 - alpha) * C^T t + alpha * p
    auto column_chunk = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) acc += c[i * n + j] * t[i];
        next[j] = (1.0 - config_.alpha) * acc + config_.alpha * p[j];
      }
    };
    if (pool_ != nullptr && n >= 64) {
      pool_->parallel_for_chunked(0, n, column_chunk);
    } else {
      column_chunk(0, n);
    }
    cost_.add_arith(n * n);

    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) delta += std::abs(next[j] - t[j]);
    cost_.add_arith(n);
    t.swap(next);
    if (delta < config_.epsilon) {
      ++iter;
      break;
    }
  }
  last_iterations_ = iter;

  trust_ = std::move(t);
  for (rating::NodeId i : suppressed_) {
    if (i < trust_.size()) trust_[i] = 0.0;
  }
}

double EigenTrustEngine::reputation(rating::NodeId i) const {
  return trust_.at(i);
}

}  // namespace p2prep::reputation
