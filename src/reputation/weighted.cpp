#include "reputation/weighted.h"

#include <algorithm>

namespace p2prep::reputation {

WeightedFeedbackEngine::WeightedFeedbackEngine(std::size_t n,
                                               WeightedFeedbackConfig config)
    : config_(config) {
  resize(n);
}

void WeightedFeedbackEngine::resize(std::size_t n) {
  if (n <= raw_.size()) return;
  raw_.resize(n, 0.0);
  published_.resize(n, 0.0);
}

void WeightedFeedbackEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= raw_.size() || r.rater >= raw_.size())
    resize(std::max(r.ratee, r.rater) + 1);
  const double w = is_pretrusted(r.rater) ? config_.pretrusted_weight
                                          : config_.normal_weight;
  raw_[r.ratee] += w * rating::score_value(r.score);
  cost_.add_arith(2);
}

void WeightedFeedbackEngine::update_epoch() {
  const std::size_t n = raw_.size();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    published_[i] = std::max(0.0, raw_[i]);
    total += published_[i];
  }
  cost_.add_arith(2 * n);
  if (total > 0.0) {
    for (auto& p : published_) p /= total;
    cost_.add_arith(n);
  }
  for (rating::NodeId i : suppressed_) {
    if (i < published_.size()) published_[i] = 0.0;
  }
}

double WeightedFeedbackEngine::reputation(rating::NodeId i) const {
  return published_.at(i);
}

}  // namespace p2prep::reputation
