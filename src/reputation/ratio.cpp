#include "reputation/ratio.h"

namespace p2prep::reputation {

RatioEngine::RatioEngine(std::size_t n) { resize(n); }

void RatioEngine::resize(std::size_t n) {
  if (n <= agg_.size()) return;
  agg_.resize(n);
  published_.resize(n, prior_);
}

void RatioEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= agg_.size()) resize(r.ratee + 1);
  agg_[r.ratee].add(r.score);
  cost_.add_arith();
}

void RatioEngine::update_epoch() {
  for (std::size_t i = 0; i < agg_.size(); ++i) {
    // Amazon counts positives over positives+negatives; neutral ratings do
    // not move the ratio.
    const auto signed_total = agg_[i].positive + agg_[i].negative;
    published_[i] = signed_total == 0
                        ? prior_
                        : static_cast<double>(agg_[i].positive) /
                              static_cast<double>(signed_total);
  }
  cost_.add_arith(agg_.size());
  for (rating::NodeId i : suppressed_) {
    if (i < published_.size()) published_[i] = 0.0;
  }
}

double RatioEngine::reputation(rating::NodeId i) const {
  return published_.at(i);
}

}  // namespace p2prep::reputation
