// PeerTrust-inspired engine (Xiong & Liu, TKDE'04 — paper Sec. II related
// work): a node's trust is the credibility-weighted average of the
// feedback it received, where a rater's credibility derives from how well
// its opinions agree with the community consensus (the "personalized
// similarity measure" PSM, collapsed to the global consensus for a single
// manager).
//
//   T(u)  = sum_v a(v->u) * Cr(v) / sum_v Cr(v)
//   Cr(v) = 1 - RMS_{w rated by v} ( a(v->w) - consensus(w) )
//
// with a(v->u) the positive fraction of v's ratings for u and
// consensus(w) the all-raters positive fraction for w. Colluders rating
// each other 100% positive while the community rates them negatively get
// low credibility, damping (though not eliminating) collusion — which is
// why the paper classifies credibility weighting as mitigation, not
// detection. Included as a second baseline beside EigenTrust.
#pragma once

#include <unordered_map>
#include <vector>

#include "rating/pair_stats.h"
#include "reputation/engine.h"

namespace p2prep::reputation {

struct PeerTrustConfig {
  /// Trust assigned to nodes nobody rated yet.
  double prior = 0.0;
  /// Floor for credibility so a disagreeing rater is damped, not erased.
  double min_credibility = 0.05;
};

class PeerTrustEngine final : public ReputationEngine {
 public:
  explicit PeerTrustEngine(std::size_t n = 0, PeerTrustConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "PeerTrust";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return trust_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return trust_;
  }

  /// Credibility of rater v after the last epoch (1 = fully consensual).
  [[nodiscard]] double credibility(rating::NodeId v) const {
    return credibility_.at(v);
  }

  void reset_reputation(rating::NodeId i) override;

 private:
  PeerTrustConfig config_;
  /// received_[u]: rater -> aggregate of ratings for u.
  std::vector<std::unordered_map<rating::NodeId, rating::PairStats>> received_;
  std::vector<rating::PairStats> totals_;  // consensus inputs per ratee
  std::vector<double> trust_;
  std::vector<double> credibility_;
};

}  // namespace p2prep::reputation
