// GossipTrust-inspired engine (Zhou & Hwang, TKDE'07 — paper Sec. II
// related work): EigenTrust's stationary trust vector computed without a
// central aggregator, by gossip. Each power-iteration step's mat-vec
//
//   t'_j = sum_i c_ij * t_i
//
// is evaluated as n times the network average of { c_ij * t_i } via
// push-sum gossip (Kempe et al.): every node holds a (value, weight) pair
// per component, and in each round sends half of both to a random peer;
// value/weight converges to the true average at every node. The engine
// simulates the gossip rounds faithfully — including the residual error a
// finite round count leaves — and counts gossip messages in its cost,
// which is what distinguishes it from the centrally-computed
// EigenTrustEngine it converges to.
#pragma once

#include <vector>

#include "reputation/engine.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace p2prep::reputation {

struct GossipTrustConfig {
  double alpha = 0.15;            ///< Pretrusted restart probability.
  std::size_t power_iterations = 15;
  /// Push-sum rounds per power iteration. O(log n + log 1/eps) suffices;
  /// fewer rounds leave visible approximation error (tested).
  std::size_t gossip_rounds = 24;
  std::uint64_t seed = 0x676f73736970ULL;  ///< Gossip partner selection.
};

class GossipTrustEngine final : public ReputationEngine {
 public:
  explicit GossipTrustEngine(std::size_t n = 0, GossipTrustConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "GossipTrust";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return trust_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return trust_;
  }

  /// Gossip messages exchanged across all epochs.
  [[nodiscard]] std::uint64_t gossip_messages() const noexcept {
    return gossip_messages_;
  }

  [[nodiscard]] const GossipTrustConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Push-sum average of `values`; returns the (per-node identical up to
  /// residual error) estimate at node 0 after the configured rounds.
  [[nodiscard]] double push_sum_average(std::vector<double> values);

  GossipTrustConfig config_;
  util::Rng rng_;
  util::Matrix<std::int64_t> local_;
  std::vector<double> trust_;
  std::uint64_t gossip_messages_ = 0;
};

}  // namespace p2prep::reputation
