// TrustGuard-inspired engine (Srivatsa, Xiong, Liu, WWW'05 — paper Sec. II
// related work): trustworthiness estimated from the node's reputation
// *history* and penalized for behavioural fluctuation, which blunts the
// classic oscillation attack (build reputation honestly, then milk it —
// the "traitor" behaviour NodeRoles::traitors simulates).
//
//   R(t) = w_cur * r(t) + w_hist * avg(r(t-1..t-H)) - w_fluct * sigma(r)
//
// where r(t) is the window's positive fraction, the history average spans
// the last H windows, and sigma is their standard deviation. A traitor's
// defection drags r(t) down immediately and the fluctuation penalty keeps
// the historical average from shielding it.
#pragma once

#include <deque>
#include <vector>

#include "rating/pair_stats.h"
#include "reputation/engine.h"

namespace p2prep::reputation {

struct TrustGuardConfig {
  double current_weight = 0.5;      ///< w_cur.
  double history_weight = 0.5;      ///< w_hist.
  double fluctuation_weight = 0.5;  ///< w_fluct (penalty scale).
  std::size_t history_windows = 8;  ///< H.
  /// Score for nodes with no ratings in any window ("unknown").
  double prior = 0.0;
};

class TrustGuardEngine final : public ReputationEngine {
 public:
  explicit TrustGuardEngine(std::size_t n = 0, TrustGuardConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "TrustGuard";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return trust_.size();
  }
  void ingest(const rating::Rating& r) override;
  /// Closes the current window: pushes its positive fraction into the
  /// history ring and recomputes R(t).
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return trust_;
  }

  /// The last closed window's positive fraction for node i.
  [[nodiscard]] double last_window_score(rating::NodeId i) const;
  /// Number of closed windows recorded for node i (capped at H).
  [[nodiscard]] std::size_t history_depth(rating::NodeId i) const {
    return history_.at(i).size();
  }

  void reset_reputation(rating::NodeId i) override;

  [[nodiscard]] const TrustGuardConfig& config() const noexcept {
    return config_;
  }

 private:
  TrustGuardConfig config_;
  std::vector<rating::PairStats> window_;       // current window aggregates
  std::vector<std::deque<double>> history_;     // closed window scores
  std::vector<bool> ever_rated_;
  std::vector<double> trust_;
};

}  // namespace p2prep::reputation
