// The weighted-feedback EigenTrust variant the paper's evaluation actually
// configures (Sec. V): R_i = sum_j w_N * r_(j->i) + sum_p w_P * r_(p->i),
// with w_N = 0.2 for normal raters and w_P = 0.5 for pretrusted raters
// ("the honey spot parameters of the system"). Raw weighted sums accumulate
// over the whole run; published reputations are the raw sums clamped at 0
// and normalized to a distribution, which is the scale on which the paper's
// reputation threshold T_R = 0.05 and the Figure 5-11 bar charts live.
#pragma once

#include <vector>

#include "reputation/engine.h"

namespace p2prep::reputation {

struct WeightedFeedbackConfig {
  double normal_weight = 0.2;     ///< w_N.
  double pretrusted_weight = 0.5; ///< w_P.
};

class WeightedFeedbackEngine final : public ReputationEngine {
 public:
  explicit WeightedFeedbackEngine(std::size_t n = 0,
                                  WeightedFeedbackConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "WeightedEigenTrust";
  }
  void resize(std::size_t n) override;
  [[nodiscard]] std::size_t num_nodes() const noexcept override {
    return raw_.size();
  }
  void ingest(const rating::Rating& r) override;
  void update_epoch() override;
  [[nodiscard]] double reputation(rating::NodeId i) const override;
  [[nodiscard]] std::span<const double> reputations() const override {
    return published_;
  }

  /// Raw (unnormalized, possibly negative) weighted feedback sum.
  [[nodiscard]] double raw(rating::NodeId i) const { return raw_.at(i); }

  /// T_R filters on the raw weighted sum (published values are normalized
  /// to a distribution for display, which would dilute an absolute
  /// threshold as the population grows).
  [[nodiscard]] double detection_reputation(rating::NodeId i) const override {
    return is_suppressed(i) ? 0.0 : raw_.at(i);
  }

  void reset_reputation(rating::NodeId i) override {
    if (i < raw_.size()) {
      raw_[i] = 0.0;
      published_[i] = 0.0;
    }
  }

  [[nodiscard]] const WeightedFeedbackConfig& config() const noexcept {
    return config_;
  }

 private:
  WeightedFeedbackConfig config_;
  std::vector<double> raw_;
  std::vector<double> published_;
};

}  // namespace p2prep::reputation
