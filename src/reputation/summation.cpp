#include "reputation/summation.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <istream>
#include <ostream>

namespace p2prep::reputation {

namespace {

// Explicit little-endian framing so checkpoints are host-order
// independent (same convention as the service WAL).
void put_u64(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> b;
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] =
      static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b.data(), 8);
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  std::array<char, 8> b;
  if (!in.read(b.data(), 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
             b[static_cast<std::size_t>(i)]))
         << (8 * i);
  return true;
}

}  // namespace

SummationEngine::SummationEngine(std::size_t n, bool normalize)
    : normalize_(normalize) {
  resize(n);
}

void SummationEngine::resize(std::size_t n) {
  if (n <= sums_.size()) return;
  sums_.resize(n, 0);
  published_.resize(n, 0.0);
}

void SummationEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= sums_.size()) resize(r.ratee + 1);
  sums_[r.ratee] += rating::score_value(r.score);
  cost_.add_arith();
}

void SummationEngine::update_epoch() {
  const std::size_t n = sums_.size();
  if (normalize_) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      published_[i] = std::max<double>(0.0, static_cast<double>(sums_[i]));
      total += published_[i];
    }
    cost_.add_arith(2 * n);
    if (total > 0.0) {
      for (auto& p : published_) p /= total;
      cost_.add_arith(n);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      published_[i] = static_cast<double>(sums_[i]);
    cost_.add_arith(n);
  }
  for (rating::NodeId i : suppressed_) {
    if (i < published_.size()) published_[i] = 0.0;
  }
}

double SummationEngine::reputation(rating::NodeId i) const {
  return published_.at(i);
}

bool SummationEngine::save_state(std::ostream& out) const {
  put_u64(out, sums_.size());
  for (std::int64_t s : sums_) put_u64(out, static_cast<std::uint64_t>(s));
  return static_cast<bool>(out);
}

bool SummationEngine::load_state(std::istream& in) {
  std::uint64_t n = 0;
  if (!get_u64(in, n)) return false;
  std::vector<std::int64_t> sums(n);
  for (auto& s : sums) {
    std::uint64_t raw = 0;
    if (!get_u64(in, raw)) return false;
    s = static_cast<std::int64_t>(raw);
  }
  sums_ = std::move(sums);
  published_.assign(sums_.size(), 0.0);
  update_epoch();  // republish from the restored sums
  return true;
}

}  // namespace p2prep::reputation
