#include "reputation/summation.h"

#include <algorithm>

namespace p2prep::reputation {

SummationEngine::SummationEngine(std::size_t n, bool normalize)
    : normalize_(normalize) {
  resize(n);
}

void SummationEngine::resize(std::size_t n) {
  if (n <= sums_.size()) return;
  sums_.resize(n, 0);
  published_.resize(n, 0.0);
}

void SummationEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= sums_.size()) resize(r.ratee + 1);
  sums_[r.ratee] += rating::score_value(r.score);
  cost_.add_arith();
}

void SummationEngine::update_epoch() {
  const std::size_t n = sums_.size();
  if (normalize_) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      published_[i] = std::max<double>(0.0, static_cast<double>(sums_[i]));
      total += published_[i];
    }
    cost_.add_arith(2 * n);
    if (total > 0.0) {
      for (auto& p : published_) p /= total;
      cost_.add_arith(n);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      published_[i] = static_cast<double>(sums_[i]);
    cost_.add_arith(n);
  }
  for (rating::NodeId i : suppressed_) {
    if (i < published_.size()) published_[i] = 0.0;
  }
}

double SummationEngine::reputation(rating::NodeId i) const {
  return published_.at(i);
}

}  // namespace p2prep::reputation
