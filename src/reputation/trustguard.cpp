#include "reputation/trustguard.h"

#include <algorithm>
#include <cmath>

namespace p2prep::reputation {

TrustGuardEngine::TrustGuardEngine(std::size_t n, TrustGuardConfig config)
    : config_(config) {
  resize(n);
}

void TrustGuardEngine::resize(std::size_t n) {
  if (n <= trust_.size()) return;
  window_.resize(n);
  history_.resize(n);
  ever_rated_.resize(n, false);
  trust_.resize(n, config_.prior);
}

void TrustGuardEngine::ingest(const rating::Rating& r) {
  if (r.ratee >= trust_.size() || r.rater >= trust_.size())
    resize(std::max(r.ratee, r.rater) + 1);
  window_[r.ratee].add(r.score);
  ever_rated_[r.ratee] = true;
  cost_.add_arith();
}

double TrustGuardEngine::last_window_score(rating::NodeId i) const {
  const auto& h = history_.at(i);
  return h.empty() ? config_.prior : h.back();
}

void TrustGuardEngine::update_epoch() {
  const std::size_t n = trust_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Close the window. A window with no ratings repeats the previous
    // score (no evidence either way) once the node has any history.
    double current;
    if (window_[i].total > 0) {
      current = window_[i].positive_fraction();
    } else if (!history_[i].empty()) {
      current = history_[i].back();
    } else {
      current = config_.prior;
    }
    auto& h = history_[i];
    h.push_back(current);
    if (h.size() > config_.history_windows) h.pop_front();
    window_[i] = rating::PairStats{};

    if (!ever_rated_[i]) {
      trust_[i] = config_.prior;
      continue;
    }

    // History statistics exclude the just-closed window (it is the
    // "current" term); with only one window, history collapses onto it.
    double hist_mean = current;
    double hist_var = 0.0;
    if (h.size() > 1) {
      double sum = 0.0;
      for (std::size_t k = 0; k + 1 < h.size(); ++k) sum += h[k];
      hist_mean = sum / static_cast<double>(h.size() - 1);
      // Fluctuation over the whole recorded history including current.
      double mean_all = (sum + current) / static_cast<double>(h.size());
      double sq = 0.0;
      for (double v : h) sq += (v - mean_all) * (v - mean_all);
      hist_var = sq / static_cast<double>(h.size());
    }
    cost_.add_arith(h.size() * 2);

    trust_[i] = std::max(
        0.0, config_.current_weight * current +
                 config_.history_weight * hist_mean -
                 config_.fluctuation_weight * std::sqrt(hist_var));
  }

  for (rating::NodeId i : suppressed_) {
    if (i < trust_.size()) trust_[i] = 0.0;
  }
}

double TrustGuardEngine::reputation(rating::NodeId i) const {
  return trust_.at(i);
}

void TrustGuardEngine::reset_reputation(rating::NodeId i) {
  if (i >= trust_.size()) return;
  window_[i] = rating::PairStats{};
  history_[i].clear();
  ever_rated_[i] = false;
  trust_[i] = 0.0;
}

}  // namespace p2prep::reputation
