#include "trace/amazon.h"

#include <algorithm>
#include <cassert>

#include "util/distributions.h"

namespace p2prep::trace {

namespace {

/// Star value for one organic transaction with a seller of quality q.
std::int8_t organic_stars(util::Rng& rng, double quality, double neutral_prob) {
  if (rng.chance(neutral_prob)) return 3;
  if (rng.chance(quality)) return rng.chance(0.7) ? 5 : 4;
  return rng.chance(0.6) ? 1 : 2;
}

}  // namespace

AmazonTrace generate_amazon_trace(const AmazonTraceConfig& config) {
  assert(config.num_sellers > 0 && config.num_buyers > 0 && config.days > 0);
  util::Rng rng(config.seed);

  AmazonTrace out;
  out.num_sellers = config.num_sellers;
  out.num_buyers = config.num_buyers;
  out.days = config.days;
  out.seller_quality.resize(config.num_sellers);

  const auto first_buyer = static_cast<UserId>(config.num_sellers);

  // Band assignment: sellers [0, high) high, [high, high+med) medium,
  // the rest low. Suspicious sellers are drawn from the medium band —
  // their *displayed* reputation will be lifted into [0.94, 0.97] by
  // partner ratings, which is exactly the paper's tell.
  const auto n_high = static_cast<std::size_t>(
      config.high_band_fraction * static_cast<double>(config.num_sellers));
  const auto n_med = static_cast<std::size_t>(
      config.medium_band_fraction * static_cast<double>(config.num_sellers));

  std::vector<double> daily_mean(config.num_sellers);
  for (UserId s = 0; s < config.num_sellers; ++s) {
    if (s < n_high) {
      out.seller_quality[s] = rng.uniform(0.94, 0.98);
      daily_mean[s] = config.high_band_daily_mean * rng.uniform(0.7, 1.3);
    } else if (s < n_high + n_med) {
      out.seller_quality[s] = rng.uniform(0.88, 0.91);
      daily_mean[s] = config.medium_band_daily_mean * rng.uniform(0.7, 1.3);
    } else {
      out.seller_quality[s] = rng.uniform(0.67, 0.79);
      daily_mean[s] = config.low_band_daily_mean * rng.uniform(0.5, 1.5);
    }
  }

  // Choose suspicious sellers from the medium band.
  const std::size_t num_suspicious =
      std::min(config.num_suspicious_sellers, n_med);
  for (std::size_t k = 0; k < num_suspicious; ++k) {
    const auto seller = static_cast<UserId>(n_high + k);
    out.truth.suspicious_sellers.push_back(seller);
    out.seller_quality[seller] =
        rng.uniform(config.suspicious_quality_min,
                    config.suspicious_quality_max);
    // Collusion lifts their perceived traffic too.
    daily_mean[seller] = config.high_band_daily_mean * rng.uniform(0.8, 1.1);
  }

  // Partner and rival assignments. Partners/rivals are dedicated buyer ids
  // from the top of the buyer range so they never mix with organic picks.
  UserId next_special = first_buyer + static_cast<UserId>(config.num_buyers);
  struct Campaign {
    UserId rater;
    UserId seller;
    double daily_rate;
    std::int8_t stars;
  };
  std::vector<Campaign> campaigns;
  for (UserId seller : out.truth.suspicious_sellers) {
    const auto partners = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.partners_min),
        static_cast<std::int64_t>(config.partners_max)));
    for (std::size_t p = 0; p < partners; ++p) {
      const UserId partner = next_special++;
      const double per_year =
          rng.uniform(config.partner_rate_min, config.partner_rate_max);
      campaigns.push_back({partner, seller,
                           per_year / static_cast<double>(config.days), 5});
      out.truth.collusion_pairs.emplace_back(partner, seller);
    }
    if (rng.chance(config.rival_prob)) {
      const UserId rival = next_special++;
      const double per_year =
          rng.uniform(config.rival_rate_min, config.rival_rate_max);
      campaigns.push_back({rival, seller,
                           per_year / static_cast<double>(config.days), 1});
      out.truth.rival_pairs.emplace_back(rival, seller);
    }
  }

  // Generate the year, day by day.
  for (std::uint16_t day = 0; day < config.days; ++day) {
    for (UserId s = 0; s < config.num_sellers; ++s) {
      const std::uint32_t tx = util::poisson(rng, daily_mean[s]);
      for (std::uint32_t t = 0; t < tx; ++t) {
        // Organic buyer: uniform, so the expected buyer-seller pair rate
        // stays ~1 transaction/year as the paper reports (its C4 baseline).
        const UserId buyer =
            first_buyer + static_cast<UserId>(rng.next_below(config.num_buyers));
        out.ratings.push_back(
            {buyer, s, organic_stars(rng, out.seller_quality[s],
                                     config.neutral_prob),
             day});
      }
    }
    for (const Campaign& c : campaigns) {
      const std::uint32_t k = util::poisson(rng, c.daily_rate);
      for (std::uint32_t t = 0; t < k; ++t)
        out.ratings.push_back({c.rater, c.seller, c.stars, day});
    }
  }

  return out;
}

}  // namespace p2prep::trace
