// Synthetic Overstock-auction-style trace (substitute for the paper's crawl
// of ~100k users / 450k transactions, Oct 2009 - Sept 2010). Every user can
// act as both buyer and seller; ratings are bidirectional. Colluding pairs
// rate each other far above the >20-ratings/year edge threshold used by
// Fig. 1(d)'s interaction-graph analysis, and — per C5 — collusion is
// injected strictly pairwise: a user may collude with several partners but
// each relationship is a pair, never a mutually-rating group of 3+.
#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/event.h"
#include "util/rng.h"

namespace p2prep::trace {

struct OverstockTraceConfig {
  std::size_t num_users = 100000;
  std::size_t num_transactions = 450000;
  std::size_t days = 365;

  /// Number of injected colluding pairs.
  std::size_t num_collusion_pairs = 60;
  /// Fraction of colluders that participate in more than one pair (the
  /// "three nodes connecting together, but still in a pair-wise manner"
  /// pattern in Fig. 1(d)).
  double chained_colluder_fraction = 0.2;
  /// Mutual ratings per pair per year, uniform in [min, max] (> the graph
  /// edge threshold of 20).
  double pair_rate_min = 25.0;
  double pair_rate_max = 80.0;

  /// Zipf skew of organic transaction partners (marketplace popularity).
  double popularity_skew = 0.8;
  /// Quality of organic interactions (probability of a positive rating).
  double organic_quality = 0.85;
  double neutral_prob = 0.05;

  std::uint64_t seed = 20091001;  // first crawl day in the paper
};

struct OverstockTrace {
  Trace ratings;
  TraceTruth truth;  ///< collusion_pairs holds the injected mutual pairs.
  std::size_t num_users = 0;
  std::size_t days = 0;
};

[[nodiscard]] OverstockTrace generate_overstock_trace(
    const OverstockTraceConfig& config);

}  // namespace p2prep::trace
