// Marketplace trace vocabulary: five-star rating events between users over
// a year of days, as crawled from Amazon/Overstock in paper Sec. III.
#pragma once

#include <cstdint>
#include <vector>

#include "rating/types.h"

namespace p2prep::trace {

/// User id within a trace (buyers and sellers share the id space; in the
/// Amazon-mode trace only sellers are rated, in the Overstock-mode trace
/// every user can be both).
using UserId = rating::NodeId;

struct MarketplaceRating {
  UserId rater = rating::kInvalidNode;
  UserId ratee = rating::kInvalidNode;
  std::int8_t stars = 5;  ///< 1..5; Amazon maps 1-2 neg, 3 neutral, 4-5 pos.
  std::uint16_t day = 0;  ///< 0-based day within the crawl year.
};

using Trace = std::vector<MarketplaceRating>;

/// Ground truth attached to a generated trace, for validating the
/// analysis pipeline (the real crawl of course lacks this).
struct TraceTruth {
  std::vector<UserId> suspicious_sellers;
  /// (partner rater, boosted seller) pairs — the injected colluders.
  std::vector<std::pair<UserId, UserId>> collusion_pairs;
  /// (rival rater, attacked seller) pairs — repeated 1-star campaigns.
  std::vector<std::pair<UserId, UserId>> rival_pairs;
};

}  // namespace p2prep::trace
