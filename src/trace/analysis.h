// The Sec. III trace-analysis toolkit: everything the paper computes over
// the Amazon/Overstock crawls to establish C1-C5 and Figure 1.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/event.h"

namespace p2prep::trace {

// --- Seller reputation (Fig. 1(a)) ---

struct SellerProfile {
  UserId seller = rating::kInvalidNode;
  std::uint64_t positives = 0;  ///< 4-5 star ratings.
  std::uint64_t negatives = 0;  ///< 1-2 star ratings.
  std::uint64_t neutrals = 0;   ///< 3 star ratings.
  /// Amazon reputation: positives / (positives + negatives); 0 if none.
  double reputation = 0.0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return positives + negatives + neutrals;
  }
};

/// Profiles for ratees [0, num_sellers), from the whole trace.
[[nodiscard]] std::vector<SellerProfile> seller_profiles(
    const Trace& trace, std::size_t num_sellers);

// --- Frequent-pair filter (the paper's suspicious-behavior filter) ---

struct PairCount {
  UserId rater = rating::kInvalidNode;
  UserId ratee = rating::kInvalidNode;
  std::uint32_t count = 0;
  std::uint32_t positive = 0;
  std::uint32_t negative = 0;
};

/// All (rater, ratee) pairs with at least `min_count` ratings in the trace.
/// Sorted by descending count, then ids.
[[nodiscard]] std::vector<PairCount> frequent_pairs(const Trace& trace,
                                                    std::uint32_t min_count);

struct SuspiciousSummary {
  std::vector<UserId> sellers;  ///< Distinct ratees of frequent pairs.
  std::vector<UserId> raters;   ///< Distinct raters of frequent pairs.
  std::vector<PairCount> pairs;
};

/// The paper's filter (threshold 20/year found 18 sellers / 139 raters).
/// Pairs whose frequent ratings are mostly negative are rival campaigns,
/// not collusion; they are kept in `pairs` but their raters still count
/// (the paper counts both before classifying by score pattern).
[[nodiscard]] SuspiciousSummary find_suspicious(const Trace& trace,
                                                std::uint32_t min_count);

// --- Rater timeline (Fig. 1(b)) ---

struct TimelinePoint {
  std::uint16_t day = 0;
  std::int8_t stars = 0;
};

/// Chronological ratings from `rater` for `ratee`.
[[nodiscard]] std::vector<TimelinePoint> rating_timeline(const Trace& trace,
                                                         UserId rater,
                                                         UserId ratee);

// --- Per-rater daily frequency stats (Fig. 1(c)) ---

struct RaterDailyStats {
  UserId rater = rating::kInvalidNode;
  std::uint32_t total = 0;
  double avg_per_day = 0.0;       ///< total / days.
  std::uint32_t max_per_day = 0;  ///< Busiest day.
  std::uint32_t min_per_day = 0;  ///< Quietest day with at least one rating.
};

/// Stats for every rater of `seller`, descending total.
[[nodiscard]] std::vector<RaterDailyStats> rater_daily_stats(
    const Trace& trace, UserId seller, std::size_t days);

// --- Rater behaviour classification (automating Fig. 1(b)'s patterns) ---

/// The three behaviour patterns the paper identifies among a suspicious
/// seller's frequent raters, plus the default for everyone else.
enum class RaterPattern {
  kPartner,     ///< Continuously top scores at high frequency (colluder).
  kRival,       ///< Continuously bottom scores at high frequency.
  kNormal,      ///< Mixed scores or ordinary frequency.
  kInfrequent,  ///< Too few ratings to classify (below min_ratings).
};

[[nodiscard]] const char* to_string(RaterPattern p);

struct RaterClassification {
  UserId rater = rating::kInvalidNode;
  RaterPattern pattern = RaterPattern::kInfrequent;
  std::uint32_t count = 0;
  double positive_fraction = 0.0;  ///< stars >= 4 share.
  double negative_fraction = 0.0;  ///< stars <= 2 share.
};

/// Classifies every rater of `ratee`. A rater with at least `min_ratings`
/// ratings is a kPartner when >= `extreme_fraction` of them are positive,
/// a kRival when >= `extreme_fraction` are negative, else kNormal.
/// Defaults follow the paper's reading of its Fig. 1(b) raters (>= 15
/// ratings/year, near-unanimous scores).
[[nodiscard]] std::vector<RaterClassification> classify_raters(
    const Trace& trace, UserId ratee, std::uint32_t min_ratings = 15,
    double extreme_fraction = 0.95);

// --- Interaction graph (Fig. 1(d)) ---

/// Undirected graph over users: an edge joins u and v when the number of
/// ratings between them (both directions summed) exceeds `min_edge`.
class InteractionGraph {
 public:
  void add_edge(UserId u, UserId v);

  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return adj_.size(); }
  [[nodiscard]] const std::vector<UserId>& neighbors(UserId u) const;
  [[nodiscard]] bool has_edge(UserId u, UserId v) const;
  [[nodiscard]] std::size_t degree(UserId u) const;
  [[nodiscard]] std::size_t max_degree() const;

  /// Connected components, each sorted ascending; components sorted by
  /// first element.
  [[nodiscard]] std::vector<std::vector<UserId>> components() const;

  /// Number of triangles (3-cliques). The paper's C5: suspected-colluder
  /// graphs have none — chains occur, closed groups of 3+ do not.
  [[nodiscard]] std::size_t triangle_count() const;

  /// True iff the graph has no triangle (every collusion relationship is
  /// strictly pairwise, possibly chained).
  [[nodiscard]] bool pairwise_only() const { return triangle_count() == 0; }

  /// Histogram of component sizes (size -> number of components).
  [[nodiscard]] std::map<std::size_t, std::size_t> component_size_histogram()
      const;

 private:
  std::map<UserId, std::vector<UserId>> adj_;
  std::size_t edges_ = 0;
};

/// Builds the Fig. 1(d) graph: edge iff > `min_edge` ratings between the
/// two users (both directions combined).
[[nodiscard]] InteractionGraph build_interaction_graph(const Trace& trace,
                                                       std::uint32_t min_edge);

}  // namespace p2prep::trace
