#include "trace/analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace p2prep::trace {

namespace {

constexpr bool is_positive(std::int8_t stars) { return stars >= 4; }
constexpr bool is_negative(std::int8_t stars) { return stars <= 2; }

/// 64-bit key for an ordered (rater, ratee) pair.
constexpr std::uint64_t ordered_key(UserId a, UserId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
/// Key for the unordered pair.
constexpr std::uint64_t unordered_key(UserId a, UserId b) {
  return a < b ? ordered_key(a, b) : ordered_key(b, a);
}

}  // namespace

std::vector<SellerProfile> seller_profiles(const Trace& trace,
                                           std::size_t num_sellers) {
  std::vector<SellerProfile> profiles(num_sellers);
  for (std::size_t s = 0; s < num_sellers; ++s)
    profiles[s].seller = static_cast<UserId>(s);
  for (const MarketplaceRating& r : trace) {
    if (r.ratee >= num_sellers) continue;
    auto& p = profiles[r.ratee];
    if (is_positive(r.stars)) ++p.positives;
    else if (is_negative(r.stars)) ++p.negatives;
    else ++p.neutrals;
  }
  for (auto& p : profiles) {
    const std::uint64_t rated = p.positives + p.negatives;
    p.reputation = rated == 0 ? 0.0
                              : static_cast<double>(p.positives) /
                                    static_cast<double>(rated);
  }
  return profiles;
}

std::vector<PairCount> frequent_pairs(const Trace& trace,
                                      std::uint32_t min_count) {
  std::unordered_map<std::uint64_t, PairCount> counts;
  counts.reserve(trace.size() / 4);
  for (const MarketplaceRating& r : trace) {
    PairCount& pc = counts[ordered_key(r.rater, r.ratee)];
    pc.rater = r.rater;
    pc.ratee = r.ratee;
    ++pc.count;
    if (is_positive(r.stars)) ++pc.positive;
    else if (is_negative(r.stars)) ++pc.negative;
  }
  std::vector<PairCount> out;
  for (const auto& [key, pc] : counts) {
    if (pc.count >= min_count) out.push_back(pc);
  }
  std::sort(out.begin(), out.end(), [](const PairCount& a, const PairCount& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.ratee != b.ratee) return a.ratee < b.ratee;
    return a.rater < b.rater;
  });
  return out;
}

SuspiciousSummary find_suspicious(const Trace& trace, std::uint32_t min_count) {
  SuspiciousSummary summary;
  summary.pairs = frequent_pairs(trace, min_count);
  std::unordered_set<UserId> sellers;
  std::unordered_set<UserId> raters;
  for (const PairCount& pc : summary.pairs) {
    sellers.insert(pc.ratee);
    raters.insert(pc.rater);
  }
  summary.sellers.assign(sellers.begin(), sellers.end());
  summary.raters.assign(raters.begin(), raters.end());
  std::sort(summary.sellers.begin(), summary.sellers.end());
  std::sort(summary.raters.begin(), summary.raters.end());
  return summary;
}

std::vector<TimelinePoint> rating_timeline(const Trace& trace, UserId rater,
                                           UserId ratee) {
  std::vector<TimelinePoint> points;
  for (const MarketplaceRating& r : trace) {
    if (r.rater == rater && r.ratee == ratee)
      points.push_back({r.day, r.stars});
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const TimelinePoint& a, const TimelinePoint& b) {
                     return a.day < b.day;
                   });
  return points;
}

std::vector<RaterDailyStats> rater_daily_stats(const Trace& trace,
                                               UserId seller,
                                               std::size_t days) {
  // rater -> (day -> count)
  std::unordered_map<UserId, std::unordered_map<std::uint16_t, std::uint32_t>>
      per_rater;
  for (const MarketplaceRating& r : trace) {
    if (r.ratee == seller) ++per_rater[r.rater][r.day];
  }
  std::vector<RaterDailyStats> out;
  out.reserve(per_rater.size());
  for (const auto& [rater, by_day] : per_rater) {
    RaterDailyStats s;
    s.rater = rater;
    s.min_per_day = 0;
    for (const auto& [day, count] : by_day) {
      s.total += count;
      s.max_per_day = std::max(s.max_per_day, count);
      s.min_per_day =
          s.min_per_day == 0 ? count : std::min(s.min_per_day, count);
    }
    s.avg_per_day =
        days == 0 ? 0.0
                  : static_cast<double>(s.total) / static_cast<double>(days);
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const RaterDailyStats& a, const RaterDailyStats& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.rater < b.rater;
            });
  return out;
}

const char* to_string(RaterPattern p) {
  switch (p) {
    case RaterPattern::kPartner: return "partner";
    case RaterPattern::kRival: return "rival";
    case RaterPattern::kNormal: return "normal";
    case RaterPattern::kInfrequent: return "infrequent";
  }
  return "?";
}

std::vector<RaterClassification> classify_raters(const Trace& trace,
                                                 UserId ratee,
                                                 std::uint32_t min_ratings,
                                                 double extreme_fraction) {
  struct Tally {
    std::uint32_t total = 0;
    std::uint32_t positive = 0;
    std::uint32_t negative = 0;
  };
  std::unordered_map<UserId, Tally> tallies;
  for (const MarketplaceRating& r : trace) {
    if (r.ratee != ratee) continue;
    Tally& t = tallies[r.rater];
    ++t.total;
    if (is_positive(r.stars)) ++t.positive;
    else if (is_negative(r.stars)) ++t.negative;
  }

  std::vector<RaterClassification> out;
  out.reserve(tallies.size());
  for (const auto& [rater, t] : tallies) {
    RaterClassification c;
    c.rater = rater;
    c.count = t.total;
    c.positive_fraction =
        static_cast<double>(t.positive) / static_cast<double>(t.total);
    c.negative_fraction =
        static_cast<double>(t.negative) / static_cast<double>(t.total);
    if (t.total < min_ratings) {
      c.pattern = RaterPattern::kInfrequent;
    } else if (c.positive_fraction >= extreme_fraction) {
      c.pattern = RaterPattern::kPartner;
    } else if (c.negative_fraction >= extreme_fraction) {
      c.pattern = RaterPattern::kRival;
    } else {
      c.pattern = RaterPattern::kNormal;
    }
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const RaterClassification& a, const RaterClassification& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.rater < b.rater;
            });
  return out;
}

void InteractionGraph::add_edge(UserId u, UserId v) {
  if (u == v || has_edge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++edges_;
}

const std::vector<UserId>& InteractionGraph::neighbors(UserId u) const {
  static const std::vector<UserId> kEmpty;
  auto it = adj_.find(u);
  return it == adj_.end() ? kEmpty : it->second;
}

bool InteractionGraph::has_edge(UserId u, UserId v) const {
  const auto& nbrs = neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::size_t InteractionGraph::degree(UserId u) const {
  return neighbors(u).size();
}

std::size_t InteractionGraph::max_degree() const {
  std::size_t best = 0;
  for (const auto& [u, nbrs] : adj_) best = std::max(best, nbrs.size());
  return best;
}

std::vector<std::vector<UserId>> InteractionGraph::components() const {
  std::vector<std::vector<UserId>> comps;
  std::unordered_set<UserId> seen;
  for (const auto& [start, nbrs] : adj_) {
    if (seen.contains(start)) continue;
    std::vector<UserId> comp;
    std::vector<UserId> stack{start};
    seen.insert(start);
    while (!stack.empty()) {
      const UserId u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (UserId v : neighbors(u)) {
        if (seen.insert(v).second) stack.push_back(v);
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  std::sort(comps.begin(), comps.end(),
            [](const std::vector<UserId>& a, const std::vector<UserId>& b) {
              return a.front() < b.front();
            });
  return comps;
}

std::size_t InteractionGraph::triangle_count() const {
  std::size_t triangles = 0;
  for (const auto& [u, nbrs] : adj_) {
    for (UserId v : nbrs) {
      if (v <= u) continue;
      for (UserId w : nbrs) {
        if (w <= v) continue;
        if (has_edge(v, w)) ++triangles;
      }
    }
  }
  return triangles;
}

std::map<std::size_t, std::size_t> InteractionGraph::component_size_histogram()
    const {
  std::map<std::size_t, std::size_t> hist;
  for (const auto& comp : components()) ++hist[comp.size()];
  return hist;
}

InteractionGraph build_interaction_graph(const Trace& trace,
                                         std::uint32_t min_edge) {
  std::unordered_map<std::uint64_t, std::uint32_t> pair_totals;
  for (const MarketplaceRating& r : trace)
    ++pair_totals[unordered_key(r.rater, r.ratee)];
  InteractionGraph graph;
  for (const auto& [key, count] : pair_totals) {
    if (count > min_edge) {
      graph.add_edge(static_cast<UserId>(key >> 32),
                     static_cast<UserId>(key & 0xffffffffULL));
    }
  }
  return graph;
}

}  // namespace p2prep::trace
