// CSV import/export for marketplace traces and +/-1 rating streams, so
// traces can be generated once, shipped, and re-analyzed (and real-world
// rating dumps can be fed into the detectors).
//
// Trace CSV columns:   rater,ratee,stars,day
// Rating CSV columns:  rater,ratee,score,time     (score in {-1,0,1})
//
// Readers are strict: a malformed line aborts the parse and reports the
// 1-based line number and reason, rather than silently skipping data.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rating/types.h"
#include "trace/event.h"

namespace p2prep::trace {

struct ParseError {
  std::size_t line = 0;  ///< 1-based line number (0 = stream-level failure).
  std::string message;
};

template <typename T>
struct ParseResult {
  std::optional<T> value;
  ParseError error;  ///< Meaningful only when !value.

  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Writes `trace` with a header row.
void write_trace_csv(std::ostream& os, const Trace& trace);

/// Parses a trace written by write_trace_csv (header required).
[[nodiscard]] ParseResult<Trace> read_trace_csv(std::istream& is);

/// Writes +/-1 ratings with a header row.
void write_ratings_csv(std::ostream& os,
                       const std::vector<rating::Rating>& ratings);

[[nodiscard]] ParseResult<std::vector<rating::Rating>> read_ratings_csv(
    std::istream& is);

/// Converts a five-star marketplace trace into the +/-1 rating stream the
/// detection layer consumes (Amazon mapping; days become ticks).
[[nodiscard]] std::vector<rating::Rating> to_ratings(const Trace& trace);

}  // namespace p2prep::trace
