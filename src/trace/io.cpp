#include "trace/io.h"

#include <array>
#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>

namespace p2prep::trace {

namespace {

/// Splits `line` at commas into at most `kMax` fields (no quoting — the
/// formats are purely numeric).
template <std::size_t kMax>
std::size_t split(std::string_view line,
                  std::array<std::string_view, kMax>& out) {
  std::size_t count = 0;
  while (count < kMax) {
    const std::size_t comma = line.find(',');
    out[count++] = line.substr(0, comma);
    if (comma == std::string_view::npos) break;
    line.remove_prefix(comma + 1);
  }
  return count;
}

template <typename Int>
bool parse_int(std::string_view field, Int& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

void write_trace_csv(std::ostream& os, const Trace& trace) {
  os << "rater,ratee,stars,day\n";
  for (const MarketplaceRating& r : trace) {
    os << r.rater << ',' << r.ratee << ',' << static_cast<int>(r.stars)
       << ',' << r.day << '\n';
  }
}

ParseResult<Trace> read_trace_csv(std::istream& is) {
  ParseResult<Trace> result;
  std::string line;
  if (!std::getline(is, line)) {
    result.error = {0, "empty input"};
    return result;
  }
  if (line != "rater,ratee,stars,day") {
    result.error = {1, "bad header, expected 'rater,ratee,stars,day'"};
    return result;
  }
  Trace trace;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::array<std::string_view, 5> fields;
    if (split(std::string_view(line), fields) != 4) {
      result.error = {line_no, "expected 4 fields"};
      return result;
    }
    MarketplaceRating r;
    int stars = 0;
    if (!parse_int(fields[0], r.rater) || !parse_int(fields[1], r.ratee) ||
        !parse_int(fields[2], stars) || !parse_int(fields[3], r.day)) {
      result.error = {line_no, "non-numeric field"};
      return result;
    }
    if (stars < 1 || stars > 5) {
      result.error = {line_no, "stars out of range [1,5]"};
      return result;
    }
    r.stars = static_cast<std::int8_t>(stars);
    trace.push_back(r);
  }
  result.value = std::move(trace);
  return result;
}

void write_ratings_csv(std::ostream& os,
                       const std::vector<rating::Rating>& ratings) {
  os << "rater,ratee,score,time\n";
  for (const rating::Rating& r : ratings) {
    os << r.rater << ',' << r.ratee << ','
       << static_cast<int>(rating::score_value(r.score)) << ',' << r.time
       << '\n';
  }
}

ParseResult<std::vector<rating::Rating>> read_ratings_csv(std::istream& is) {
  ParseResult<std::vector<rating::Rating>> result;
  std::string line;
  if (!std::getline(is, line)) {
    result.error = {0, "empty input"};
    return result;
  }
  if (line != "rater,ratee,score,time") {
    result.error = {1, "bad header, expected 'rater,ratee,score,time'"};
    return result;
  }
  std::vector<rating::Rating> ratings;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::array<std::string_view, 5> fields;
    if (split(std::string_view(line), fields) != 4) {
      result.error = {line_no, "expected 4 fields"};
      return result;
    }
    rating::Rating r;
    int score = 0;
    if (!parse_int(fields[0], r.rater) || !parse_int(fields[1], r.ratee) ||
        !parse_int(fields[2], score) || !parse_int(fields[3], r.time)) {
      result.error = {line_no, "non-numeric field"};
      return result;
    }
    if (score < -1 || score > 1) {
      result.error = {line_no, "score out of range [-1,1]"};
      return result;
    }
    r.score = static_cast<rating::Score>(score);
    ratings.push_back(r);
  }
  result.value = std::move(ratings);
  return result;
}

std::vector<rating::Rating> to_ratings(const Trace& trace) {
  std::vector<rating::Rating> out;
  out.reserve(trace.size());
  for (const MarketplaceRating& r : trace) {
    out.push_back({.rater = r.rater,
                   .ratee = r.ratee,
                   .score = rating::score_from_stars(r.stars),
                   .time = r.day});
  }
  return out;
}

}  // namespace p2prep::trace
