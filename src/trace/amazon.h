// Synthetic Amazon-style marketplace trace generator (substitute for the
// paper's crawl of 2.1M ratings over 97 book sellers, Apr 2009 - Apr 2010;
// see DESIGN.md "Substitutions").
//
// The generator is parameterized by the aggregate statistics the paper
// reports, so the Sec. III analysis run on its output reproduces the
// Figure 1 observations:
//  * sellers occupy reputation bands ~[0.67, 0.98]; higher-reputed sellers
//    attract more transactions (Fig. 1(a));
//  * a normal buyer-seller pair transacts ~1 time/year, while injected
//    collusion partners rate their seller 20-55 times/year with top scores
//    (C4), and optional rivals rate 1 star repeatedly (Fig. 1(b));
//  * suspicious sellers sit in the [0.94, 0.97] band: their organic quality
//    is mediocre (lots of negatives from real buyers, C2) but partner
//    ratings lift their displayed ratio (C1/C3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/event.h"
#include "util/rng.h"

namespace p2prep::trace {

struct AmazonTraceConfig {
  std::size_t num_sellers = 97;
  std::size_t num_buyers = 20000;
  std::size_t days = 365;

  /// Fractions of sellers per quality band (remainder is the low band).
  double high_band_fraction = 0.45;    ///< Organic quality ~[0.94, 0.98].
  double medium_band_fraction = 0.35;  ///< ~[0.88, 0.91].
  /// Low band organic quality ~[0.67, 0.79].

  /// Mean organic transactions per day for a high-band seller; medium and
  /// low bands scale down (higher reputation attracts more transactions).
  double high_band_daily_mean = 60.0;
  double medium_band_daily_mean = 35.0;
  double low_band_daily_mean = 6.0;

  /// Sellers boosted by collusion (paper found 18 suspicious sellers).
  std::size_t num_suspicious_sellers = 18;
  /// Partner raters per suspicious seller, uniform in [min, max] (the
  /// paper found 139 suspicious raters over 18 sellers).
  std::size_t partners_min = 2;
  std::size_t partners_max = 12;
  /// Partner rating volume per year, uniform in [min, max] (C4: up to
  /// 55/year vs <= 15/year for normal pairs).
  double partner_rate_min = 20.0;
  double partner_rate_max = 55.0;
  /// Probability a suspicious seller also attracts a rival that repeatedly
  /// rates 1 star (the paper's "rater 1" pattern).
  double rival_prob = 0.4;
  double rival_rate_min = 15.0;
  double rival_rate_max = 30.0;

  /// Suspicious sellers' organic quality (what non-partner buyers see).
  /// The paper's example suspicious seller displays 0.95 with ~2k negatives
  /// against ~22k positives: organically decent but boosted into the
  /// [0.94, 0.97] display band by partner positives. Relative to honest
  /// high-band sellers they still accrue disproportionate negatives (C2 at
  /// the pair level is what detection keys on, not the global ratio).
  double suspicious_quality_min = 0.93;
  double suspicious_quality_max = 0.96;

  /// Probability an organic rating is neutral (3 stars).
  double neutral_prob = 0.05;

  std::uint64_t seed = 20090415;  // first crawl day in the paper
};

struct AmazonTrace {
  Trace ratings;
  TraceTruth truth;
  std::size_t num_sellers = 0;
  std::size_t num_buyers = 0;
  std::size_t days = 0;
  /// Organic quality assigned to each seller (index = seller id).
  std::vector<double> seller_quality;
};

/// Sellers get ids [0, num_sellers); buyers get ids
/// [num_sellers, num_sellers + num_buyers).
[[nodiscard]] AmazonTrace generate_amazon_trace(const AmazonTraceConfig& config);

}  // namespace p2prep::trace
