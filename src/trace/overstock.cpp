#include "trace/overstock.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "util/distributions.h"

namespace p2prep::trace {

namespace {

std::int8_t organic_stars(util::Rng& rng, double quality, double neutral_prob) {
  if (rng.chance(neutral_prob)) return 3;
  if (rng.chance(quality)) return rng.chance(0.7) ? 5 : 4;
  return rng.chance(0.6) ? 1 : 2;
}

}  // namespace

OverstockTrace generate_overstock_trace(const OverstockTraceConfig& config) {
  assert(config.num_users >= 4 && config.days > 0);
  util::Rng rng(config.seed);

  OverstockTrace out;
  out.num_users = config.num_users;
  out.days = config.days;

  // --- Injected pairwise collusion (C5) ---
  // Chained colluders share a node between two pairs (path structures) but
  // two already-colluding users are never joined, so no mutually-rating
  // triangle can form.
  std::unordered_map<UserId, std::size_t> partner_count;
  std::vector<UserId> chainable;  // colluders with exactly one partner
  auto fresh_user = [&]() {
    for (;;) {
      const auto u = static_cast<UserId>(rng.next_below(config.num_users));
      if (!partner_count.contains(u)) return u;
    }
  };
  for (std::size_t p = 0; p < config.num_collusion_pairs; ++p) {
    UserId a;
    if (!chainable.empty() && rng.chance(config.chained_colluder_fraction)) {
      const std::size_t pick = rng.next_below(chainable.size());
      a = chainable[pick];
      chainable.erase(chainable.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    } else {
      a = fresh_user();
      partner_count[a] = 0;
    }
    const UserId b = fresh_user();
    partner_count[b] = 0;
    ++partner_count[a];
    ++partner_count[b];
    if (partner_count[b] == 1) chainable.push_back(b);
    out.truth.collusion_pairs.emplace_back(a, b);

    const double per_year =
        rng.uniform(config.pair_rate_min, config.pair_rate_max);
    const auto count = std::max<std::uint32_t>(
        21, util::poisson(rng, per_year));  // always above the edge threshold
    for (std::uint32_t k = 0; k < count; ++k) {
      const auto day =
          static_cast<std::uint16_t>(rng.next_below(config.days));
      out.ratings.push_back({a, b, 5, day});
      out.ratings.push_back({b, a, 5, day});
    }
  }
  for (const auto& [pair_a, pair_b] : out.truth.collusion_pairs) {
    out.truth.suspicious_sellers.push_back(pair_a);
    out.truth.suspicious_sellers.push_back(pair_b);
  }
  std::sort(out.truth.suspicious_sellers.begin(),
            out.truth.suspicious_sellers.end());
  out.truth.suspicious_sellers.erase(
      std::unique(out.truth.suspicious_sellers.begin(),
                  out.truth.suspicious_sellers.end()),
      out.truth.suspicious_sellers.end());

  // --- Organic transactions ---
  for (std::size_t t = 0; t < config.num_transactions; ++t) {
    const auto buyer = static_cast<UserId>(rng.next_below(config.num_users));
    UserId seller = static_cast<UserId>(
        util::zipf(rng, config.num_users, config.popularity_skew));
    if (seller == buyer)
      seller = static_cast<UserId>((seller + 1) % config.num_users);
    const auto day = static_cast<std::uint16_t>(rng.next_below(config.days));
    out.ratings.push_back(
        {buyer, seller,
         organic_stars(rng, config.organic_quality, config.neutral_prob),
         day});
    // Auction platforms let both sides rate; the seller usually reciprocates.
    if (rng.chance(0.9)) {
      out.ratings.push_back(
          {seller, buyer,
           organic_stars(rng, config.organic_quality, config.neutral_prob),
           day});
    }
  }

  return out;
}

}  // namespace p2prep::trace
