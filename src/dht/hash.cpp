#include "dht/hash.h"

#include "util/rng.h"

namespace p2prep::dht {

Key hash_bytes(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : data) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return util::mix64(h);
}

Key hash_node(rating::NodeId id) noexcept {
  // Domain-separated from record keys so a node's ring position and its
  // record placement are independent, as with hashing IP vs. hashing ID.
  return util::mix64(0x6e6f64655f6b6579ULL ^ id);
}

Key hash_reputation_record(rating::NodeId id) noexcept {
  return util::mix64(0x7265705f7265634bULL ^ id);
}

Key hash_shard_point(std::uint32_t shard, std::uint32_t point) noexcept {
  return util::mix64(0x73686172645f7074ULL ^
                     (static_cast<std::uint64_t>(shard) << 32) ^ point);
}

}  // namespace p2prep::dht
