#include "dht/chord.h"

#include <algorithm>
#include <cassert>

namespace p2prep::dht {

ChordRing::ChordRing(ChordConfig config) : config_(config) {
  assert(config_.bits >= 1 && config_.bits <= 64);
  mask_ = config_.bits == 64 ? ~Key{0} : ((Key{1} << config_.bits) - 1);
}

Key ChordRing::truncate(Key k) const noexcept { return k & mask_; }

bool ChordRing::in_range_open_closed(Key x, Key lo, Key hi) noexcept {
  if (lo < hi) return x > lo && x <= hi;
  if (lo > hi) return x > lo || x <= hi;  // wraps around 0
  return true;  // single-node ring: everything is in (n, n]
}

bool ChordRing::add_node(rating::NodeId id) {
  if (contains(id)) return false;
  const Key key = truncate(hash_node(id));
  for (const auto& m : members_) {
    if (m.key == key) return false;  // key collision
  }
  Member m;
  m.id = id;
  m.key = key;
  members_.push_back(std::move(m));
  if (slot_of_node_.size() <= id) slot_of_node_.resize(id + 1);
  slot_of_node_[id] = members_.size() - 1;
  stale_ = true;
  return true;
}

bool ChordRing::remove_node(rating::NodeId id) {
  if (!contains(id)) return false;
  const std::size_t slot = *slot_of_node_[id];
  const std::size_t last = members_.size() - 1;
  if (slot != last) {
    members_[slot] = std::move(members_[last]);
    slot_of_node_[members_[slot].id] = slot;
  }
  members_.pop_back();
  slot_of_node_[id].reset();
  stale_ = true;
  return true;
}

bool ChordRing::contains(rating::NodeId id) const {
  return id < slot_of_node_.size() && slot_of_node_[id].has_value();
}

void ChordRing::rebuild() {
  sorted_slots_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) sorted_slots_[i] = i;
  std::sort(sorted_slots_.begin(), sorted_slots_.end(),
            [this](std::size_t a, std::size_t b) {
              return members_[a].key < members_[b].key;
            });
  sorted_keys_.resize(members_.size());
  for (std::size_t i = 0; i < sorted_slots_.size(); ++i)
    sorted_keys_[i] = members_[sorted_slots_[i]].key;

  stale_ = false;  // successor_index is usable from here on

  const std::size_t n = members_.size();
  for (std::size_t si = 0; si < n; ++si) {
    Member& m = members_[sorted_slots_[si]];
    // Successor list: the next `successor_list` members clockwise.
    m.successors.clear();
    for (std::size_t k = 1; k <= config_.successor_list && k < n + 1; ++k) {
      m.successors.push_back(members_[sorted_slots_[(si + k) % n]].id);
      if (m.successors.size() == config_.successor_list) break;
    }
    // Finger table: finger[k] = successor(key + 2^k mod 2^bits).
    m.fingers.assign(config_.bits, rating::kInvalidNode);
    for (std::size_t k = 0; k < config_.bits; ++k) {
      const Key target = truncate(m.key + (Key{1} << k));
      m.fingers[k] = members_[sorted_slots_[successor_index(target)]].id;
    }
  }
}

std::size_t ChordRing::successor_index(Key key) const {
  assert(!stale_ && !sorted_keys_.empty());
  auto it = std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(), key);
  if (it == sorted_keys_.end()) return 0;  // wrap to the smallest key
  return static_cast<std::size_t>(it - sorted_keys_.begin());
}

rating::NodeId ChordRing::owner_of(Key key) const {
  return members_[sorted_slots_[successor_index(truncate(key))]].id;
}

rating::NodeId ChordRing::manager_of(rating::NodeId id) const {
  return owner_of(hash_reputation_record(id));
}

const ChordRing::Member& ChordRing::member(rating::NodeId id) const {
  assert(contains(id));
  return members_[*slot_of_node_[id]];
}

Key ChordRing::key_of(rating::NodeId id) const { return member(id).key; }

const std::vector<rating::NodeId>& ChordRing::fingers_of(
    rating::NodeId id) const {
  assert(!stale_);
  return member(id).fingers;
}

LookupResult ChordRing::lookup(rating::NodeId start, Key key) const {
  assert(!stale_ && contains(start));
  key = truncate(key);

  LookupResult result;
  result.path.push_back(start);

  const Member* current = &member(start);
  // Hop cap: greedy finger routing halves the remaining distance each hop,
  // so `bits` hops always suffice; the extra slack guards degenerate rings.
  const std::size_t hop_cap = config_.bits + 4;

  while (true) {
    const rating::NodeId succ =
        current->successors.empty() ? current->id : current->successors[0];
    const Key succ_key = member(succ).key;
    if (in_range_open_closed(key, current->key, succ_key)) {
      result.owner = succ;
      result.owner_key = succ_key;
      if (succ != current->id) {
        ++result.hops;  // final forward to the owner
        result.path.push_back(succ);
      }
      break;
    }
    // Closest preceding finger: largest finger strictly inside
    // (current, key).
    const Member* next = nullptr;
    for (std::size_t k = config_.bits; k-- > 0;) {
      const rating::NodeId fid = current->fingers[k];
      if (fid == rating::kInvalidNode || fid == current->id) continue;
      const Key fkey = member(fid).key;
      if (in_range_open_closed(fkey, current->key, key) && fkey != key) {
        next = &member(fid);
        break;
      }
    }
    if (next == nullptr || next == current) {
      // Fingers give no progress (tiny ring): walk to the successor.
      next = &member(succ);
    }
    ++result.hops;
    result.path.push_back(next->id);
    current = next;
    if (result.hops > hop_cap) {
      // Defensive: fall back to the oracle rather than looping forever.
      result.owner = owner_of(key);
      result.owner_key = member(result.owner).key;
      break;
    }
  }

  total_messages_ += result.hops;
  return result;
}

}  // namespace p2prep::dht
