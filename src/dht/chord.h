// Chord ring simulation (Stoica et al., the substrate of EigenTrust-style
// decentralized reputation systems, paper Fig. 2).
//
// A single-process model of a Chord DHT: nodes occupy points of a 2^bits
// circular key space, each key is owned by its successor node, and lookups
// route greedily through per-node finger tables exactly as the protocol
// prescribes (O(log N) hops). Message/hop accounting is exposed so the
// decentralized detection protocol can report real communication costs.
//
// The ring is built/maintained explicitly (batch `rebuild()` after joins or
// leaves) rather than via the stabilization protocol — churn dynamics are
// out of scope for the reproduced paper, routing structure is not.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/hash.h"
#include "rating/types.h"

namespace p2prep::dht {

struct ChordConfig {
  /// Key-space width in bits (ring size 2^bits). 1..64.
  std::size_t bits = 32;
  /// Successor-list length kept per node (fault tolerance bookkeeping).
  std::size_t successor_list = 4;
};

struct LookupResult {
  Key owner_key = 0;                 ///< Ring key of the owning node.
  rating::NodeId owner = rating::kInvalidNode;
  std::size_t hops = 0;              ///< Routing messages used.
  std::vector<rating::NodeId> path;  ///< Nodes traversed, starting node first.
};

class ChordRing {
 public:
  explicit ChordRing(ChordConfig config = {});

  [[nodiscard]] const ChordConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// Adds a node; its ring key is hash_node(id) truncated to `bits`.
  /// Returns false on duplicate id or (vanishingly unlikely) key collision.
  bool add_node(rating::NodeId id);
  bool remove_node(rating::NodeId id);
  [[nodiscard]] bool contains(rating::NodeId id) const;

  /// Recomputes successors, predecessors and finger tables. Must be called
  /// after a batch of add/remove before lookups; lookup asserts on a stale
  /// ring in debug builds.
  void rebuild();

  /// The node owning `key` (successor of key on the ring). Ring must be
  /// non-empty. This is the oracle answer, free of routing.
  [[nodiscard]] rating::NodeId owner_of(Key key) const;

  /// Convenience: the reputation manager of node `id` (owner of the node's
  /// reputation-record key).
  [[nodiscard]] rating::NodeId manager_of(rating::NodeId id) const;

  /// Greedy finger routing from `start` to the owner of `key`, counting
  /// hops. `start` must be a member.
  [[nodiscard]] LookupResult lookup(rating::NodeId start, Key key) const;

  /// Total routing messages across all lookups so far.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  void reset_message_count() noexcept { total_messages_ = 0; }

  /// Ring keys of all members, sorted (exposed for tests/diagnostics).
  [[nodiscard]] const std::vector<Key>& member_keys() const noexcept {
    return sorted_keys_;
  }
  [[nodiscard]] Key key_of(rating::NodeId id) const;

  /// Finger table of a member: entry k points at successor(key + 2^k).
  [[nodiscard]] const std::vector<rating::NodeId>& fingers_of(
      rating::NodeId id) const;

 private:
  struct Member {
    rating::NodeId id = rating::kInvalidNode;
    Key key = 0;
    std::vector<rating::NodeId> fingers;     // bits entries
    std::vector<rating::NodeId> successors;  // successor_list entries
  };

  [[nodiscard]] Key truncate(Key k) const noexcept;
  /// Index into sorted members of successor(key).
  [[nodiscard]] std::size_t successor_index(Key key) const;
  [[nodiscard]] const Member& member(rating::NodeId id) const;
  /// True iff x lies in the half-open circular interval (lo, hi].
  [[nodiscard]] static bool in_range_open_closed(Key x, Key lo, Key hi) noexcept;

  ChordConfig config_;
  Key mask_;
  std::vector<Member> members_;             // indexed by slot
  std::vector<Key> sorted_keys_;            // rebuilt by rebuild()
  std::vector<std::size_t> sorted_slots_;   // slot of sorted_keys_[i]
  std::vector<std::optional<std::size_t>> slot_of_node_;  // NodeId -> slot
  bool stale_ = true;
  mutable std::uint64_t total_messages_ = 0;
};

}  // namespace p2prep::dht
