// Consistent-hashing key derivation for the DHT layer (paper Sec. IV-A:
// "ID_i ... is the consistent hash value of node n_i's IP address").
// Simulated nodes have no IP addresses, so keys are derived from NodeId
// (or any byte string) through a strong 64-bit mix; keys are then truncated
// to the ring's bit width by ChordRing.
#pragma once

#include <cstdint>
#include <string_view>

#include "rating/types.h"

namespace p2prep::dht {

/// Ring key. The ring uses the low `bits` of this value.
using Key = std::uint64_t;

/// FNV-1a 64-bit over arbitrary bytes, finalized with a SplitMix64 round
/// for avalanche. Deterministic across platforms.
[[nodiscard]] Key hash_bytes(std::string_view data) noexcept;

/// Key for a simulated node (stands in for hashing its IP address).
[[nodiscard]] Key hash_node(rating::NodeId id) noexcept;

/// Key under which node `id`'s reputation records are stored; the DHT owner
/// of this key is the node's reputation manager.
[[nodiscard]] Key hash_reputation_record(rating::NodeId id) noexcept;

/// Ring position of virtual point `point` of service shard `shard` — the
/// consistent-hash points service::ShardMap places on the Chord key space.
/// Domain-separated from node keys so shard points and node positions are
/// independent samples of the same ring.
[[nodiscard]] Key hash_shard_point(std::uint32_t shard,
                                   std::uint32_t point) noexcept;

}  // namespace p2prep::dht
