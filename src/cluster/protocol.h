// Manager-to-manager wire surface of the multi-process cluster
// (DESIGN.md §16). Bodies travel inside the same CRC32-framed envelope as
// the client-facing RPC surface (rpc/protocol.h — MsgType values
// kMgrInsert..kMgrRejoin are registered there), so one transport,
// version byte and status vocabulary covers the whole deployment.
//
// Every decode here is a hostile-input surface: a peer manager is just a
// socket, and an attacker-authored frame is parsed with the same code as
// a well-behaved one. Count and length fields are therefore validated
// against the bytes actually present *before* any allocation they size,
// mirroring parse_wal / parse_checkpoint (fuzz/fuzz_rpc_protocol.cpp
// replays a corpus of valid + hostile seeds over all of them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rating/types.h"
#include "rpc/protocol.h"

namespace p2prep::cluster {

/// Hard cap on one state-pull blob (a checkpoint-encoded key range). A
/// range of a 1M-node deployment at 1% density is well under this; a
/// length field beyond it is hostile, not big.
inline constexpr std::uint32_t kMaxStateBlobBytes = 1u << 26;
/// Hard cap on dedup-table entries travelling with a state pull.
inline constexpr std::uint32_t kMaxSeqEntries = 1u << 16;
/// Hard cap on ring members in a MgrRingInfo response.
inline constexpr std::uint32_t kMaxManagers = 1u << 12;
/// Hard cap on one member's host-string length.
inline constexpr std::uint32_t kMaxHostBytes = 255;
/// How far past a holder's own epoch count a MgrColluderSet commit may
/// jump. Legitimate jumps are small (a holder that missed a few commits
/// while partitioned); a wire-supplied epoch_seq beyond this window is
/// hostile — committing it verbatim would make every later legitimate
/// epoch look like an idempotent retry and wedge the cluster.
inline constexpr std::uint64_t kMaxEpochSkip = 1024;
/// Frame cap for manager-to-manager connections: a state-pull response
/// (blob + seq table + envelope) must fit in one frame, so peers raise
/// rpc::RpcClientConfig::max_frame_bytes to this instead of the 1 MiB
/// client default.
inline constexpr std::uint32_t kClusterMaxFrameBytes =
    kMaxStateBlobBytes + (1u << 20);

/// Ingest one rating into its owner key range. `source`/`seq` identify
/// the logical submission for exactly-once semantics: a client that
/// fails over to a successor retries the same (source, seq), and the
/// holder's dedup table turns the retry into an idempotent ack — the
/// mechanism behind "zero acknowledged ratings lost" across a primary
/// kill. `forwarded` marks a relay by a non-holder entry node; a
/// forwarded request that lands on another non-holder is answered
/// kInternal instead of relayed again, so routing bugs cannot loop.
struct MgrInsertRequest {
  std::uint64_t source = 0;
  std::uint64_t seq = 0;
  std::uint8_t forwarded = 0;
  rating::Rating rating{};

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrInsertRequest> decode(rpc::Reader& r);
};

struct MgrInsertResponse {
  std::uint8_t duplicate = 0;  ///< Dedup hit: already applied, still kOk.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrInsertResponse> decode(rpc::Reader& r);
};

/// Primary → replica synchronous copy of an accepted rating. Carries the
/// owner range explicitly (the receiver holds several ranges) and the
/// same (source, seq) identity so replicas dedup retries identically.
/// Replicas never re-replicate. Response has no body.
struct MgrReplicateRequest {
  std::uint32_t range = 0;
  std::uint64_t source = 0;
  std::uint64_t seq = 0;
  rating::Rating rating{};

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrReplicateRequest> decode(
      rpc::Reader& r);
};

/// Pull one key range's full state from a holder: the checkpoint-encoded
/// blob (service::encode_checkpoint image — the same canonical bytes the
/// durability layer writes, so "byte-identical state" is literal) plus
/// the range's dedup table. Used by the rejoin resync and by the
/// decentralized service mode's epoch coordinator.
struct MgrStatePullRequest {
  std::uint32_t range = 0;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrStatePullRequest> decode(
      rpc::Reader& r);
};

struct MgrStatePullResponse {
  std::uint32_t range = 0;
  std::string blob;  ///< service::encode_checkpoint file image.
  /// Dedup table: (source, highest applied seq), ascending by source.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seqs;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrStatePullResponse> decode(
      rpc::Reader& r);
};

/// Coordinator → manager: commit one global epoch's verdicts. The
/// manager replays the exact single-process epoch mutation sequence on
/// every range it holds (update, suppress/reset owned flagged ids,
/// update, close epoch `epoch_seq`, checkpoint + WAL rotate), so cluster
/// state after epoch k matches the single-process service byte for byte.
struct MgrColluderSetRequest {
  std::uint64_t epoch_seq = 0;
  std::vector<rating::NodeId> flagged;  ///< Ascending.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrColluderSetRequest> decode(
      rpc::Reader& r);
};

struct MgrColluderSetResponse {
  std::uint64_t epochs_completed = 0;  ///< After applying; == epoch_seq.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrColluderSetResponse> decode(
      rpc::Reader& r);
};

/// Ring membership as the answering manager sees it. The request has no
/// body; any entry node can be asked, which is what lets ClusterClient
/// bootstrap from a single address.
struct MgrRingInfoResponse {
  struct Member {
    std::string host;
    std::uint16_t port = 0;
    std::uint8_t alive = 1;
  };
  std::uint32_t replication = 1;  ///< M: copies per key range.
  std::uint64_t num_nodes = 0;    ///< Reputation-node id space.
  std::vector<Member> members;    ///< Index == Chord range index.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrRingInfoResponse> decode(
      rpc::Reader& r);
};

/// Restarted manager → peers: resynced and serving its ranges again.
/// Response has no body.
struct MgrRejoinRequest {
  std::uint32_t index = 0;  ///< Ring index of the rejoining manager.

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrRejoinRequest> decode(rpc::Reader& r);
};

/// Holder → lagging holder: the sender failed to deliver replication
/// copies for `range` while the receiver was unreachable, and the
/// receiver is reachable again — it should re-pull the range from the
/// other holders now instead of waiting for its next restart. The
/// receiver answers kOk once its copy is caught up (adopted a dominating
/// peer state, or was already current). Response has no body.
struct MgrResyncHintRequest {
  std::uint32_t range = 0;

  void encode(std::string& out) const;
  [[nodiscard]] static std::optional<MgrResyncHintRequest> decode(
      rpc::Reader& r);
};

}  // namespace p2prep::cluster
