// ManagerNode: one OS process of the multi-process manager cluster
// (DESIGN.md §16) — the paper's DHT-of-managers deployment shape made
// real. Each of the K managers in the ring is the primary of one Chord
// key range (range i == consistent-hash shard i of service::ShardMap, so
// the cluster partition is the service partition) and a replica of the
// M-1 ranges preceding it: range r is held by managers r, r+1, ...,
// r+M-1 (mod K).
//
// The node serves the manager-to-manager surface of cluster/protocol.h
// over the CRC-framed rpc:: transport: insert (with per-source dedup and
// synchronous replication to the other live holders before the ack),
// query (answered from the held range's published view), state pull
// (canonical checkpoint bytes), colluder-set (the global epoch's commit,
// replaying the exact single-process mutation sequence), ring info and
// rejoin. Ratings for ranges the node does not hold are forwarded to the
// holders with primary-first failover.
//
// Durability: each held range owns a WAL + checkpoint pair in data_dir
// (`range-<r>.wal` / `range-<r>.ckpt`, v2 codecs). A killed node
// recovers its ranges byte-identically from disk, then — if any other
// holder is alive — pulls each range's authoritative state (the other
// holders kept accepting writes while it was down), adopts it wholesale,
// re-checkpoints, and broadcasts a rejoin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/protocol.h"
#include "managers/latency.h"
#include "rpc/client.h"
#include "service/metrics.h"
#include "service/shard.h"
#include "service/shard_map.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::cluster {

struct ManagerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ManagerNodeConfig {
  /// This node's ring index; it is the primary of key range `index`.
  std::size_t index = 0;
  /// The full ring, index-aligned: ring[i] is manager i's address. The
  /// cluster's range count K == ring.size().
  std::vector<ManagerEndpoint> ring;
  /// M: copies of each key range (primary + M-1 successors). Clamped to
  /// the ring size by valid().
  std::uint32_t replication = 1;
  /// Per-range shard configuration (num_nodes, detector, backend, ...).
  /// wal_dir is ignored — durability is governed by data_dir below.
  service::ServiceConfig service;
  /// Directory for this manager's per-range WAL + checkpoint files;
  /// empty runs volatile (tests).
  std::string data_dir;
  std::string bind_address = "127.0.0.1";
  /// Port to bind; 0 adopts ring[index].port (0 there too = ephemeral,
  /// for tests that read port() after start).
  std::uint16_t port = 0;
  /// Peer-call budget (replication, forwards, epoch pushes).
  std::uint32_t request_timeout_ms = 5000;
  /// Connect budget for the startup resync probe — short, so a cold
  /// cluster start (no peer listening yet) is not serialized behind it.
  std::uint32_t resync_connect_timeout_ms = 500;
  /// Simulated per-hop latency injected before serving each request —
  /// managers/latency.h's model reused over the real transport, for
  /// experiments that want the paper's message-delay regime on loopback.
  /// Disabled by default: real deployments already pay real latency.
  managers::LatencyModel latency = managers::LatencyModel::disabled();

  [[nodiscard]] bool valid() const noexcept {
    return !ring.empty() && index < ring.size() && replication >= 1 &&
           replication <= ring.size() && service.num_nodes >= 2;
  }
};

class ManagerNode {
 public:
  explicit ManagerNode(ManagerNodeConfig config);
  ~ManagerNode();

  ManagerNode(const ManagerNode&) = delete;
  ManagerNode& operator=(const ManagerNode&) = delete;

  /// Recovers durable state, resyncs held ranges from live peers, binds
  /// the listen socket and starts serving. Throws std::runtime_error on
  /// bind failure or corrupt durable state.
  void start();
  /// Stops serving, joins every connection thread and (when durable)
  /// checkpoints each held range for a fast clean restart.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (== config port unless it was 0/ephemeral).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  /// Ranges this node holds: its own plus the M-1 it replicates.
  [[nodiscard]] std::vector<std::size_t> held_ranges() const;
  /// Metrics snapshot (the same assembly the kGetMetrics handler sends).
  [[nodiscard]] service::ServiceMetrics metrics_snapshot();

 private:
  /// One held key range: its shard state plus the per-source dedup table
  /// behind exactly-once ingest across retries and failovers.
  struct RangeStore {
    explicit RangeStore(std::size_t range_index,
                        const service::ServiceConfig& cfg)
        : range(range_index), shard(range_index, cfg) {}
    std::size_t range;
    service::ServiceShard shard;
    /// source id -> highest applied seq (per-source streams are issued
    /// in order, so one watermark dedups every retry).
    std::unordered_map<std::uint64_t, std::uint64_t> seqs;
  };

  /// Lazily-connected client to one peer manager. `mu` serializes use of
  /// the connection; `alive` is the liveness view RingInfo reports.
  /// `lagging` records replication debt owed to this peer: range ->
  /// number of copies that failed delivery (after the retry). The debt is
  /// repaid by a kMgrResyncHint on the next successful replicate contact,
  /// or out of band by the peer's own restart resync.
  struct Peer {
    util::Mutex mu;
    std::optional<rpc::RpcClient> client P2PREP_GUARDED_BY(mu);
    std::unordered_map<std::size_t, std::uint64_t> lagging
        P2PREP_GUARDED_BY(mu);
    std::atomic<bool> alive{true};
  };

  [[nodiscard]] bool holds(std::size_t range) const noexcept;
  [[nodiscard]] std::vector<std::size_t> holders_of(
      std::size_t range) const;
  [[nodiscard]] RangeStore* store_of(std::size_t range)
      P2PREP_REQUIRES(state_mu_);

  /// One round trip to peer `idx` (never self). Serializes on the peer's
  /// connection, reconnects as needed, and tracks liveness. Must not be
  /// called with state_mu_ held — replication I/O outside the state lock
  /// is what makes mutual replication between two managers deadlock-free.
  rpc::CallResult peer_call(std::size_t idx, rpc::MsgType type,
                            const std::string& body, std::string* body_out,
                            std::uint32_t connect_timeout_ms = 0)
      P2PREP_EXCLUDES(state_mu_);

  // Startup phases.
  void recover_from_disk();
  void resync_from_peers();
  void broadcast_rejoin();

  /// Pulls `range` from its other holders and adopts a reachable peer's
  /// copy. `wholesale` (the startup resync) adopts the first reachable
  /// holder unconditionally — the peers kept accepting writes while this
  /// node was down, so their copy is authoritative. The catch-up mode
  /// (kMgrResyncHint, wholesale=false) adopts only a copy whose dedup
  /// watermarks cover every local (source, seq) — this node may hold
  /// acked failover inserts the peer lacks, which adoption must not
  /// drop. Returns true when the local copy is known caught-up after the
  /// call.
  bool resync_range(std::size_t range, std::uint32_t connect_timeout_ms,
                    bool wholesale) P2PREP_EXCLUDES(state_mu_);

  /// Peer `idx` is reachable again — it either answered a replicate call
  /// or announced itself with kMgrRejoin: sends a kMgrResyncHint for
  /// every range with recorded replication debt to it, and clears the
  /// repaid debt from Peer::lagging / replica_lag. The rejoin trigger
  /// matters on an idle cluster: without it the debt (and the gauge)
  /// would sit unrepaid until the next insert happened to land on a
  /// shared range.
  void repair_lagging(std::size_t idx) P2PREP_EXCLUDES(state_mu_);

  // Serving.
  void accept_loop();
  void serve_connection(int fd);
  /// Dispatches one decoded request; returns the full framed response.
  /// A successful kMgrRejoin sets `*rejoined_peer` to the rejoined ring
  /// index — the caller repays that peer's replication debt after the
  /// response is on the wire (not inside the handler: the rejoiner's
  /// broadcast_rejoin blocks on this reply, and a hint sent before it
  /// would stall behind the rejoiner's own startup traffic).
  std::string handle_request(std::string_view payload,
                             std::size_t* rejoined_peer);

  // Per-type handlers; each returns (status, body bytes).
  rpc::Status handle_insert(rpc::Reader& r, std::string& body);
  rpc::Status handle_replicate(rpc::Reader& r, std::string& body);
  rpc::Status handle_query(rpc::Reader& r, std::string& body);
  rpc::Status handle_state_pull(rpc::Reader& r, std::string& body);
  rpc::Status handle_colluder_set(rpc::Reader& r, std::string& body);
  rpc::Status handle_ring_info(std::string& body);
  rpc::Status handle_rejoin(rpc::Reader& r, std::string& body,
                            std::size_t* rejoined_peer);
  rpc::Status handle_resync_hint(rpc::Reader& r, std::string& body);
  rpc::Status handle_get_metrics(std::string& body);

  /// Synchronously copies an accepted rating to every other holder of
  /// `range`, retrying each failed copy once (a transient timeout must
  /// not strand a live replica). A copy that still fails marks the peer
  /// dead and records the debt in Peer::lagging / replica_lag; the next
  /// successful replicate contact with that peer sends a kMgrResyncHint
  /// so it re-pulls the range, repaying the debt without a restart.
  void replicate(std::size_t range, const MgrReplicateRequest& req)
      P2PREP_EXCLUDES(state_mu_);

  [[nodiscard]] std::string range_wal_path(std::size_t range) const;
  [[nodiscard]] std::string range_ckpt_path(std::size_t range) const;

  ManagerNodeConfig config_;
  service::ShardMap map_;
  std::uint64_t owned_keys_ = 0;  ///< Ids whose owner range == index_.

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  mutable util::Mutex state_mu_;
  /// Held ranges, ascending by range index.
  std::vector<std::unique_ptr<RangeStore>> stores_ P2PREP_GUARDED_BY(
      state_mu_);

  std::vector<std::unique_ptr<Peer>> peers_;  ///< Index-aligned; self null.

  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> replica_lag_{0};
  std::atomic<std::uint64_t> checkpoints_written_{0};
};

}  // namespace p2prep::cluster
