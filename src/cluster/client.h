// ClusterClient: the client side of the multi-process manager cluster.
// Routes each operation through the same consistent-hash map the managers
// partition the key space with (service::ShardMap over the ring size), so
// a rating goes straight to its owner range's primary — Chord routing
// collapsed to one hop because every member knows the full ring, exactly
// as in the single-process deployment. When the primary is unreachable the
// client retries the successor replicas in holder order (client-side
// failover); per-source sequence numbers make those retries exactly-once
// at the managers.
//
// One instance is single-threaded: it owns one lazily-connected RpcClient
// per manager and a monotonic sequence counter. Concurrent callers create
// one client each (the decentralized service mode gives every shard worker
// its own, see cluster/backend.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/manager_node.h"
#include "cluster/protocol.h"
#include "rpc/client.h"
#include "service/metrics.h"
#include "service/shard_map.h"

namespace p2prep::cluster {

struct ClusterClientConfig {
  /// The manager ring, index-aligned (ring[i] is range i's primary).
  std::vector<ManagerEndpoint> ring;
  /// M: holders per range (primary + M-1 successors).
  std::uint32_t replication = 1;
  /// Key space size; must match the managers' num_nodes.
  std::size_t num_nodes = 0;
  /// This client's source id for exactly-once dedup. Every concurrently
  /// inserting client needs a distinct source.
  std::uint64_t source = 0;
  std::uint32_t connect_timeout_ms = 2000;
  std::uint32_t request_timeout_ms = 5000;

  [[nodiscard]] bool valid() const noexcept {
    return !ring.empty() && replication >= 1 &&
           replication <= ring.size() && num_nodes >= 2;
  }
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterClientConfig config);

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Bootstraps a config from any live manager: one kMgrRingInfo round
  /// trip to `entry` yields the full ring, replication factor and key
  /// space size. `source` is left 0 — set it before concurrent use.
  static std::optional<ClusterClientConfig> discover(
      const ManagerEndpoint& entry, std::uint32_t connect_timeout_ms = 2000,
      std::uint32_t request_timeout_ms = 5000);

  /// Inserts one rating at its owner range, failing over to replica
  /// holders when the primary is down. True once a holder acknowledged
  /// (duplicate acks — a retry of a rating that already landed — count as
  /// success; `duplicate`, when non-null, reports which).
  bool insert(const rating::Rating& r, bool* duplicate = nullptr);

  /// Reads one node's published reputation from its owner range's view.
  bool query(rating::NodeId node, rpc::QueryReputationResponse* out);

  /// Pulls a key range's full state (canonical checkpoint bytes + dedup
  /// watermarks) from any live holder.
  std::optional<MgrStatePullResponse> pull_state(std::size_t range);

  /// Pushes a global epoch's colluder verdicts to EVERY manager in the
  /// ring. True only when all K acknowledged — the epoch is a cluster-wide
  /// commit, so a partial push is a failure the caller must retry.
  bool push_colluders(std::uint64_t epoch_seq,
                      const std::vector<rating::NodeId>& flagged);

  /// Fetches manager `index`'s metrics snapshot (per-manager gauges).
  bool get_metrics(std::size_t index, service::ServiceMetrics* out);

  /// Owner range of a key under the cluster's map.
  [[nodiscard]] std::size_t owner(rating::NodeId id) const {
    return map_.owner(id);
  }
  /// Inserts that were served by a replica because the primary call
  /// failed. Atomic: metrics threads read it while the owner inserts.
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  /// One round trip to manager `idx`, reconnecting as needed.
  rpc::CallResult call(std::size_t idx, rpc::MsgType type,
                       const std::string& body, std::string* body_out);
  [[nodiscard]] std::vector<std::size_t> holders_of(std::size_t range) const;

  ClusterClientConfig config_;
  service::ShardMap map_;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients_;  ///< Lazy, aligned.
  std::uint64_t next_seq_ = 1;
  std::atomic<std::uint64_t> failovers_{0};
};

}  // namespace p2prep::cluster
