// Builds the service::ClusterBackend seam over real ClusterClients — the
// glue that turns ReputationService into the decentralized-manager
// deployment: every shard worker gets its own single-threaded client
// (distinct source id, so per-source dedup sequencing stays correct under
// concurrent workers), and the epoch coordinator gets an admin client for
// the pull/push commit. The threading contract of service::ClusterBackend
// (per-shard forward calls, coordinator-only pull/push) maps exactly onto
// this layout, so no locking is needed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/client.h"
#include "cluster/manager_node.h"
#include "service/shard.h"

namespace p2prep::cluster {

struct ClusterBackendConfig {
  /// The manager ring, index-aligned. The service must run with
  /// num_shards == ring.size().
  std::vector<ManagerEndpoint> ring;
  std::uint32_t replication = 1;
  std::size_t num_nodes = 0;
  /// Worker i inserts as source `source_base + i`; the admin client uses
  /// `source_base + ring.size()`. Distinct services sharing one cluster
  /// need disjoint source ranges.
  std::uint64_t source_base = 1;
  std::uint32_t connect_timeout_ms = 2000;
  std::uint32_t request_timeout_ms = 5000;
};

/// Creates the backend; throws std::invalid_argument on a config the
/// underlying ClusterClient would reject.
[[nodiscard]] std::shared_ptr<service::ClusterBackend> make_cluster_backend(
    const ClusterBackendConfig& config);

}  // namespace p2prep::cluster
