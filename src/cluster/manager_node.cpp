#include "cluster/manager_node.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "managers/centralized.h"
#include "service/wal.h"
#include "util/rng.h"

namespace p2prep::cluster {

namespace {

/// Poll tick of every blocking loop; bounds stop() latency.
constexpr int kPollTickMs = 100;

/// "No peer rejoined in this request" sentinel for handle_request's
/// rejoined_peer out-parameter.
constexpr std::size_t kNoPeer = static_cast<std::size_t>(-1);

bool send_all_fd(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ManagerNode::ManagerNode(ManagerNodeConfig config)
    : config_(std::move(config)),
      map_(config_.ring.size(), config_.service.num_nodes) {
  if (!config_.valid())
    throw std::invalid_argument("manager node: invalid configuration");
  // The per-range shards share one config; range count == shard count so
  // the cluster partition is exactly the service partition.
  config_.service.num_shards = config_.ring.size();
  config_.service.wal_dir.clear();  // durability goes through data_dir
  for (rating::NodeId id = 0; id < config_.service.num_nodes; ++id)
    if (map_.owner(id) == config_.index) ++owned_keys_;
  peers_.resize(config_.ring.size());
  for (std::size_t i = 0; i < config_.ring.size(); ++i)
    if (i != config_.index) peers_[i] = std::make_unique<Peer>();
  {
    const util::MutexLock lock(state_mu_);
    for (std::size_t r : held_ranges()) {
      auto store = std::make_unique<RangeStore>(r, config_.service);
      store->shard.set_shard_map_stamp(
          0, static_cast<std::uint32_t>(config_.ring.size()));
      stores_.push_back(std::move(store));
    }
  }
}

ManagerNode::~ManagerNode() { stop(); }

bool ManagerNode::holds(std::size_t range) const noexcept {
  const std::size_t k = config_.ring.size();
  // Wire-supplied ranges reach this unvalidated; without the bound check
  // a range >= k would underflow the offset arithmetic below and could
  // alias to a held offset for a range no store exists for.
  if (range >= k) return false;
  // range r is held by r, r+1, ..., r+M-1 (mod k).
  const std::size_t offset = (config_.index + k - range) % k;
  return offset < config_.replication;
}

std::vector<std::size_t> ManagerNode::holders_of(std::size_t range) const {
  std::vector<std::size_t> holders;
  holders.reserve(config_.replication);
  for (std::uint32_t i = 0; i < config_.replication; ++i)
    holders.push_back((range + i) % config_.ring.size());
  return holders;
}

std::vector<std::size_t> ManagerNode::held_ranges() const {
  std::vector<std::size_t> ranges;
  for (std::size_t r = 0; r < config_.ring.size(); ++r)
    if (holds(r)) ranges.push_back(r);
  return ranges;
}

ManagerNode::RangeStore* ManagerNode::store_of(std::size_t range) {
  for (const auto& store : stores_)
    if (store->range == range) return store.get();
  return nullptr;
}

std::string ManagerNode::range_wal_path(std::size_t range) const {
  return config_.data_dir + "/range-" + std::to_string(range) + ".wal";
}

std::string ManagerNode::range_ckpt_path(std::size_t range) const {
  return config_.data_dir + "/range-" + std::to_string(range) + ".ckpt";
}

// --- Peer transport ---------------------------------------------------------

rpc::CallResult ManagerNode::peer_call(std::size_t idx, rpc::MsgType type,
                                       const std::string& body,
                                       std::string* body_out,
                                       std::uint32_t connect_timeout_ms) {
  Peer& peer = *peers_[idx];
  const util::MutexLock lock(peer.mu);
  if (!peer.client) {
    rpc::RpcClientConfig cc;
    cc.host = config_.ring[idx].host;
    cc.port = config_.ring[idx].port;
    cc.request_timeout_ms = config_.request_timeout_ms;
    if (connect_timeout_ms != 0) cc.connect_timeout_ms = connect_timeout_ms;
    // State-pull responses carry a whole key range in one frame.
    cc.max_frame_bytes = kClusterMaxFrameBytes;
    peer.client.emplace(cc);
  }
  if (!peer.client->connected()) {
    std::string err;
    if (!peer.client->connect(&err)) {
      peer.alive.store(false, std::memory_order_relaxed);
      rpc::CallResult res;
      res.ok = false;
      res.error = "connect to manager " + std::to_string(idx) + ": " + err;
      return res;
    }
  }
  rpc::CallResult res = peer.client->call_raw(type, body, body_out);
  peer.alive.store(res.ok, std::memory_order_relaxed);
  return res;
}

// --- Startup ----------------------------------------------------------------

void ManagerNode::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  if (!config_.data_dir.empty()) {
    std::filesystem::create_directories(config_.data_dir);
    recover_from_disk();
  }
  resync_from_peers();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("manager node: socket() failed: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  std::uint16_t want_port =
      config_.port != 0 ? config_.port : config_.ring[config_.index].port;
  addr.sin_port = htons(want_port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("manager node: bad bind address '" +
                             config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("manager node: bind/listen on " +
                             config_.bind_address + ":" +
                             std::to_string(want_port) + " failed: " +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  broadcast_rejoin();
}

void ManagerNode::recover_from_disk() {
  const util::MutexLock lock(state_mu_);
  for (const auto& store : stores_) {
    const std::string wal_path = range_wal_path(store->range);
    const std::string ckpt_path = range_ckpt_path(store->range);
    const auto ckpt = service::read_checkpoint(ckpt_path);
    const auto wal = service::read_wal(wal_path);
    if (ckpt) store->shard.restore(*ckpt);
    std::uint64_t skip = 0;
    bool replay = wal.found;
    if (ckpt && wal.found) {
      if (wal.generation == ckpt->wal_generation) {
        skip = ckpt->wal_records_applied;
      } else if (wal.generation < ckpt->wal_generation) {
        // A WAL older than its checkpoint never happens in a crash
        // window (rotation truncates in place); treat it as stale.
        replay = false;
      }
    }
    if (replay) {
      for (std::size_t i = 0; i < wal.records.size(); ++i) {
        if (i < skip) continue;
        if (wal.records[i].kind != service::WalRecordKind::kRating) continue;
        store->shard.apply_rating(wal.records[i].rating);
      }
    }
    const auto num_shards =
        static_cast<std::uint32_t>(config_.ring.size());
    if (wal.found) {
      store->shard.attach_wal(service::WalWriter::resume(
          wal_path, wal.generation, wal.map_epoch, wal.num_shards,
          wal.valid_bytes, wal.records.size()));
    } else {
      const std::uint64_t gen = ckpt ? ckpt->wal_generation + 1 : 1;
      store->shard.attach_wal(
          service::WalWriter::create(wal_path, gen, 0, num_shards));
    }
  }
}

void ManagerNode::resync_from_peers() {
  // For each held range, adopt the state of any other live holder: while
  // this node was down the remaining holders kept accepting writes, so a
  // reachable peer's copy is authoritative (at worst equal). The dedup
  // table travels with the blob, so retried inserts stay exactly-once
  // across the rejoin.
  for (std::size_t r : held_ranges())
    (void)resync_range(r, config_.resync_connect_timeout_ms,
                       /*wholesale=*/true);
}

bool ManagerNode::resync_range(std::size_t range,
                               std::uint32_t connect_timeout_ms,
                               bool wholesale) {
  MgrStatePullRequest req;
  req.range = static_cast<std::uint32_t>(range);
  std::string body;
  req.encode(body);
  for (std::size_t h : holders_of(range)) {
    if (h == config_.index) continue;
    // One-shot connection, NOT the shared peer client: a bulk state pull
    // must not hold Peer::mu against the replicate path, and a
    // hint-triggered pull over the shared client would land on the very
    // connection whose serve thread at the peer is blocked awaiting our
    // hint response — a request cycle over one socket that only a
    // timeout can break.
    rpc::RpcClientConfig cc;
    cc.host = config_.ring[h].host;
    cc.port = config_.ring[h].port;
    cc.request_timeout_ms = config_.request_timeout_ms;
    if (connect_timeout_ms != 0) cc.connect_timeout_ms = connect_timeout_ms;
    cc.max_frame_bytes = kClusterMaxFrameBytes;
    rpc::RpcClient client(cc);
    if (!client.connect()) continue;
    std::string resp_body;
    const rpc::CallResult res =
        client.call_raw(rpc::MsgType::kMgrStatePull, body, &resp_body);
    if (!res.ok || res.status != rpc::Status::kOk) continue;
    rpc::Reader reader(resp_body);
    auto resp = MgrStatePullResponse::decode(reader);
    if (!resp) continue;
    const auto ckpt = service::parse_checkpoint(resp->blob);
    if (!ckpt) continue;
    const util::MutexLock lock(state_mu_);
    RangeStore* store = store_of(range);
    if (!wholesale) {
      // Catch-up adopt (kMgrResyncHint): take the peer copy only when
      // its watermarks cover every locally-acked rating — this node may
      // have served failover inserts the peer never received, and
      // wholesale adoption would drop them. Checked under state_mu_, so
      // a rating applied after the pull forces a retry instead of being
      // silently overwritten.
      bool peer_covers_local = true;
      for (const auto& [source, seq] : store->seqs) {
        const auto it =
            std::lower_bound(resp->seqs.begin(), resp->seqs.end(),
                             std::make_pair(source, std::uint64_t{0}));
        if (it == resp->seqs.end() || it->first != source ||
            it->second < seq) {
          peer_covers_local = false;
          break;
        }
      }
      if (!peer_covers_local) {
        // The stale side may be the peer: if the local watermarks cover
        // the peer's, this copy is already current.
        bool local_covers_peer = true;
        for (const auto& [source, seq] : resp->seqs) {
          const auto it = store->seqs.find(source);
          if (it == store->seqs.end() || it->second < seq) {
            local_covers_peer = false;
            break;
          }
        }
        if (local_covers_peer) return true;
        continue;  // diverged both ways; try another holder
      }
    }
    store->shard.reload_from(*ckpt);
    store->seqs.clear();
    for (const auto& [source, seq] : resp->seqs) store->seqs[source] = seq;
    // Re-anchor durability on the adopted state: the local WAL's records
    // belong to the discarded pre-adopt history, so cut a fresh
    // checkpoint and rotate past them.
    if (!config_.data_dir.empty() &&
        store->shard.checkpoint_and_rotate(range_ckpt_path(range)))
      checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ManagerNode::broadcast_rejoin() {
  MgrRejoinRequest req;
  req.index = static_cast<std::uint32_t>(config_.index);
  std::string body;
  req.encode(body);
  for (std::size_t i = 0; i < config_.ring.size(); ++i) {
    if (i == config_.index) continue;
    (void)peer_call(i, rpc::MsgType::kMgrRejoin, body, nullptr,
                    config_.resync_connect_timeout_ms);
  }
}

void ManagerNode::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!config_.data_dir.empty()) {
    const util::MutexLock lock(state_mu_);
    for (const auto& store : stores_)
      if (store->shard.checkpoint_and_rotate(range_ckpt_path(store->range)))
        checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  }
  running_.store(false, std::memory_order_release);
}

// --- Serving ----------------------------------------------------------------

void ManagerNode::accept_loop() {
  // Each connection gets a thread; finished ones are reaped every poll
  // tick so a long-lived manager serving many short-lived connections
  // does not accumulate unjoined threads without bound.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Conn> conns;
  const auto reap = [&conns](bool all) {
    for (auto it = conns.begin(); it != conns.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    reap(/*all=*/false);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto done = std::make_shared<std::atomic<bool>>(false);
    conns.push_back(Conn{std::thread([this, fd, done] {
                           serve_connection(fd);
                           done->store(true, std::memory_order_release);
                         }),
                         done});
  }
  reap(/*all=*/true);
}

void ManagerNode::serve_connection(int fd) {
  std::string buf;
  char chunk[16 * 1024];
  // Simulated-latency injection (off by default): each request pays one
  // modeled hop before being served, reproducing the paper's message-delay
  // regime on a loopback cluster. Per-connection RNG keeps concurrent
  // connections from sharing state.
  util::Rng latency_rng(config_.latency.seed ^
                        static_cast<std::uint64_t>(fd));
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready > 0) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    bool corrupt = false;
    for (;;) {
      std::string_view payload;
      std::size_t consumed = 0;
      const rpc::FrameResult fr = rpc::try_decode_frame(
          buf, kClusterMaxFrameBytes, &payload, &consumed);
      if (fr == rpc::FrameResult::kNeedMore) break;
      if (fr == rpc::FrameResult::kError) {
        corrupt = true;
        break;
      }
      if (config_.latency.enabled) {
        const double ms =
            config_.latency.per_hop_ms +
            latency_rng.uniform(0.0, config_.latency.jitter_ms);
        if (ms > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
      }
      std::size_t rejoined_peer = kNoPeer;
      const std::string response = handle_request(payload, &rejoined_peer);
      buf.erase(0, consumed);
      if (!response.empty() && !send_all_fd(fd, response)) {
        corrupt = true;
        break;
      }
      // A rejoined peer has finished its startup resync, so any debt
      // recorded toward it is already covered — repay it now rather than
      // waiting for the next insert to touch a shared range. Must happen
      // after the response: the rejoiner's broadcast_rejoin holds its
      // own peer entry for this node until the reply lands.
      if (rejoined_peer != kNoPeer) repair_lagging(rejoined_peer);
    }
    if (corrupt) break;
  }
  ::close(fd);
}

std::string ManagerNode::handle_request(std::string_view payload,
                                        std::size_t* rejoined_peer) {
  rpc::Reader r(payload);
  rpc::RequestHeader req{};
  if (!rpc::decode_request_header(r, req)) return {};  // drop, no reply

  rpc::ResponseHeader resp_h;
  resp_h.type = req.type;
  resp_h.request_id = req.request_id;
  std::string body;

  if (req.version != rpc::kProtocolVersion) {
    resp_h.status = rpc::Status::kUnsupportedVersion;
  } else {
    switch (static_cast<rpc::MsgType>(req.type)) {
      case rpc::MsgType::kPing:
        resp_h.status = rpc::Status::kOk;
        break;
      case rpc::MsgType::kMgrInsert:
        resp_h.status = handle_insert(r, body);
        break;
      case rpc::MsgType::kMgrReplicate:
        resp_h.status = handle_replicate(r, body);
        break;
      case rpc::MsgType::kQueryReputation:
        resp_h.status = handle_query(r, body);
        break;
      case rpc::MsgType::kMgrStatePull:
        resp_h.status = handle_state_pull(r, body);
        break;
      case rpc::MsgType::kMgrColluderSet:
        resp_h.status = handle_colluder_set(r, body);
        break;
      case rpc::MsgType::kMgrRingInfo:
        resp_h.status = handle_ring_info(body);
        break;
      case rpc::MsgType::kMgrRejoin:
        resp_h.status = handle_rejoin(r, body, rejoined_peer);
        break;
      case rpc::MsgType::kMgrResyncHint:
        resp_h.status = handle_resync_hint(r, body);
        break;
      case rpc::MsgType::kGetMetrics:
        resp_h.status = handle_get_metrics(body);
        break;
      default:
        resp_h.status = rpc::Status::kUnsupportedType;
        break;
    }
  }
  if (resp_h.status != rpc::Status::kOk) body.clear();
  std::string out;
  rpc::encode_response_header(out, resp_h);
  out.append(body);
  return rpc::encode_frame(out);
}

rpc::Status ManagerNode::handle_insert(rpc::Reader& r, std::string& body) {
  const auto req = MgrInsertRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  const rating::Rating& rt = req->rating;
  if (rt.rater >= config_.service.num_nodes ||
      rt.ratee >= config_.service.num_nodes || rt.rater == rt.ratee)
    return rpc::Status::kInvalidArgument;
  const std::size_t range = map_.owner(rt.ratee);

  if (!holds(range)) {
    // Entry-node relay: route to the holders, primary first. A request
    // that was already forwarded once must have reached a holder —
    // answering kInternal instead of relaying again makes routing bugs
    // loud rather than circular.
    if (req->forwarded) return rpc::Status::kInternal;
    forwards_.fetch_add(1, std::memory_order_relaxed);
    MgrInsertRequest fwd = *req;
    fwd.forwarded = 1;
    std::string fwd_body;
    fwd.encode(fwd_body);
    for (std::size_t h : holders_of(range)) {
      std::string resp_body;
      const rpc::CallResult res =
          peer_call(h, rpc::MsgType::kMgrInsert, fwd_body, &resp_body);
      if (!res.ok) continue;
      if (res.status != rpc::Status::kOk) return res.status;
      body = resp_body;
      return rpc::Status::kOk;
    }
    return rpc::Status::kInternal;
  }

  bool duplicate = false;
  {
    const util::MutexLock lock(state_mu_);
    RangeStore* store = store_of(range);
    const auto it = store->seqs.find(req->source);
    if (it != store->seqs.end() && req->seq <= it->second) {
      duplicate = true;
    } else {
      store->seqs[req->source] = req->seq;
      store->shard.log_record(service::WalRecord::make_rating(rt));
      store->shard.apply_rating(rt);
    }
  }
  // A holder that is not the range's primary only sees inserts when the
  // primary is unreachable — this is the failover serving the paper's
  // replica redundancy exists for.
  if (range != config_.index)
    failovers_.fetch_add(1, std::memory_order_relaxed);
  if (!duplicate) {
    MgrReplicateRequest rep;
    rep.range = static_cast<std::uint32_t>(range);
    rep.source = req->source;
    rep.seq = req->seq;
    rep.rating = rt;
    replicate(range, rep);
  }
  MgrInsertResponse resp;
  resp.duplicate = duplicate ? 1 : 0;
  resp.encode(body);
  return rpc::Status::kOk;
}

void ManagerNode::replicate(std::size_t range,
                            const MgrReplicateRequest& req) {
  std::string body;
  req.encode(body);
  for (std::size_t h : holders_of(range)) {
    if (h == config_.index) continue;
    rpc::CallResult res =
        peer_call(h, rpc::MsgType::kMgrReplicate, body, nullptr);
    // One retry: a transient timeout or dropped connection must not
    // strand a live replica with a hole in its copy.
    if (!res.ok || res.status != rpc::Status::kOk)
      res = peer_call(h, rpc::MsgType::kMgrReplicate, body, nullptr);
    if (!res.ok || res.status != rpc::Status::kOk) {
      // Record the debt: this holder is missing a copy it must receive
      // before it can serve the range alone. Repaid by repair_lagging
      // the next time the peer answers, or by its own restart resync.
      replica_lag_.fetch_add(1, std::memory_order_relaxed);
      const util::MutexLock lock(peers_[h]->mu);
      ++peers_[h]->lagging[range];
      continue;
    }
    repair_lagging(h);
  }
}

void ManagerNode::repair_lagging(std::size_t idx) {
  Peer& peer = *peers_[idx];
  std::vector<std::pair<std::size_t, std::uint64_t>> debts;
  {
    const util::MutexLock lock(peer.mu);
    if (peer.lagging.empty()) return;
    debts.assign(peer.lagging.begin(), peer.lagging.end());
  }
  for (const auto& [range, missed] : debts) {
    MgrResyncHintRequest hint;
    hint.range = static_cast<std::uint32_t>(range);
    std::string body;
    hint.encode(body);
    rpc::CallResult res =
        peer_call(idx, rpc::MsgType::kMgrResyncHint, body, nullptr);
    // One retry: the cached connection to a peer that died and came back
    // is a stale socket, and the first call on it fails while tearing it
    // down — exactly the situation a rejoin-triggered repair runs in.
    if (!res.ok || res.status != rpc::Status::kOk)
      res = peer_call(idx, rpc::MsgType::kMgrResyncHint, body, nullptr);
    if (!res.ok || res.status != rpc::Status::kOk) continue;
    // The peer re-pulled the range and is caught up; repay at most the
    // snapshot's debt — copies that failed since the snapshot stay owed.
    // The gauge moves by exactly what this call removes from the map: a
    // concurrent repair (rejoin-triggered and insert-triggered can race)
    // that already claimed the entry repays nothing here, so the debt is
    // never subtracted twice.
    std::uint64_t repaid = 0;
    {
      const util::MutexLock lock(peer.mu);
      const auto it = peer.lagging.find(range);
      if (it != peer.lagging.end()) {
        repaid = std::min(missed, it->second);
        if (it->second <= missed)
          peer.lagging.erase(it);
        else
          it->second -= missed;
      }
    }
    if (repaid != 0)
      replica_lag_.fetch_sub(repaid, std::memory_order_relaxed);
  }
}

rpc::Status ManagerNode::handle_replicate(rpc::Reader& r, std::string&) {
  const auto req = MgrReplicateRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  if (!holds(req->range)) return rpc::Status::kInvalidArgument;
  const rating::Rating& rt = req->rating;
  if (rt.rater >= config_.service.num_nodes ||
      rt.ratee >= config_.service.num_nodes || rt.rater == rt.ratee)
    return rpc::Status::kInvalidArgument;
  const util::MutexLock lock(state_mu_);
  RangeStore* store = store_of(req->range);
  const auto it = store->seqs.find(req->source);
  if (it == store->seqs.end() || req->seq > it->second) {
    store->seqs[req->source] = req->seq;
    store->shard.log_record(service::WalRecord::make_rating(rt));
    store->shard.apply_rating(rt);
  }
  return rpc::Status::kOk;  // replicas never re-replicate
}

rpc::Status ManagerNode::handle_query(rpc::Reader& r, std::string& body) {
  const auto req = rpc::QueryReputationRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  if (req->node >= config_.service.num_nodes)
    return rpc::Status::kInvalidArgument;
  const std::size_t range = map_.owner(req->node);

  if (holds(range)) {
    std::shared_ptr<const service::ShardView> view;
    {
      const util::MutexLock lock(state_mu_);
      view = store_of(range)->shard.view();
    }
    rpc::QueryReputationResponse resp;
    if (req->node < view->reputations.size())
      resp.reputation = view->reputations[req->node];
    if (req->node < view->suspected.size())
      resp.suspected = view->suspected[req->node];
    resp.epoch = view->epoch;
    resp.shard = static_cast<std::uint32_t>(range);
    resp.encode(body);
    return rpc::Status::kOk;
  }

  forwards_.fetch_add(1, std::memory_order_relaxed);
  std::string fwd_body;
  req->encode(fwd_body);
  for (std::size_t h : holders_of(range)) {
    std::string resp_body;
    const rpc::CallResult res =
        peer_call(h, rpc::MsgType::kQueryReputation, fwd_body, &resp_body);
    if (!res.ok) continue;
    if (res.status != rpc::Status::kOk) return res.status;
    body = resp_body;
    return rpc::Status::kOk;
  }
  return rpc::Status::kInternal;
}

rpc::Status ManagerNode::handle_state_pull(rpc::Reader& r,
                                           std::string& body) {
  const auto req = MgrStatePullRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  if (!holds(req->range)) return rpc::Status::kInvalidArgument;
  MgrStatePullResponse resp;
  resp.range = req->range;
  {
    const util::MutexLock lock(state_mu_);
    RangeStore* store = store_of(req->range);
    const auto ckpt = store->shard.make_checkpoint();
    if (!ckpt) return rpc::Status::kInternal;
    resp.blob = service::encode_checkpoint(*ckpt);
    resp.seqs.assign(store->seqs.begin(), store->seqs.end());
  }
  std::sort(resp.seqs.begin(), resp.seqs.end());
  if (resp.blob.size() > kMaxStateBlobBytes) return rpc::Status::kInternal;
  resp.encode(body);
  return rpc::Status::kOk;
}

rpc::Status ManagerNode::handle_colluder_set(rpc::Reader& r,
                                             std::string& body) {
  const auto req = MgrColluderSetRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  // Wire-supplied verdicts: every flagged id is an index into the
  // ownership map, so an id outside the node space is hostile.
  for (rating::NodeId id : req->flagged)
    if (id >= config_.service.num_nodes)
      return rpc::Status::kInvalidArgument;
  using SuppressionMode = managers::CentralizedManager::SuppressionMode;
  std::uint64_t completed = 0;
  {
    const util::MutexLock lock(state_mu_);
    // Validate the epoch number against the least-caught-up range before
    // touching anything: a hostile epoch_seq (e.g. 2^64-1) committed
    // verbatim would make every later legitimate epoch look like an
    // idempotent retry and wedge cluster-wide commits for good. A small
    // jump is legitimate — a holder that missed commits while
    // partitioned catches up on the next push.
    for (const auto& store : stores_) {
      const std::uint64_t have = store->shard.epochs_completed();
      if (req->epoch_seq > have && req->epoch_seq - have > kMaxEpochSkip)
        return rpc::Status::kInvalidArgument;
    }
    for (const auto& store : stores_) {
      // Idempotent: a coordinator retry of an epoch the range already
      // committed is acknowledged without replaying.
      if (req->epoch_seq <= store->shard.epochs_completed()) {
        completed = std::max(completed, store->shard.epochs_completed());
        continue;
      }
      // Replay the single-process global epoch's exact mutation sequence
      // (service.cpp run_global_epoch) on this range: update, apply
      // verdicts to owned ids, update again, close the epoch.
      store->shard.manager().update_reputations();
      std::vector<rating::NodeId> owned;
      if (config_.service.suppression != SuppressionMode::kNone &&
          !req->flagged.empty()) {
        for (rating::NodeId id : req->flagged) {
          if (map_.owner(id) != store->range) continue;
          owned.push_back(id);
          store->shard.manager().restore_detected({id});
          if (config_.service.suppression == SuppressionMode::kPin)
            store->shard.engine().suppress(id);
          else
            store->shard.engine().reset_reputation(id);
        }
        store->shard.manager().update_reputations();
      } else {
        for (rating::NodeId id : req->flagged)
          if (map_.owner(id) == store->range) owned.push_back(id);
      }
      store->shard.finish_global_epoch(req->epoch_seq, owned, std::string());
      // The epoch commit is the durable point: checkpoint + rotate keeps
      // each range's WAL a pure post-epoch rating stream.
      if (!config_.data_dir.empty() &&
          store->shard.checkpoint_and_rotate(range_ckpt_path(store->range)))
        checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
      completed = std::max(completed, req->epoch_seq);
    }
  }
  MgrColluderSetResponse resp;
  resp.epochs_completed = completed;
  resp.encode(body);
  return rpc::Status::kOk;
}

rpc::Status ManagerNode::handle_ring_info(std::string& body) {
  MgrRingInfoResponse resp;
  resp.replication = config_.replication;
  resp.num_nodes = config_.service.num_nodes;
  resp.members.reserve(config_.ring.size());
  for (std::size_t i = 0; i < config_.ring.size(); ++i) {
    MgrRingInfoResponse::Member m;
    m.host = config_.ring[i].host;
    m.port = i == config_.index ? bound_port_ : config_.ring[i].port;
    m.alive = i == config_.index
                  ? 1
                  : (peers_[i]->alive.load(std::memory_order_relaxed) ? 1
                                                                      : 0);
    resp.members.push_back(std::move(m));
  }
  resp.encode(body);
  return rpc::Status::kOk;
}

rpc::Status ManagerNode::handle_rejoin(rpc::Reader& r, std::string&,
                                       std::size_t* rejoined_peer) {
  const auto req = MgrRejoinRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  if (req->index >= config_.ring.size() || req->index == config_.index)
    return rpc::Status::kInvalidArgument;
  peers_[req->index]->alive.store(true, std::memory_order_relaxed);
  if (rejoined_peer != nullptr) *rejoined_peer = req->index;
  return rpc::Status::kOk;
}

rpc::Status ManagerNode::handle_resync_hint(rpc::Reader& r, std::string&) {
  const auto req = MgrResyncHintRequest::decode(r);
  if (!req || !r.done()) return rpc::Status::kInvalidArgument;
  if (!holds(req->range)) return rpc::Status::kInvalidArgument;
  return resync_range(req->range, 0, /*wholesale=*/false)
             ? rpc::Status::kOk
             : rpc::Status::kInternal;
}

rpc::Status ManagerNode::handle_get_metrics(std::string& body) {
  rpc::GetMetricsResponse resp;
  resp.metrics = metrics_snapshot();
  resp.encode(body);
  return rpc::Status::kOk;
}

service::ServiceMetrics ManagerNode::metrics_snapshot() {
  service::ServiceMetrics m;
  {
    const util::MutexLock lock(state_mu_);
    for (const auto& store : stores_) {
      m.ratings_applied += store->shard.applied_total();
      m.epochs_completed =
          std::max(m.epochs_completed, store->shard.epochs_completed());
      m.wal_records += store->shard.wal_records();
      m.wal_bytes += store->shard.wal_bytes();
      m.matrix_bytes += store->shard.matrix_resident_bytes();
    }
  }
  m.ratings_accepted = m.ratings_applied;
  m.current_shard_count = config_.ring.size();
  m.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  m.cluster_owned_keys = owned_keys_;
  m.cluster_replica_lag = replica_lag_.load(std::memory_order_relaxed);
  m.cluster_forwards = forwards_.load(std::memory_order_relaxed);
  m.cluster_failovers = failovers_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace p2prep::cluster
