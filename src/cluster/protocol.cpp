#include "cluster/protocol.h"

namespace p2prep::cluster {

using rpc::put_u8;
using rpc::put_u16;
using rpc::put_u32;
using rpc::put_u64;

void MgrInsertRequest::encode(std::string& out) const {
  put_u64(out, source);
  put_u64(out, seq);
  put_u8(out, forwarded);
  rpc::put_rating(out, rating);
}

std::optional<MgrInsertRequest> MgrInsertRequest::decode(rpc::Reader& r) {
  MgrInsertRequest req;
  if (!r.get_u64(req.source) || !r.get_u64(req.seq) ||
      !r.get_u8(req.forwarded) || !rpc::get_rating(r, req.rating))
    return std::nullopt;
  if (req.forwarded > 1) return std::nullopt;
  return req;
}

void MgrInsertResponse::encode(std::string& out) const {
  put_u8(out, duplicate);
}

std::optional<MgrInsertResponse> MgrInsertResponse::decode(rpc::Reader& r) {
  MgrInsertResponse resp;
  if (!r.get_u8(resp.duplicate)) return std::nullopt;
  if (resp.duplicate > 1) return std::nullopt;
  return resp;
}

void MgrReplicateRequest::encode(std::string& out) const {
  put_u32(out, range);
  put_u64(out, source);
  put_u64(out, seq);
  rpc::put_rating(out, rating);
}

std::optional<MgrReplicateRequest> MgrReplicateRequest::decode(
    rpc::Reader& r) {
  MgrReplicateRequest req;
  if (!r.get_u32(req.range) || !r.get_u64(req.source) ||
      !r.get_u64(req.seq) || !rpc::get_rating(r, req.rating))
    return std::nullopt;
  return req;
}

void MgrStatePullRequest::encode(std::string& out) const {
  put_u32(out, range);
}

std::optional<MgrStatePullRequest> MgrStatePullRequest::decode(
    rpc::Reader& r) {
  MgrStatePullRequest req;
  if (!r.get_u32(req.range)) return std::nullopt;
  return req;
}

void MgrStatePullResponse::encode(std::string& out) const {
  put_u32(out, range);
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.append(blob);
  put_u32(out, static_cast<std::uint32_t>(seqs.size()));
  for (const auto& [source, seq] : seqs) {
    put_u64(out, source);
    put_u64(out, seq);
  }
}

std::optional<MgrStatePullResponse> MgrStatePullResponse::decode(
    rpc::Reader& r) {
  MgrStatePullResponse resp;
  std::uint32_t blob_len = 0;
  if (!r.get_u32(resp.range) || !r.get_u32(blob_len)) return std::nullopt;
  if (blob_len > kMaxStateBlobBytes || blob_len > r.remaining())
    return std::nullopt;
  if (!r.get_bytes(resp.blob, blob_len)) return std::nullopt;
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return std::nullopt;
  if (count > kMaxSeqEntries ||
      static_cast<std::size_t>(count) * 16 > r.remaining())
    return std::nullopt;
  resp.seqs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t source = 0;
    std::uint64_t seq = 0;
    if (!r.get_u64(source) || !r.get_u64(seq)) return std::nullopt;
    resp.seqs.emplace_back(source, seq);
  }
  return resp;
}

void MgrColluderSetRequest::encode(std::string& out) const {
  put_u64(out, epoch_seq);
  put_u32(out, static_cast<std::uint32_t>(flagged.size()));
  for (rating::NodeId id : flagged) put_u32(out, id);
}

std::optional<MgrColluderSetRequest> MgrColluderSetRequest::decode(
    rpc::Reader& r) {
  MgrColluderSetRequest req;
  std::uint32_t count = 0;
  if (!r.get_u64(req.epoch_seq) || !r.get_u32(count)) return std::nullopt;
  if (count > rpc::kMaxColluderIds ||
      static_cast<std::size_t>(count) * 4 > r.remaining())
    return std::nullopt;
  req.flagged.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    rating::NodeId id = 0;
    if (!r.get_u32(id)) return std::nullopt;
    req.flagged.push_back(id);
  }
  return req;
}

void MgrColluderSetResponse::encode(std::string& out) const {
  put_u64(out, epochs_completed);
}

std::optional<MgrColluderSetResponse> MgrColluderSetResponse::decode(
    rpc::Reader& r) {
  MgrColluderSetResponse resp;
  if (!r.get_u64(resp.epochs_completed)) return std::nullopt;
  return resp;
}

void MgrRingInfoResponse::encode(std::string& out) const {
  put_u32(out, replication);
  put_u64(out, num_nodes);
  put_u32(out, static_cast<std::uint32_t>(members.size()));
  for (const Member& m : members) {
    put_u16(out, static_cast<std::uint16_t>(m.host.size()));
    out.append(m.host);
    put_u16(out, m.port);
    put_u8(out, m.alive);
  }
}

std::optional<MgrRingInfoResponse> MgrRingInfoResponse::decode(
    rpc::Reader& r) {
  MgrRingInfoResponse resp;
  std::uint32_t count = 0;
  if (!r.get_u32(resp.replication) || !r.get_u64(resp.num_nodes) ||
      !r.get_u32(count))
    return std::nullopt;
  // Each member is at least 5 bytes (empty host); the count guard bounds
  // the reserve before any member is parsed.
  if (count > kMaxManagers ||
      static_cast<std::size_t>(count) * 5 > r.remaining())
    return std::nullopt;
  resp.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Member m;
    std::uint16_t host_len = 0;
    if (!r.get_u16(host_len)) return std::nullopt;
    if (host_len > kMaxHostBytes || host_len > r.remaining())
      return std::nullopt;
    if (!r.get_bytes(m.host, host_len)) return std::nullopt;
    if (!r.get_u16(m.port) || !r.get_u8(m.alive)) return std::nullopt;
    if (m.alive > 1) return std::nullopt;
    resp.members.push_back(std::move(m));
  }
  return resp;
}

void MgrRejoinRequest::encode(std::string& out) const {
  put_u32(out, index);
}

std::optional<MgrRejoinRequest> MgrRejoinRequest::decode(rpc::Reader& r) {
  MgrRejoinRequest req;
  if (!r.get_u32(req.index)) return std::nullopt;
  return req;
}

void MgrResyncHintRequest::encode(std::string& out) const {
  put_u32(out, range);
}

std::optional<MgrResyncHintRequest> MgrResyncHintRequest::decode(
    rpc::Reader& r) {
  MgrResyncHintRequest req;
  if (!r.get_u32(req.range)) return std::nullopt;
  return req;
}

}  // namespace p2prep::cluster
