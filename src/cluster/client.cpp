#include "cluster/client.h"

#include <stdexcept>
#include <utility>

namespace p2prep::cluster {

ClusterClient::ClusterClient(ClusterClientConfig config)
    : config_(std::move(config)),
      map_(config_.ring.size(), config_.num_nodes) {
  if (!config_.valid())
    throw std::invalid_argument("cluster client: invalid configuration");
  clients_.resize(config_.ring.size());
}

std::optional<ClusterClientConfig> ClusterClient::discover(
    const ManagerEndpoint& entry, std::uint32_t connect_timeout_ms,
    std::uint32_t request_timeout_ms) {
  rpc::RpcClientConfig cc;
  cc.host = entry.host;
  cc.port = entry.port;
  cc.connect_timeout_ms = connect_timeout_ms;
  cc.request_timeout_ms = request_timeout_ms;
  cc.max_frame_bytes = kClusterMaxFrameBytes;
  rpc::RpcClient client(cc);
  if (!client.connect()) return std::nullopt;
  std::string body;
  const rpc::CallResult res =
      client.call_raw(rpc::MsgType::kMgrRingInfo, std::string(), &body);
  if (!res.ok || res.status != rpc::Status::kOk) return std::nullopt;
  rpc::Reader reader(body);
  const auto info = MgrRingInfoResponse::decode(reader);
  if (!info) return std::nullopt;
  ClusterClientConfig out;
  out.replication = info->replication;
  out.num_nodes = static_cast<std::size_t>(info->num_nodes);
  out.connect_timeout_ms = connect_timeout_ms;
  out.request_timeout_ms = request_timeout_ms;
  out.ring.reserve(info->members.size());
  for (const auto& m : info->members)
    out.ring.push_back(ManagerEndpoint{m.host, m.port});
  if (!out.valid()) return std::nullopt;
  return out;
}

std::vector<std::size_t> ClusterClient::holders_of(std::size_t range) const {
  std::vector<std::size_t> holders;
  holders.reserve(config_.replication);
  for (std::uint32_t i = 0; i < config_.replication; ++i)
    holders.push_back((range + i) % config_.ring.size());
  return holders;
}

rpc::CallResult ClusterClient::call(std::size_t idx, rpc::MsgType type,
                                    const std::string& body,
                                    std::string* body_out) {
  if (!clients_[idx]) {
    rpc::RpcClientConfig cc;
    cc.host = config_.ring[idx].host;
    cc.port = config_.ring[idx].port;
    cc.connect_timeout_ms = config_.connect_timeout_ms;
    cc.request_timeout_ms = config_.request_timeout_ms;
    cc.max_frame_bytes = kClusterMaxFrameBytes;
    clients_[idx] = std::make_unique<rpc::RpcClient>(cc);
  }
  rpc::RpcClient& client = *clients_[idx];
  if (!client.connected()) {
    std::string err;
    if (!client.connect(&err)) {
      rpc::CallResult res;
      res.ok = false;
      res.error = "connect to manager " + std::to_string(idx) + ": " + err;
      return res;
    }
  }
  return client.call_raw(type, body, body_out);
}

bool ClusterClient::insert(const rating::Rating& r, bool* duplicate) {
  const std::size_t range = map_.owner(r.ratee);
  MgrInsertRequest req;
  req.source = config_.source;
  req.seq = next_seq_++;
  req.forwarded = 0;
  req.rating = r;
  std::string body;
  req.encode(body);
  bool primary_try = true;
  for (std::size_t h : holders_of(range)) {
    std::string resp_body;
    const rpc::CallResult res =
        call(h, rpc::MsgType::kMgrInsert, body, &resp_body);
    if (!res.ok) {
      primary_try = false;
      continue;
    }
    if (res.status != rpc::Status::kOk) return false;
    rpc::Reader reader(resp_body);
    const auto resp = MgrInsertResponse::decode(reader);
    if (!resp) return false;
    if (!primary_try) failovers_.fetch_add(1, std::memory_order_relaxed);
    if (duplicate) *duplicate = resp->duplicate != 0;
    return true;
  }
  return false;
}

bool ClusterClient::query(rating::NodeId node,
                          rpc::QueryReputationResponse* out) {
  const std::size_t range = map_.owner(node);
  rpc::QueryReputationRequest req;
  req.node = node;
  std::string body;
  req.encode(body);
  for (std::size_t h : holders_of(range)) {
    std::string resp_body;
    const rpc::CallResult res =
        call(h, rpc::MsgType::kQueryReputation, body, &resp_body);
    if (!res.ok) continue;
    if (res.status != rpc::Status::kOk) return false;
    rpc::Reader reader(resp_body);
    const auto resp = rpc::QueryReputationResponse::decode(reader);
    if (!resp) return false;
    if (out) *out = *resp;
    return true;
  }
  return false;
}

std::optional<MgrStatePullResponse> ClusterClient::pull_state(
    std::size_t range) {
  MgrStatePullRequest req;
  req.range = static_cast<std::uint32_t>(range);
  std::string body;
  req.encode(body);
  for (std::size_t h : holders_of(range)) {
    std::string resp_body;
    const rpc::CallResult res =
        call(h, rpc::MsgType::kMgrStatePull, body, &resp_body);
    if (!res.ok || res.status != rpc::Status::kOk) continue;
    rpc::Reader reader(resp_body);
    auto resp = MgrStatePullResponse::decode(reader);
    if (resp) return resp;
  }
  return std::nullopt;
}

bool ClusterClient::push_colluders(
    std::uint64_t epoch_seq, const std::vector<rating::NodeId>& flagged) {
  MgrColluderSetRequest req;
  req.epoch_seq = epoch_seq;
  req.flagged = flagged;
  std::string body;
  req.encode(body);
  bool all_ok = true;
  for (std::size_t i = 0; i < config_.ring.size(); ++i) {
    std::string resp_body;
    const rpc::CallResult res =
        call(i, rpc::MsgType::kMgrColluderSet, body, &resp_body);
    if (!res.ok || res.status != rpc::Status::kOk) all_ok = false;
  }
  return all_ok;
}

bool ClusterClient::get_metrics(std::size_t index,
                                service::ServiceMetrics* out) {
  if (index >= config_.ring.size()) return false;
  std::string resp_body;
  const rpc::CallResult res =
      call(index, rpc::MsgType::kGetMetrics, std::string(), &resp_body);
  if (!res.ok || res.status != rpc::Status::kOk) return false;
  rpc::Reader reader(resp_body);
  const auto resp = rpc::GetMetricsResponse::decode(reader);
  if (!resp) return false;
  if (out) *out = resp->metrics;
  return true;
}

}  // namespace p2prep::cluster
