#include "cluster/backend.h"

#include <string>
#include <utility>

namespace p2prep::cluster {

std::shared_ptr<service::ClusterBackend> make_cluster_backend(
    const ClusterBackendConfig& config) {
  struct State {
    std::vector<std::unique_ptr<ClusterClient>> workers;
    std::unique_ptr<ClusterClient> admin;
  };
  auto state = std::make_shared<State>();
  ClusterClientConfig cc;
  cc.ring = config.ring;
  cc.replication = config.replication;
  cc.num_nodes = config.num_nodes;
  cc.connect_timeout_ms = config.connect_timeout_ms;
  cc.request_timeout_ms = config.request_timeout_ms;
  state->workers.reserve(config.ring.size());
  for (std::size_t i = 0; i < config.ring.size(); ++i) {
    cc.source = config.source_base + i;
    state->workers.push_back(std::make_unique<ClusterClient>(cc));
  }
  cc.source = config.source_base + config.ring.size();
  state->admin = std::make_unique<ClusterClient>(cc);

  auto backend = std::make_shared<service::ClusterBackend>();
  backend->forward = [state](std::size_t shard, const rating::Rating& r) {
    if (shard >= state->workers.size()) return false;
    return state->workers[shard]->insert(r);
  };
  backend->pull = [state](std::size_t range) {
    auto resp = state->admin->pull_state(range);
    return resp ? std::move(resp->blob) : std::string();
  };
  backend->push = [state](std::uint64_t seq,
                          const std::vector<rating::NodeId>& flagged) {
    return state->admin->push_colluders(seq, flagged);
  };
  backend->failovers = [state] {
    std::uint64_t total = state->admin->failovers();
    for (const auto& w : state->workers) total += w->failovers();
    return total;
  };
  return backend;
}

}  // namespace p2prep::cluster
