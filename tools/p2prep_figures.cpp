// Renders the paper's evaluation figures as SVG files.
//
//   p2prep_figures --out DIR [--runs N] [--quick]
//
// Produces fig5/6/7/8/10/11 reputation bar charts (first 20 nodes, as the
// paper's (b) panels) and the fig12/fig13 sweep line charts. The bench_*
// binaries print the same data as text; this tool draws it.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/experiment.h"
#include "util/svg.h"

namespace {

using namespace p2prep;

core::DetectorConfig sim_detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

bool reputation_chart(const std::string& path, const std::string& title,
                      const net::ExperimentResult& result,
                      std::size_t first_k = 20) {
  util::SvgChart chart(title, "node id (paper numbering)",
                       "avg reputation");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t id = 0; id < first_k && id < result.avg_reputation.size();
       ++id) {
    labels.push_back(std::to_string(id + 1));
    values.push_back(result.avg_reputation[id]);
  }
  chart.set_categories(std::move(labels));
  chart.add_bar_series("avg reputation", std::move(values));
  return chart.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::size_t runs = 5;
  std::size_t cycles = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      runs = 2;
      cycles = 8;
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR] [--runs N] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  auto spec_for = [&](double b, const net::NodeRoles& roles,
                      net::DetectorKind detector) {
    net::ExperimentSpec spec;
    spec.config.colluder_good_prob = b;
    spec.config.sim_cycles = cycles;
    spec.roles = roles;
    spec.engine = net::EngineKind::kWeighted;
    spec.detector = detector;
    spec.detector_config = sim_detector_config();
    spec.runs = runs;
    return spec;
  };
  auto emit = [&](const std::string& name, const std::string& title,
                  const net::ExperimentSpec& spec) {
    const auto result = net::run_experiment(spec);
    const std::string path = out_dir + "/" + name + ".svg";
    if (!reputation_chart(path, title, result)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };

  bool ok = true;
  ok &= emit("fig5", "Fig.5 EigenTrust, B=0.6",
             spec_for(0.6, net::paper_roles(8, 3), net::DetectorKind::kNone));
  ok &= emit("fig6", "Fig.6 EigenTrust, B=0.2",
             spec_for(0.2, net::paper_roles(8, 3), net::DetectorKind::kNone));
  ok &= emit("fig7", "Fig.7 EigenTrust, compromised pretrusted",
             spec_for(0.2, net::compromised_roles(),
                      net::DetectorKind::kNone));
  ok &= emit("fig8", "Fig.8 Detection alone, B=0.2",
             spec_for(0.2, net::fig8_roles(8),
                      net::DetectorKind::kOptimized));
  ok &= emit("fig9", "Fig.9 EigenTrust+Optimized, B=0.6",
             spec_for(0.6, net::paper_roles(8, 3),
                      net::DetectorKind::kOptimized));
  ok &= emit("fig10", "Fig.10 EigenTrust+Optimized, B=0.2",
             spec_for(0.2, net::paper_roles(8, 3),
                      net::DetectorKind::kOptimized));
  ok &= emit("fig11", "Fig.11 EigenTrust+Optimized, compromised pretrusted",
             spec_for(0.2, net::compromised_roles(),
                      net::DetectorKind::kOptimized));

  // Fig. 12 / 13 sweeps.
  std::vector<double> xs;
  std::vector<double> et_pct;
  std::vector<double> unopt_pct;
  std::vector<double> opt_pct;
  std::vector<double> et_cost;
  std::vector<double> unopt_cost;
  std::vector<double> opt_cost;
  for (std::size_t colluders : {8u, 18u, 28u, 38u, 48u, 58u}) {
    xs.push_back(static_cast<double>(colluders));
    auto spec = spec_for(0.2, net::paper_roles(colluders, 3),
                         net::DetectorKind::kNone);
    spec.engine = net::EngineKind::kEigenTrust;
    const auto et = net::run_experiment(spec);
    et_pct.push_back(et.avg_percent_to_colluders);
    et_cost.push_back(et.avg_engine_cost);

    spec.engine = net::EngineKind::kWeighted;
    spec.detector = net::DetectorKind::kBasic;
    const auto unopt = net::run_experiment(spec);
    unopt_pct.push_back(unopt.avg_percent_to_colluders);
    unopt_cost.push_back(unopt.avg_detector_cost);

    spec.detector = net::DetectorKind::kOptimized;
    const auto opt = net::run_experiment(spec);
    opt_pct.push_back(opt.avg_percent_to_colluders);
    opt_cost.push_back(opt.avg_detector_cost);
  }

  {
    util::SvgChart chart("Fig.12 requests sent to colluders", "colluders",
                         "% of requests");
    chart.add_line_series("EigenTrust", xs, et_pct);
    chart.add_line_series("Unoptimized", xs, unopt_pct);
    chart.add_line_series("Optimized", xs, opt_pct);
    const std::string path = out_dir + "/fig12.svg";
    ok &= chart.write_file(path);
    std::printf("wrote %s\n", path.c_str());
  }
  {
    util::SvgChart chart("Fig.13 operation cost", "colluders",
                         "work units (log)");
    chart.set_log_y(true);
    chart.add_line_series("EigenTrust", xs, et_cost);
    chart.add_line_series("Unoptimized", xs, unopt_cost);
    chart.add_line_series("Optimized", xs, opt_cost);
    const std::string path = out_dir + "/fig13.svg";
    ok &= chart.write_file(path);
    std::printf("wrote %s\n", path.c_str());
  }

  return ok ? 0 : 1;
}
