#!/usr/bin/env python3
"""Cluster smoke test (ctest `ClusterSmoke`, CI job `cluster-smoke`).

Boots a real 3-manager M=2 cluster as separate `p2prep_cli manager`
processes on loopback, replays one seeded overstock trace through
`serve-replay --cluster-ring`, replays the same trace through the plain
single-process global-scope service at the same shard count, and requires
the suspected sets and detection reports to match byte for byte — the
multi-process deployment may not change a byte of detection output.

Usage: cluster_smoke.py <path-to-p2prep_cli>
"""
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

RING_SIZE = 3
REPLICATION = 2


def reserve_port():
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def wait_port(port, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), 0.2).close()
            return True
        except OSError:
            time.sleep(0.05)
    return False


def detection_tail(output):
    """Everything from the 'suspected:' line on: the suspected set and the
    per-epoch detection reports. The metrics block above it legitimately
    differs (cluster gauges, forward counters)."""
    idx = output.find("suspected:")
    if idx < 0:
        raise SystemExit("serve-replay output has no 'suspected:' line:\n"
                         + output)
    return output[idx:]


def main():
    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} <path-to-p2prep_cli>")
    cli = sys.argv[1]
    work = tempfile.mkdtemp(prefix="p2prep_cluster_smoke_")
    managers = []
    try:
        trace = os.path.join(work, "trace.csv")
        subprocess.run(
            [cli, "trace", "overstock", "--users", "64", "--transactions",
             "1500", "--pairs", "3", "--seed", "7", "--out", trace],
            check=True)

        # The managers' key space must equal the service's (max id + 1):
        # checkpoint blobs are sized by it, and the service reloads them
        # verbatim.
        max_id = 0
        with open(trace, encoding="ascii") as f:
            next(f)  # header: rater,ratee,stars,day
            for line in f:
                rater, ratee = line.split(",")[:2]
                max_id = max(max_id, int(rater), int(ratee))
        nodes = max_id + 1

        ports = [reserve_port() for _ in range(RING_SIZE)]
        ring = ",".join(f"127.0.0.1:{p}" for p in ports)
        for i in range(RING_SIZE):
            managers.append(subprocess.Popen(
                [cli, "manager", "--index", str(i), "--ring", ring,
                 "--replication", str(REPLICATION), "--nodes", str(nodes),
                 "--data-dir", os.path.join(work, f"mgr{i}")],
                stdout=subprocess.DEVNULL))
        for i, port in enumerate(ports):
            if not wait_port(port):
                raise SystemExit(f"manager {i} never opened port {port}")

        # --one-sided: overstock is a marketplace trace (one-way ratings);
        # without it mutual-frequency gating yields zero pairs and the
        # byte-compare below would vacuously pass on empty output.
        common = [cli, "serve-replay", "--in", trace, "--from-trace",
                  "--epoch-ratings", "500", "--one-sided", "--report"]
        single = subprocess.run(
            common + ["--shards", str(RING_SIZE)],
            check=True, capture_output=True, text=True).stdout
        clustered = subprocess.run(
            common + ["--cluster-ring", ring,
                      "--replication", str(REPLICATION)],
            check=True, capture_output=True, text=True).stdout

        single_tail = detection_tail(single)
        clustered_tail = detection_tail(clustered)
        if single_tail != clustered_tail:
            sys.stderr.write("cluster-smoke: detection output diverged\n")
            sys.stderr.write("--- single-process ---\n" + single_tail)
            sys.stderr.write("--- clustered ---\n" + clustered_tail)
            return 1
        if "epoch" not in single_tail:
            sys.stderr.write("cluster-smoke: no detection report produced\n")
            return 1
        suspected = single_tail.splitlines()[0][len("suspected:"):].split()
        if not suspected:
            sys.stderr.write("cluster-smoke: suspected set is empty — the "
                             "comparison passed vacuously\n")
            return 1
        print(f"cluster-smoke: OK ({nodes} nodes, {RING_SIZE} managers, "
              f"M={REPLICATION}; detection output identical)")
        return 0
    finally:
        for proc in managers:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in managers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
