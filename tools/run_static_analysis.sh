#!/usr/bin/env bash
# Static-analysis and sanitizer gate: one command that runs the full
# correctness matrix (DESIGN.md "Static analysis & correctness tooling").
#
#   werror  GCC-or-default compiler build, -Werror on the full warning set,
#           full ctest suite
#   tsa     Clang build with -Wthread-safety -Werror=thread-safety
#           (compile-time race / lock-discipline detection) + the negative
#           compile-fail check
#   tidy    clang-tidy over every source via P2PREP_CLANG_TIDY=ON
#   lint    project-invariant linter (tools/lint/p2prep_lint.py): rule
#           self-test over the negative fixtures, then a clean-tree check
#   asan    AddressSanitizer + UndefinedBehaviorSanitizer combined build,
#           full ctest suite (UB findings are hard failures)
#   replay  fuzz-corpus replay + format-corruption sweeps under ASan+UBSan:
#           every checked-in corpus file through the fuzz targets
#           (FuzzReplay/FuzzCorpus) plus the exhaustive WAL/checkpoint
#           corruption tests — the gcc-portable half of the fuzzing story
#   fuzz    libFuzzer smoke (Clang only): each fuzz target explores from
#           the seed corpus for P2PREP_FUZZ_SECONDS (default 60) under ASan
#   tsan    ThreadSanitizer build, service concurrency stress suite
#
# Usage: tools/run_static_analysis.sh [stage ...]     (default: all stages)
#
# Environment:
#   P2PREP_BUILD_PREFIX   build dir prefix, default "<repo>/build-"
#                         (stages build in <prefix>werror, <prefix>tsa, ...)
#   P2PREP_CTEST_FILTER   ctest -R filter for werror/asan stages (default:
#                         all tests)
#   P2PREP_TSAN_FILTER    ctest -R filter for the tsan stage (default:
#                         ServiceConcurrency plus the backend-differential
#                         service tests, which race-check the sparse
#                         matrix backend's concurrent epoch path, plus
#                         RpcConcurrency — the multi-client loopback
#                         smoke of the RPC front-end — plus
#                         DetectRegistryConcurrency, which hammers the
#                         detector registry from parallel shards, plus
#                         the Reshard suites, which race-check the
#                         resize handoff against live ingest, plus
#                         OverlapStress and ParallelEpoch, which soak the
#                         parallel global epoch (multithreaded scan,
#                         detection/ingest overlap) under contention,
#                         plus the Cluster suites — the multi-threaded
#                         manager nodes, replica failover and the
#                         decentralized-manager service mode over real
#                         sockets
#   P2PREP_FUZZ_SECONDS   libFuzzer time budget per target in the fuzz
#                         stage (default: 60)
#   P2PREP_JOBS           parallel build/test jobs (default: nproc)
#   P2PREP_CLANG          clang++ to use for tsa/tidy/tsan-under-clang
#                         (default: first of clang++ in PATH)
#   CC/CXX                respected for werror/asan/tsan stages
#
# Clang-dependent stages (tsa, tidy, fuzz) are SKIPPED with a warning when
# no clang is installed, and lint is SKIPPED without python3; skipped
# stages do not fail the gate, every stage that runs must pass. Exit code
# 0 == everything that could run is green.
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_prefix="${P2PREP_BUILD_PREFIX:-${repo_root}/build-}"
jobs="${P2PREP_JOBS:-$(nproc 2>/dev/null || echo 4)}"
ctest_filter="${P2PREP_CTEST_FILTER:-}"
tsan_filter="${P2PREP_TSAN_FILTER:-ServiceConcurrency|ServiceBackendDifferential|RpcConcurrency|DetectRegistryConcurrency|Reshard|OverlapStress|ParallelEpoch|Cluster}"
clangxx="${P2PREP_CLANG:-$(command -v clang++ || true)}"
clang_tidy="$(command -v clang-tidy || true)"

stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(werror tsa tidy lint asan replay fuzz tsan)
fi

declare -A results

log() { printf '\n==== [%s] %s\n' "$1" "$2"; }

configure_build_test() {
  # configure_build_test <stage> <filter> <extra cmake args...>
  local stage="$1" filter="$2"
  shift 2
  local dir="${build_prefix}${stage}"
  log "${stage}" "configure + build in ${dir}"
  cmake -B "${dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PREP_WERROR=ON \
    -DP2PREP_BUILD_BENCH=OFF \
    -DP2PREP_BUILD_EXAMPLES=OFF \
    "$@" || return 1
  cmake --build "${dir}" -j "${jobs}" || return 1
  log "${stage}" "ctest${filter:+ -R ${filter}}"
  (cd "${dir}" &&
    ctest ${filter:+-R "${filter}"} --output-on-failure -j "${jobs}") ||
    return 1
}

run_werror() {
  configure_build_test werror "${ctest_filter}"
}

run_tsa() {
  if [[ -z "${clangxx}" ]]; then
    results[tsa]=SKIP
    echo "SKIP [tsa]: no clang++ in PATH (set P2PREP_CLANG)"
    return 0
  fi
  # Build everything with -Wthread-safety -Werror=thread-safety (enabled
  # automatically for Clang by P2PREP_THREAD_SAFETY=ON); run only the
  # StaticAnalysis tests — the full suite runs in the werror/asan stages.
  configure_build_test tsa "StaticAnalysis" \
    -DCMAKE_CXX_COMPILER="${clangxx}" \
    -DP2PREP_THREAD_SAFETY=ON
}

run_tidy() {
  if [[ -z "${clang_tidy}" || -z "${clangxx}" ]]; then
    results[tidy]=SKIP
    echo "SKIP [tidy]: clang-tidy or clang++ not in PATH"
    return 0
  fi
  local dir="${build_prefix}tidy"
  log tidy "clang-tidy build in ${dir}"
  cmake -B "${dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="${clangxx}" \
    -DP2PREP_CLANG_TIDY=ON \
    -DP2PREP_BUILD_TESTS=OFF \
    -DP2PREP_BUILD_BENCH=OFF \
    -DP2PREP_BUILD_EXAMPLES=OFF || return 1
  cmake --build "${dir}" -j "${jobs}"
}

run_lint() {
  local python3_bin
  python3_bin="$(command -v python3 || true)"
  if [[ -z "${python3_bin}" ]]; then
    results[lint]=SKIP
    echo "SKIP [lint]: no python3 in PATH"
    return 0
  fi
  log lint "rule self-test over negative fixtures"
  "${python3_bin}" "${repo_root}/tools/lint/p2prep_lint.py" --self-test ||
    return 1
  log lint "tree scan"
  "${python3_bin}" "${repo_root}/tools/lint/p2prep_lint.py" \
    --root "${repo_root}"
}

run_asan() {
  configure_build_test asan "${ctest_filter}" \
    -DP2PREP_SANITIZE="address;undefined"
}

run_replay() {
  # The portable half of the fuzzing harness: replay every checked-in
  # corpus file and run the exhaustive corruption sweeps with ASan+UBSan
  # armed, under whatever compiler is default (gcc in CI's main legs).
  configure_build_test replay \
    "FuzzReplay|FuzzCorpus|WalCorruption|CheckpointCorruption" \
    -DP2PREP_SANITIZE="address;undefined"
}

run_fuzz() {
  if [[ -z "${clangxx}" ]]; then
    results[fuzz]=SKIP
    echo "SKIP [fuzz]: no clang++ in PATH (libFuzzer needs Clang)"
    return 0
  fi
  local dir="${build_prefix}fuzz"
  local seconds="${P2PREP_FUZZ_SECONDS:-60}"
  log fuzz "libFuzzer build in ${dir}"
  cmake -B "${dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="${clangxx}" \
    -DP2PREP_FUZZERS=ON \
    -DP2PREP_SANITIZE=address \
    -DP2PREP_BUILD_BENCH=OFF \
    -DP2PREP_BUILD_EXAMPLES=OFF || return 1
  cmake --build "${dir}" -j "${jobs}" \
    --target fuzz_rpc_protocol fuzz_wal fuzz_checkpoint || return 1
  local target corpus
  for target in rpc_protocol wal checkpoint; do
    corpus="${repo_root}/fuzz/corpus/${target/rpc_protocol/rpc}"
    log fuzz "${target}: ${seconds}s from seed corpus ${corpus}"
    "${dir}/fuzz/fuzz_${target}" "${corpus}" \
      -max_total_time="${seconds}" -print_final_stats=1 || return 1
  done
}

run_tsan() {
  local dir="${build_prefix}tsan"
  log tsan "TSan build in ${dir}"
  cmake -B "${dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DP2PREP_SANITIZE=thread \
    -DP2PREP_BUILD_BENCH=OFF \
    -DP2PREP_BUILD_EXAMPLES=OFF || return 1
  cmake --build "${dir}" -j "${jobs}" --target p2prep_tests || return 1
  log tsan "ctest -R ${tsan_filter}"
  (cd "${dir}" &&
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest -R "${tsan_filter}" --output-on-failure)
}

for stage in "${stages[@]}"; do
  case "${stage}" in
    werror|tsa|tidy|lint|asan|replay|fuzz|tsan) ;;
    *)
      echo "unknown stage '${stage}' (known: werror tsa tidy lint asan" \
        "replay fuzz tsan)" >&2
      exit 2
      ;;
  esac
  if "run_${stage}"; then
    : "${results[${stage}]:=PASS}"
  else
    results[${stage}]=FAIL
  fi
done

echo
echo "==== static analysis matrix ===="
failed=0
for stage in "${stages[@]}"; do
  printf '  %-7s %s\n' "${stage}" "${results[${stage}]}"
  [[ "${results[${stage}]}" == FAIL ]] && failed=1
done
exit "${failed}"
