// p2prep command-line tool: generate traces, analyze them, run collusion
// detection over rating dumps, calibrate thresholds, and run the P2P
// simulation — the library's functionality without writing C++.
//
//   p2prep_cli trace amazon --sellers 97 --buyers 20000 --days 365 > t.csv
//   p2prep_cli trace overstock --users 100000 --pairs 60 > o.csv
//   p2prep_cli analyze --in t.csv --threshold 20
//   p2prep_cli detect --in o.csv --from-trace --tn 21 --tr 0
//   p2prep_cli calibrate --in t.csv --from-trace
//   p2prep_cli simulate --colluders 8 --cycles 20 --detector optimized
//   p2prep_cli serve-replay --in o.csv --from-trace --shards 4
//       --epoch-ratings 4096 --wal-dir /tmp/p2prep-wal --report
//   p2prep_cli serve --listen 7400 --nodes 100000 --shards 4
//       --wal-dir /tmp/p2prep-wal          # SIGINT/SIGTERM drain + exit
//   p2prep_cli rate --port 7400 --rater 3 --ratee 9 --score 1
//   p2prep_cli query --port 7400 --node 9
//   p2prep_cli metrics --port 7400
//   p2prep_cli manager --index 0 --ring 127.0.0.1:7500,127.0.0.1:7501
//       --replication 2 --nodes 1000 --data-dir /tmp/mgr0
//   p2prep_cli serve-replay --in o.csv --from-trace
//       --cluster-ring 127.0.0.1:7500,127.0.0.1:7501 --replication 2
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.h"
#include "cluster/manager_node.h"
#include "core/calibration.h"
#include "detect/registry.h"
#include "detect/snapshot.h"
#include "net/experiment.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "service/service.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "trace/amazon.h"
#include "trace/analysis.h"
#include "trace/io.h"
#include "trace/overstock.h"
#include "util/table.h"

namespace {

using namespace p2prep;

/// Set by SIGINT/SIGTERM; serve and serve-replay poll it and drain
/// (connections, ingest queues, WAL) instead of dying mid-stream.
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void handle_shutdown_signal(int sig) { g_shutdown_signal = sig; }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// --flag value parser; flags without '--' prefix are positional.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[key] = argv[++i];
        } else {
          flags_[key] = "1";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                         nullptr, 10);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback
                              : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags_.contains(key);
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

int usage() {
  std::fprintf(stderr,
               "usage: p2prep_cli <command> [flags]\n"
               "  trace amazon|overstock [--seed N] [--out FILE] ...\n"
               "  analyze   --in FILE [--threshold N] [--days N]\n"
               "  detect    --in FILE [--from-trace] [--method basic|"
               "optimized|group|ring]\n"
               "            [--ta F] [--tb F] [--tn N] [--tr F] "
               "[--one-sided]\n"
               "  calibrate --in FILE [--from-trace]\n"
               "  simulate  [--nodes N] [--colluders N] [--cycles N] "
               "[--b F]\n"
               "            [--engine weighted|eigentrust|summation|"
               "peertrust|gossiptrust]\n"
               "            [--detector none|basic|optimized] [--runs N] "
               "[--seed N]\n"
               "            [--attack none|sybil|traitor|whitewash] "
               "[--one-way] [--camouflage F]\n"
               "            [--churn-leave F] [--churn-rejoin F]\n"
               "  serve-replay --in FILE [--from-trace] [--shards N]\n"
               "            [--scope global|per-shard] [--epoch-ratings N] "
               "[--epoch-ticks N]\n"
               "            [--detector basic|optimized|group|ring] "
               "[--matrix-backend dense|sparse]\n"
               "            [--wal-dir DIR] [--checkpoint-every N]\n"
               "            [--queue N] [--drop-oldest] [--report]\n"
               "            [--ta F] [--tb F] [--tn N] [--tr F] "
               "[--one-sided]\n"
               "  serve     --listen PORT [--bind ADDR] [--nodes N] "
               "[--in FILE [--from-trace]]\n"
               "            [--rpc-workers N] [--max-conn N] "
               "[--max-inflight N]\n"
               "            [--idle-timeout-ms N] [--request-timeout-ms N] "
               "[--shed-backoff-ms N]\n"
               "            [--stats-every SECS] + serve-replay service "
               "flags\n"
               "  rate      --port PORT [--host H] --rater N --ratee N "
               "[--score -1|0|1] [--tick N]\n"
               "  query     --port PORT [--host H] --node N | --colluders\n"
               "  metrics   --port PORT [--host H]\n"
               "  resize    --port PORT [--host H] --shards N "
               "[--timeout-ms N]\n"
               "  manager   --index I --ring H:P,H:P,... [--replication M] "
               "--nodes N\n"
               "            [--data-dir DIR] [--bind ADDR] [--port P] "
               "[--detector basic|optimized]\n"
               "            [--epoch-ratings N] [--latency-ms F "
               "--latency-jitter-ms F]\n"
               "  serve-replay also accepts --cluster-ring H:P,H:P,... "
               "[--replication M]\n"
               "            to back the shards with a running manager "
               "cluster\n");
  return 2;
}

/// Loads a ratings vector from --in, converting a 5-star trace when
/// --from-trace is given. Returns false (with a message) on failure.
bool load_ratings(const Args& args, std::vector<rating::Rating>& out) {
  const std::string path = args.get("in");
  if (path.empty()) {
    std::fprintf(stderr, "error: --in FILE is required\n");
    return false;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  if (args.has("from-trace")) {
    const auto parsed = trace::read_trace_csv(in);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(),
                   parsed.error.line, parsed.error.message.c_str());
      return false;
    }
    out = trace::to_ratings(*parsed.value);
  } else {
    const auto parsed = trace::read_ratings_csv(in);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(),
                   parsed.error.line, parsed.error.message.c_str());
      return false;
    }
    out = *parsed.value;
  }
  return true;
}

rating::RatingStore build_store(const std::vector<rating::Rating>& ratings) {
  rating::NodeId max_id = 0;
  for (const auto& r : ratings) max_id = std::max({max_id, r.rater, r.ratee});
  rating::RatingStore store(static_cast<std::size_t>(max_id) + 1);
  for (const auto& r : ratings) store.ingest(r);
  return store;
}

int cmd_trace(const Args& args) {
  if (args.positional().empty()) return usage();
  const std::string kind = args.positional()[0];

  std::ofstream file;
  std::ostream* os = &std::cout;
  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }

  if (kind == "amazon") {
    trace::AmazonTraceConfig config;
    config.num_sellers = args.get_u64("sellers", config.num_sellers);
    config.num_buyers = args.get_u64("buyers", config.num_buyers);
    config.days = args.get_u64("days", config.days);
    config.num_suspicious_sellers =
        args.get_u64("suspicious", config.num_suspicious_sellers);
    config.seed = args.get_u64("seed", config.seed);
    const auto tr = trace::generate_amazon_trace(config);
    trace::write_trace_csv(*os, tr.ratings);
    std::fprintf(stderr, "wrote %zu ratings (%zu suspicious sellers)\n",
                 tr.ratings.size(), tr.truth.suspicious_sellers.size());
    return 0;
  }
  if (kind == "overstock") {
    trace::OverstockTraceConfig config;
    config.num_users = args.get_u64("users", config.num_users);
    config.num_transactions =
        args.get_u64("transactions", config.num_transactions);
    config.num_collusion_pairs = args.get_u64("pairs",
                                              config.num_collusion_pairs);
    config.days = args.get_u64("days", config.days);
    config.seed = args.get_u64("seed", config.seed);
    const auto tr = trace::generate_overstock_trace(config);
    trace::write_trace_csv(*os, tr.ratings);
    std::fprintf(stderr, "wrote %zu ratings (%zu colluding pairs)\n",
                 tr.ratings.size(), tr.truth.collusion_pairs.size());
    return 0;
  }
  return usage();
}

int cmd_analyze(const Args& args) {
  const std::string path = args.get("in");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 1;
  }
  const auto parsed = trace::read_trace_csv(in);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(),
                 parsed.error.line, parsed.error.message.c_str());
    return 1;
  }
  const trace::Trace& tr = *parsed.value;
  const auto threshold =
      static_cast<std::uint32_t>(args.get_u64("threshold", 20));

  const auto summary = trace::find_suspicious(tr, threshold);
  std::printf("%zu ratings; frequent-pair filter (>= %u): %zu pairs, "
              "%zu ratees, %zu raters\n",
              tr.size(), threshold, summary.pairs.size(),
              summary.sellers.size(), summary.raters.size());
  util::Table table({"rater", "ratee", "count", "positive", "negative"});
  for (std::size_t i = 0; i < summary.pairs.size() && i < 20; ++i) {
    const auto& p = summary.pairs[i];
    table.add_row({util::Table::num(std::uint64_t{p.rater}),
                   util::Table::num(std::uint64_t{p.ratee}),
                   util::Table::num(std::uint64_t{p.count}),
                   util::Table::num(std::uint64_t{p.positive}),
                   util::Table::num(std::uint64_t{p.negative})});
  }
  std::printf("%s", table.render().c_str());

  const auto graph = trace::build_interaction_graph(tr, threshold);
  std::printf("interaction graph (> %u ratings/pair): %zu nodes, %zu edges, "
              "%zu components, %zu triangles, pairwise-only=%s\n",
              threshold, graph.node_count(), graph.edge_count(),
              graph.components().size(), graph.triangle_count(),
              graph.pairwise_only() ? "yes" : "no");
  return 0;
}

core::DetectorConfig detector_config_from(const Args& args) {
  core::DetectorConfig dc;
  dc.positive_fraction_min = args.get_double("ta", dc.positive_fraction_min);
  dc.complement_fraction_max =
      args.get_double("tb", dc.complement_fraction_max);
  dc.frequency_min =
      static_cast<std::uint32_t>(args.get_u64("tn", dc.frequency_min));
  dc.high_rep_threshold = args.get_double("tr", dc.high_rep_threshold);
  dc.require_mutual = !args.has("one-sided");
  return dc;
}

int cmd_detect(const Args& args) {
  std::vector<rating::Rating> ratings;
  if (!load_ratings(args, ratings)) return 1;
  const rating::RatingStore store = build_store(ratings);

  const core::DetectorConfig dc = detector_config_from(args);
  std::vector<double> reps(store.num_nodes());
  for (rating::NodeId i = 0; i < store.num_nodes(); ++i)
    reps[i] = static_cast<double>(store.window_totals(i).reputation_delta());
  const auto matrix =
      rating::RatingMatrix::build(store, reps, dc.high_rep_threshold,
                                  dc.frequency_min);

  const std::string method = args.get("method", "optimized");
  std::unique_ptr<detect::Detector> detector;
  try {
    detector = detect::DetectorRegistry::global().create(method, dc);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  core::DetectionReport report;
  detector->on_epoch(detect::EpochSnapshot::of(matrix), report);
  std::printf("%zu colluding pair(s), %zu ring(s), cost %llu work units\n",
              report.pairs.size(), report.rings.size(),
              static_cast<unsigned long long>(report.cost.total()));
  for (const auto& pair : report.pairs)
    std::printf("  %s\n", pair.to_string().c_str());
  for (const auto& ring : report.rings)
    std::printf("  %s\n", ring.to_string().c_str());
  return 0;
}

int cmd_calibrate(const Args& args) {
  std::vector<rating::Rating> ratings;
  if (!load_ratings(args, ratings)) return 1;
  const rating::RatingStore store = build_store(ratings);
  const core::CalibrationReport r = core::calibrate_thresholds(store);
  std::printf("pairs=%llu frequent=%llu mean_count=%.2f max_count=%.0f\n"
              "global_pos=%.4f frequent_pos=%.4f frequent_complement=%.4f\n"
              "suggested: --tn %u --ta %.4f --tb %.4f\n",
              static_cast<unsigned long long>(r.rated_pairs),
              static_cast<unsigned long long>(r.frequent_pairs),
              r.mean_pair_count, r.max_pair_count,
              r.global_positive_fraction, r.frequent_positive_fraction,
              r.frequent_complement_fraction, r.suggested.frequency_min,
              r.suggested.positive_fraction_min,
              r.suggested.complement_fraction_max);
  return 0;
}

int cmd_simulate(const Args& args) {
  net::ExperimentSpec spec;
  spec.config.num_nodes = args.get_u64("nodes", 200);
  spec.config.sim_cycles = args.get_u64("cycles", 20);
  spec.config.colluder_good_prob = args.get_double("b", 0.2);
  spec.config.seed = args.get_u64("seed", spec.config.seed);
  spec.runs = args.get_u64("runs", 5);
  spec.roles = net::paper_roles(args.get_u64("colluders", 8),
                                args.get_u64("pretrusted", 3));

  const std::string engine = args.get("engine", "weighted");
  if (engine == "weighted") spec.engine = net::EngineKind::kWeighted;
  else if (engine == "eigentrust") spec.engine = net::EngineKind::kEigenTrust;
  else if (engine == "summation") spec.engine = net::EngineKind::kSummation;
  else if (engine == "peertrust") spec.engine = net::EngineKind::kPeerTrust;
  else if (engine == "gossiptrust")
    spec.engine = net::EngineKind::kGossipTrust;
  else return usage();

  const std::string detector = args.get("detector", "none");
  if (detector == "none") spec.detector = net::DetectorKind::kNone;
  else if (detector == "basic") spec.detector = net::DetectorKind::kBasic;
  else if (detector == "optimized")
    spec.detector = net::DetectorKind::kOptimized;
  else return usage();
  spec.detector_config.positive_fraction_min = args.get_double("ta", 0.9);
  spec.detector_config.complement_fraction_max = args.get_double("tb", 0.7);
  spec.detector_config.frequency_min =
      static_cast<std::uint32_t>(args.get_u64("tn", 20));

  const std::string attack = args.get("attack", "none");
  if (attack == "sybil") {
    spec.roles = net::sybil_roles(args.get_u64("targets", 2),
                                  args.get_u64("sybils", 4),
                                  !args.has("one-way"),
                                  args.get_u64("pretrusted", 3));
  } else if (attack == "traitor") {
    spec.roles = net::traitor_roles(args.get_u64("traitors", 6),
                                    args.get_u64("pretrusted", 3));
  } else if (attack == "whitewash") {
    spec.config.whitewash_on_detection = true;
  } else if (attack != "none") {
    return usage();
  }
  spec.config.collusion_positive_prob =
      args.get_double("camouflage", spec.config.collusion_positive_prob);
  spec.config.churn_leave_prob =
      args.get_double("churn-leave", spec.config.churn_leave_prob);
  spec.config.churn_rejoin_prob =
      args.get_double("churn-rejoin", spec.config.churn_rejoin_prob);

  const net::ExperimentResult r = net::run_experiment(spec);
  std::printf("engine=%s detector=%s runs=%zu\n",
              net::to_string(spec.engine).c_str(),
              net::to_string(spec.detector).c_str(), r.runs);
  std::printf("requests-to-colluders=%.2f%%  recall=%.3f  false_pos=%.2f\n"
              "engine_cost=%.0f  detector_cost=%.0f\n",
              r.avg_percent_to_colluders, r.avg_recall,
              r.avg_false_positives, r.avg_engine_cost, r.avg_detector_cost);
  util::Table table({"node", "avg reputation"});
  for (rating::NodeId id = 0; id < 20 && id < r.avg_reputation.size(); ++id)
    table.add_row({util::Table::num(std::uint64_t{id} + 1),
                   util::Table::num(r.avg_reputation[id], 5)});
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Shared ServiceConfig parsing for serve-replay and serve. Returns false
/// (after printing usage) on an unrecognized enum value.
bool service_config_from(const Args& args, std::size_t num_nodes,
                         service::ServiceConfig& cfg) {
  cfg.num_nodes = num_nodes;
  cfg.num_shards = args.get_u64("shards", 4);
  cfg.queue_capacity = args.get_u64("queue", cfg.queue_capacity);
  if (args.has("drop-oldest"))
    cfg.overflow = service::OverflowPolicy::kDropOldest;
  cfg.epoch_ratings = args.get_u64("epoch-ratings", 4096);
  cfg.epoch_ticks = args.get_u64("epoch-ticks", 0);
  cfg.detector_config = detector_config_from(args);
  cfg.wal_dir = args.get("wal-dir");
  cfg.checkpoint_every_epochs = args.get_u64("checkpoint-every", 0);

  const std::string scope = args.get("scope", "global");
  if (scope == "global") cfg.epoch_scope = service::EpochScope::kGlobal;
  else if (scope == "per-shard")
    cfg.epoch_scope = service::EpochScope::kPerShard;
  else return false;

  cfg.detector = args.get("detector", cfg.detector);
  if (!detect::DetectorRegistry::global().contains(cfg.detector)) {
    std::string names;
    for (const auto& n : detect::DetectorRegistry::global().names()) {
      if (!names.empty()) names += ' ';
      names += n;
    }
    std::fprintf(stderr, "error: unknown detector '%s' (registered: %s)\n",
                 cfg.detector.c_str(), names.c_str());
    return false;
  }

  // Detection output is identical across backends; sparse (the default)
  // keeps shard matrices at O(nnz) memory, dense is the paper-cost oracle.
  const std::string backend = args.get("matrix-backend", "sparse");
  if (backend == "dense")
    cfg.matrix_backend = rating::MatrixBackend::kDense;
  else if (backend == "sparse")
    cfg.matrix_backend = rating::MatrixBackend::kSparse;
  else return false;
  return true;
}

/// Parses a comma-separated "host:port,host:port,..." manager ring; empty
/// on malformed input.
std::vector<cluster::ManagerEndpoint> parse_ring(const std::string& spec) {
  std::vector<cluster::ManagerEndpoint> ring;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) return {};
    const long port = std::strtol(entry.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) return {};
    ring.push_back({entry.substr(0, colon),
                    static_cast<std::uint16_t>(port)});
    pos = comma + 1;
  }
  return ring;
}

/// Applies the --cluster-ring / --replication flags: backs the service's
/// shards with a running manager cluster (decentralized-manager mode).
/// Returns false on a malformed ring spec.
bool apply_cluster_flags(const Args& args, service::ServiceConfig& cfg) {
  if (!args.has("cluster-ring")) return true;
  cluster::ClusterBackendConfig bc;
  bc.ring = parse_ring(args.get("cluster-ring"));
  if (bc.ring.empty()) {
    std::fprintf(stderr, "error: malformed --cluster-ring "
                         "(expect HOST:PORT,HOST:PORT,...)\n");
    return false;
  }
  bc.replication =
      static_cast<std::uint32_t>(args.get_u64("replication", 1));
  bc.num_nodes = cfg.num_nodes;
  cfg.cluster = cluster::make_cluster_backend(bc);
  cfg.num_shards = bc.ring.size();  // cluster range i == service shard i
  cfg.wal_dir.clear();              // the managers own durability
  return true;
}

// Streams a rating file through the sharded online service — the durable
// deployment front-end — and dumps metrics plus detection reports. With
// --wal-dir the run is persisted; re-running over the same directory
// recovers the previous state first and continues from it. With
// --cluster-ring the shards are backed by a running manager cluster
// instead of local state. SIGINT/SIGTERM interrupts the replay but still
// drains and reports before exiting.
int cmd_serve_replay(const Args& args) {
  std::vector<rating::Rating> ratings;
  if (!load_ratings(args, ratings)) return 1;
  if (ratings.empty()) {
    std::fprintf(stderr, "error: no ratings in input\n");
    return 1;
  }
  rating::NodeId max_id = 0;
  for (const auto& r : ratings) max_id = std::max({max_id, r.rater, r.ratee});

  service::ServiceConfig cfg;
  if (!service_config_from(args, static_cast<std::size_t>(max_id) + 1, cfg))
    return usage();
  if (!apply_cluster_flags(args, cfg)) return 1;

  install_signal_handlers();
  try {
    service::ReputationService svc(cfg);
    if (svc.recovered()) {
      const auto m = svc.metrics();
      std::fprintf(stderr,
                   "recovered from '%s': %llu ratings, %llu epochs\n",
                   cfg.wal_dir.c_str(),
                   static_cast<unsigned long long>(m.ratings_applied),
                   static_cast<unsigned long long>(m.epochs_completed));
    }
    std::size_t ingested = 0;
    for (const auto& r : ratings) {
      if (g_shutdown_signal != 0) break;
      svc.ingest(r);
      ++ingested;
    }
    if (g_shutdown_signal != 0)
      std::fprintf(stderr,
                   "signal %d: stopping after %zu/%zu ratings, draining\n",
                   static_cast<int>(g_shutdown_signal), ingested,
                   ratings.size());
    svc.force_epoch();  // close the stream with a final detection pass
    svc.drain();

    const service::ServiceMetrics m = svc.metrics();
    std::printf("%s\n", m.to_string().c_str());
    const service::ServiceSnapshot snap = svc.snapshot();
    std::printf("suspected:");
    for (rating::NodeId i = 0; i < cfg.num_nodes; ++i)
      if (snap.suspected(i)) std::printf(" %u", i);
    std::printf("\n");
    if (args.has("report")) std::printf("%s", svc.report_log().c_str());
    svc.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

// Runs the service behind the socket RPC front-end until SIGINT/SIGTERM,
// then drains connections and ingest queues, flushes the WAL via a final
// epoch, and prints final metrics. --in seeds the service from a rating
// file before accepting traffic.
int cmd_serve(const Args& args) {
  if (!args.has("listen")) {
    std::fprintf(stderr, "error: serve requires --listen PORT\n");
    return usage();
  }

  std::vector<rating::Rating> seed;
  std::size_t num_nodes = args.get_u64("nodes", 100000);
  if (args.has("in")) {
    if (!load_ratings(args, seed)) return 1;
    rating::NodeId max_id = 0;
    for (const auto& r : seed) max_id = std::max({max_id, r.rater, r.ratee});
    num_nodes = std::max(num_nodes, static_cast<std::size_t>(max_id) + 1);
  }

  service::ServiceConfig cfg;
  if (!service_config_from(args, num_nodes, cfg)) return usage();

  rpc::RpcServerConfig rcfg;
  rcfg.port = static_cast<std::uint16_t>(args.get_u64("listen", 0));
  rcfg.bind_address = args.get("bind", rcfg.bind_address);
  rcfg.num_workers = args.get_u64("rpc-workers", rcfg.num_workers);
  rcfg.max_connections = args.get_u64("max-conn", rcfg.max_connections);
  rcfg.max_inflight = args.get_u64("max-inflight", rcfg.max_inflight);
  rcfg.idle_timeout_ms =
      static_cast<std::uint32_t>(args.get_u64("idle-timeout-ms",
                                              rcfg.idle_timeout_ms));
  rcfg.request_timeout_ms =
      static_cast<std::uint32_t>(args.get_u64("request-timeout-ms",
                                              rcfg.request_timeout_ms));
  rcfg.shed_backoff_ms =
      static_cast<std::uint32_t>(args.get_u64("shed-backoff-ms",
                                              rcfg.shed_backoff_ms));
  if (!rcfg.valid()) {
    std::fprintf(stderr, "error: invalid rpc server configuration\n");
    return 1;
  }

  install_signal_handlers();
  try {
    service::ReputationService svc(cfg);
    if (svc.recovered()) {
      const auto m = svc.metrics();
      std::fprintf(stderr,
                   "recovered from '%s': %llu ratings, %llu epochs\n",
                   cfg.wal_dir.c_str(),
                   static_cast<unsigned long long>(m.ratings_applied),
                   static_cast<unsigned long long>(m.epochs_completed));
    }
    for (const auto& r : seed) svc.ingest(r);
    if (!seed.empty())
      std::fprintf(stderr, "seeded %zu ratings from '%s'\n", seed.size(),
                   args.get("in").c_str());

    rpc::RpcServer server(svc, rcfg);
    std::fprintf(stderr, "listening on %s:%u (%zu workers)\n",
                 rcfg.bind_address.c_str(), server.port(),
                 rcfg.num_workers);

    const std::uint64_t stats_every_s = args.get_u64("stats-every", 0);
    std::uint64_t ticks = 0;
    while (g_shutdown_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      ++ticks;
      if (stats_every_s != 0 && ticks % (stats_every_s * 10) == 0) {
        service::ServiceMetrics m = svc.metrics();
        server.fill_metrics(m);
        std::fprintf(stderr, "%s\n", m.to_string().c_str());
      }
    }

    std::fprintf(stderr, "signal %d: draining connections and queues\n",
                 static_cast<int>(g_shutdown_signal));
    server.shutdown();       // stop accepting, flush in-flight responses
    svc.force_epoch();       // final detection pass over the partial window
    svc.drain();             // WAL is flushed per-record; queues now empty
    service::ServiceMetrics m = svc.metrics();
    server.fill_metrics(m);
    std::printf("%s\n", m.to_string().c_str());
    svc.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

/// printf-safe copy of the status name (to_string returns a string_view).
std::string status_cstr(rpc::Status s) {
  return std::string(rpc::to_string(s));
}

rpc::RpcClientConfig client_config_from(const Args& args) {
  rpc::RpcClientConfig cfg;
  cfg.host = args.get("host", cfg.host);
  cfg.port = static_cast<std::uint16_t>(args.get_u64("port", 0));
  cfg.connect_timeout_ms =
      static_cast<std::uint32_t>(args.get_u64("connect-timeout-ms",
                                              cfg.connect_timeout_ms));
  cfg.request_timeout_ms =
      static_cast<std::uint32_t>(args.get_u64("request-timeout-ms",
                                              cfg.request_timeout_ms));
  return cfg;
}

bool client_connect(const Args& args, rpc::RpcClient& client) {
  if (!args.has("port")) {
    std::fprintf(stderr, "error: --port PORT is required\n");
    return false;
  }
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "error: connect failed: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Submits one rating over RPC, retrying sheds with the hinted backoff.
int cmd_rate(const Args& args) {
  rpc::RpcClient client(client_config_from(args));
  if (!client_connect(args, client)) return 1;

  rating::Rating r;
  r.rater = static_cast<rating::NodeId>(args.get_u64("rater", 0));
  r.ratee = static_cast<rating::NodeId>(args.get_u64("ratee", 0));
  const long score = std::strtol(args.get("score", "1").c_str(), nullptr, 10);
  r.score = static_cast<rating::Score>(score);
  r.time = args.get_u64("tick", 0);

  const rpc::CallResult res = client.submit_rating_with_retry(r);
  if (!res.ok) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return 1;
  }
  if (res.status != rpc::Status::kOk) {
    std::fprintf(stderr, "rejected: %s\n", status_cstr(res.status).c_str());
    return 1;
  }
  const auto& st = client.stats();
  std::printf("ok (%llu retries, %llu sheds seen)\n",
              static_cast<unsigned long long>(st.retries),
              static_cast<unsigned long long>(st.sheds_seen));
  return 0;
}

// Queries one node's reputation (--node N) or the current colluder list
// (--colluders) from a running server.
int cmd_query(const Args& args) {
  rpc::RpcClient client(client_config_from(args));
  if (!client_connect(args, client)) return 1;

  if (args.has("colluders")) {
    rpc::QueryColludersResponse out;
    const rpc::CallResult res = client.query_colluders(&out);
    if (!res.ok || res.status != rpc::Status::kOk) {
      std::fprintf(stderr, "error: %s\n",
                   res.ok ? status_cstr(res.status).c_str()
                        : res.error.c_str());
      return 1;
    }
    std::printf("%llu suspected%s:",
                static_cast<unsigned long long>(out.total_suspected),
                out.truncated ? " (truncated)" : "");
    for (const auto id : out.colluders) std::printf(" %u", id);
    std::printf("\n");
    return 0;
  }

  if (!args.has("node")) {
    std::fprintf(stderr, "error: query requires --node N or --colluders\n");
    return 1;
  }
  const auto node = static_cast<rating::NodeId>(args.get_u64("node", 0));
  rpc::QueryReputationResponse out;
  const rpc::CallResult res = client.query_reputation(node, &out);
  if (!res.ok || res.status != rpc::Status::kOk) {
    std::fprintf(stderr, "error: %s\n",
                 res.ok ? status_cstr(res.status).c_str()
                        : res.error.c_str());
    return 1;
  }
  std::printf("node=%u reputation=%.6f suspected=%s epoch=%llu shard=%u\n",
              node, out.reputation, out.suspected ? "yes" : "no",
              static_cast<unsigned long long>(out.epoch), out.shard);
  return 0;
}

// Fetches and prints the server's ServiceMetrics snapshot (rpc_* included).
int cmd_metrics(const Args& args) {
  rpc::RpcClient client(client_config_from(args));
  if (!client_connect(args, client)) return 1;

  service::ServiceMetrics m;
  const rpc::CallResult res = client.get_metrics(&m);
  if (!res.ok || res.status != rpc::Status::kOk) {
    std::fprintf(stderr, "error: %s\n",
                 res.ok ? status_cstr(res.status).c_str()
                        : res.error.c_str());
    return 1;
  }
  std::printf("%s\n", m.to_string().c_str());
  return 0;
}

// Admin: resize the running service's shard count online. The server
// answers only after the handoff commits, so the default request timeout
// is raised unless the operator set one explicitly.
int cmd_resize(const Args& args) {
  if (!args.has("shards")) {
    std::fprintf(stderr, "error: resize requires --shards N\n");
    return 1;
  }
  rpc::RpcClientConfig ccfg = client_config_from(args);
  if (!args.has("request-timeout-ms") && !args.has("timeout-ms"))
    ccfg.request_timeout_ms = 60000;
  if (args.has("timeout-ms"))
    ccfg.request_timeout_ms =
        static_cast<std::uint32_t>(args.get_u64("timeout-ms",
                                                ccfg.request_timeout_ms));
  rpc::RpcClient client(ccfg);
  if (!client_connect(args, client)) return 1;

  const auto shards = static_cast<std::uint32_t>(args.get_u64("shards", 0));
  rpc::ResizeResponse out;
  const rpc::CallResult res = client.resize(shards, &out);
  if (!res.ok) {
    std::fprintf(stderr, "error: %s\n", res.error.c_str());
    return 1;
  }
  if (res.status != rpc::Status::kOk) {
    std::fprintf(stderr, "resize rejected: %s (service still at %u shards)\n",
                 status_cstr(res.status).c_str(), out.num_shards);
    return 1;
  }
  std::printf("resized to %u shards: %llu keys moved in %llu ms\n",
              out.num_shards,
              static_cast<unsigned long long>(out.keys_moved),
              static_cast<unsigned long long>(out.duration_ms));
  return 0;
}

// Runs one manager process of the multi-process cluster: primary of key
// range --index, replica of the M-1 preceding ranges, serving the
// manager-to-manager RPC surface until SIGINT/SIGTERM. With --data-dir the
// node is durable: kill -9 it, restart with the same flags, and it
// recovers from its WAL + checkpoints, resyncs from live peers and
// rejoins.
int cmd_manager(const Args& args) {
  if (!args.has("index") || !args.has("ring") || !args.has("nodes")) {
    std::fprintf(stderr,
                 "error: manager requires --index I --ring H:P,... "
                 "--nodes N\n");
    return usage();
  }
  cluster::ManagerNodeConfig cfg;
  cfg.index = args.get_u64("index", 0);
  cfg.ring = parse_ring(args.get("ring"));
  if (cfg.ring.empty()) {
    std::fprintf(stderr, "error: malformed --ring "
                         "(expect HOST:PORT,HOST:PORT,...)\n");
    return 1;
  }
  cfg.replication =
      static_cast<std::uint32_t>(args.get_u64("replication", 1));
  cfg.data_dir = args.get("data-dir");
  cfg.bind_address = args.get("bind", cfg.bind_address);
  cfg.port = static_cast<std::uint16_t>(args.get_u64("port", 0));

  cfg.service.num_nodes = args.get_u64("nodes", 0);
  cfg.service.epoch_ratings = args.get_u64("epoch-ratings", 4096);
  cfg.service.detector = args.get("detector", "optimized");
  cfg.service.detector_config = detector_config_from(args);
  const std::string backend = args.get("matrix-backend", "sparse");
  cfg.service.matrix_backend = backend == "dense"
                                   ? rating::MatrixBackend::kDense
                                   : rating::MatrixBackend::kSparse;

  if (args.has("latency-ms")) {
    cfg.latency.enabled = true;
    cfg.latency.per_hop_ms = args.get_double("latency-ms", 0.0);
    cfg.latency.jitter_ms = args.get_double("latency-jitter-ms", 0.0);
    cfg.latency.seed = args.get_u64("latency-seed", cfg.latency.seed);
  }

  install_signal_handlers();
  try {
    cluster::ManagerNode node(cfg);
    node.start();
    std::fprintf(stderr, "manager %zu listening on %s:%u (ranges:",
                 cfg.index, cfg.bind_address.c_str(), node.port());
    for (std::size_t r : node.held_ranges())
      std::fprintf(stderr, " %zu", r);
    std::fprintf(stderr, ")\n");
    // The smoke/failover tests read the bound port from this line when
    // --port 0 picked an ephemeral one.
    std::printf("port=%u\n", node.port());
    std::fflush(stdout);

    while (g_shutdown_signal == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::fprintf(stderr, "signal %d: stopping manager %zu\n",
                 static_cast<int>(g_shutdown_signal), cfg.index);
    node.stop();
    std::printf("%s\n", node.metrics_snapshot().to_string().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "trace") return cmd_trace(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "detect") return cmd_detect(args);
  if (command == "calibrate") return cmd_calibrate(args);
  if (command == "simulate") return cmd_simulate(args);
  if (command == "serve-replay") return cmd_serve_replay(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "rate") return cmd_rate(args);
  if (command == "query") return cmd_query(args);
  if (command == "metrics") return cmd_metrics(args);
  if (command == "resize") return cmd_resize(args);
  if (command == "manager") return cmd_manager(args);
  return usage();
}
