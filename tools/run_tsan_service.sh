#!/usr/bin/env bash
# Builds the test suite with ThreadSanitizer (P2PREP_SANITIZE=thread) in a
# dedicated build directory and runs the service concurrency stress tests.
# Usage: tools/run_tsan_service.sh [ctest -R regex, default ServiceConcurrency]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tsan"
filter="${1:-ServiceConcurrency}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DP2PREP_SANITIZE=thread \
  -DP2PREP_BUILD_BENCH=OFF \
  -DP2PREP_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j --target p2prep_tests

cd "${build_dir}"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest -R "${filter}" --output-on-failure
