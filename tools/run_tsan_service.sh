#!/usr/bin/env bash
# Back-compat wrapper: the TSan service gate is now the `tsan` stage of
# tools/run_static_analysis.sh. Builds in build-tsan as before.
# Usage: tools/run_tsan_service.sh [ctest -R regex, default ServiceConcurrency]
set -euo pipefail

exec env P2PREP_TSAN_FILTER="${1:-ServiceConcurrency}" \
  "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/run_static_analysis.sh" tsan
