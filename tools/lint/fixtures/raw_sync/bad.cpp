// Negative fixture for the raw-sync rule: raw standard-library
// synchronization outside src/util/mutex.h. Never compiled — only fed to
// p2prep_lint.py --self-test, which must report every line below.
#include <condition_variable>
#include <mutex>

namespace p2prep::fixture {

std::mutex g_mu;                 // violation: raw std::mutex
std::condition_variable g_cv;    // violation: raw std::condition_variable

int locked_increment(int& counter) {
  std::lock_guard<std::mutex> lock(g_mu);  // violation: raw std::lock_guard
  return ++counter;
}

}  // namespace p2prep::fixture
