// Negative fixture for the guard-block rule: members declared directly
// under a util::Mutex member without P2PREP_GUARDED_BY. Never compiled —
// only fed to p2prep_lint.py --self-test.
#pragma once

#include <cstdint>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::fixture {

class Unguarded {
 private:
  mutable util::Mutex mu_;
  std::uint64_t counter_ = 0;        // violation: no P2PREP_GUARDED_BY(mu_)
  std::string annotated_ P2PREP_GUARDED_BY(mu_);  // fine
  bool closed_ = false;              // violation: no P2PREP_GUARDED_BY(mu_)

  // A blank line above ends the guarded block: this member is legitimately
  // unannotated (not mutex-adjacent state).
  std::uint64_t standalone_ = 0;
};

}  // namespace p2prep::fixture
