// Negative fixture for the nondeterminism rule: ambient clocks and RNG in
// code that must replay deterministically. Never compiled — only fed to
// p2prep_lint.py --self-test, which must report every marked line.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace p2prep::fixture {

unsigned roll_detection_threshold() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // violation x2
  return static_cast<unsigned>(std::rand());              // violation
}

long stamp_epoch() {
  std::random_device entropy;  // violation: ambient RNG
  (void)entropy;
  return std::chrono::system_clock::now()  // violation: wall clock
      .time_since_epoch()
      .count();
}

}  // namespace p2prep::fixture
