// Negative fixture for the guarded-by-xref rule: annotations naming a
// mutex that is not declared in this file (typo'd name, stale rename).
// Under gcc the macros expand to nothing, so only the linter sees this.
// Never compiled — only fed to p2prep_lint.py --self-test.
#pragma once

#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace p2prep::fixture {

class TypoGuard {
 private:
  mutable util::Mutex state_mu_;
  std::uint64_t ok_ P2PREP_GUARDED_BY(state_mu_) = 0;      // fine
  std::uint64_t typo_ P2PREP_GUARDED_BY(state_mux_) = 0;   // violation
  mutable util::Mutex late_mu_ P2PREP_ACQUIRED_AFTER(renamed_away_mu_);
  std::uint64_t more_ P2PREP_GUARDED_BY(late_mu_) = 0;     // fine
};

}  // namespace p2prep::fixture
