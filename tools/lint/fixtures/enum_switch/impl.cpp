// Negative fixture for the enum-switch rule (paired with enum.h):
// encode_payload handles every TestKind, decode_payload misses
// kGrewOnlyOneSide — exactly the codec drift the rule exists to catch.
// Never compiled — only fed to p2prep_lint.py --self-test.
#include "enum.h"

namespace p2prep::fixture {

int encode_payload(TestKind kind) {
  switch (kind) {
    case TestKind::kAlpha:
      return 1;
    case TestKind::kBeta:
      return 2;
    case TestKind::kGrewOnlyOneSide:
      return 3;
  }
  return 0;
}

int decode_payload(TestKind kind) {
  switch (kind) {
    case TestKind::kAlpha:
      return 1;
    case TestKind::kBeta:
      return 2;
    default:  // violation: kGrewOnlyOneSide decodes as "unknown"
      return 0;
  }
}

}  // namespace p2prep::fixture
