// Negative fixture for the enum-switch rule (paired with impl.cpp): the
// enum grows a kGrewOnlyOneSide enumerator that impl.cpp's decode path
// never handles. Never compiled — only fed to p2prep_lint.py --self-test.
#pragma once

#include <cstdint>

namespace p2prep::fixture {

enum class TestKind : std::uint8_t {
  kAlpha = 1,
  kBeta = 2,
  kGrewOnlyOneSide = 3,
};

}  // namespace p2prep::fixture
