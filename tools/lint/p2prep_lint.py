#!/usr/bin/env python3
"""Project-invariant linter (DESIGN.md section 14 "Correctness tooling").

Enforces invariants the compiler cannot see (or only Clang can), so they
hold on every build, gcc included:

  raw-sync         -- no raw std::mutex / std::condition_variable /
                      std::lock_guard & friends outside src/util/mutex.h;
                      everything locks through the annotated util wrappers,
                      otherwise Clang thread-safety analysis goes blind.
  guard-block      -- a data member declared directly under a util::Mutex
                      member (the project convention for "guarded by it")
                      must carry P2PREP_GUARDED_BY.
  enum-switch      -- every WalRecordKind enumerator is handled in both the
                      WAL encode and decode paths, and every MsgType /
                      Status enumerator in its to_string; a new enumerator
                      that only grew half the wire format fails here.
  nondeterminism   -- no wall clocks or ambient RNG (time(), rand(),
                      std::random_device, system_clock) in the detector /
                      replay-critical sources; replaying a WAL or a trace
                      must reproduce identical results. steady_clock is
                      allowed (duration metrics, never decisions).
  guarded-by-xref  -- the argument of every P2PREP_GUARDED_BY /
                      P2PREP_ACQUIRED_AFTER/BEFORE names a Mutex member
                      declared in the same file; a typo'd mutex name makes
                      the annotation silently vacuous under gcc.

Usage:
  p2prep_lint.py [--root DIR]   lint the tree; exit 1 on any violation
  p2prep_lint.py --self-test    prove each rule fires on its checked-in
                                negative fixture (tools/lint/fixtures/)

Zero dependencies beyond the standard library; deterministic output
(sorted by path, then line).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, NamedTuple


class Violation(NamedTuple):
    path: Path
    line: int  # 1-based
    rule: str
    message: str


# --- Source-text helpers -----------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Keeps every newline so line numbers in the stripped text match the
    original file; everything else inside a comment or literal becomes a
    space so token regexes cannot match there.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def cpp_files(root: Path, subdirs: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.exists():
            continue
        files.extend(p for p in base.rglob("*.h") if p.is_file())
        files.extend(p for p in base.rglob("*.cpp") if p.is_file())
    return sorted(set(files))


def function_region(stripped: str, signature: str, path: Path) -> str:
    """Returns the body text of the function whose definition contains
    `signature`, located by brace matching from its opening brace."""
    start = stripped.find(signature)
    if start < 0:
        raise SystemExit(f"lint: internal: '{signature}' not found in {path}")
    brace = stripped.find("{", start)
    if brace < 0:
        raise SystemExit(f"lint: internal: no body for '{signature}' in {path}")
    depth = 0
    for i in range(brace, len(stripped)):
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
            if depth == 0:
                return stripped[brace : i + 1]
    raise SystemExit(f"lint: internal: unbalanced braces after '{signature}' in {path}")


# --- Rule: raw-sync ----------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


def check_raw_sync(files: Iterable[Path], allowed: set[str]) -> list[Violation]:
    """Raw standard-library synchronization primitives are confined to the
    annotated wrappers in src/util/mutex.h; anywhere else they'd bypass
    Clang thread-safety analysis entirely."""
    violations = []
    for path in files:
        if path.name in allowed and path.parent.name == "util":
            continue
        stripped = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(stripped.splitlines(), 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                violations.append(
                    Violation(
                        path,
                        lineno,
                        "raw-sync",
                        f"raw std::{m.group(1)} — use the annotated "
                        "wrappers from util/mutex.h",
                    )
                )
    return violations


# --- Rule: guard-block -------------------------------------------------------

# Trailing underscore = data member (project naming convention); local
# mutexes in function bodies guard locals the annotations cannot express.
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:util::)?Mutex\s+(\w+_)\s*(?:P2PREP_\w+\s*\(|;|$)"
)
EXEMPT_MEMBER_RE = re.compile(
    r"^\s*(?:public:|private:|protected:|friend\b|using\b|typedef\b|"
    r"static\b|constexpr\b|enum\b|struct\b|class\b|template\b|"
    r"(?:mutable\s+)?(?:util::)?CondVar\b|(?:mutable\s+)?std::atomic\b)"
)
BLOCK_END_RE = re.compile(r"^\s*\}|^\s*(?:public|private|protected)\s*:")


def check_guard_block(files: Iterable[Path]) -> list[Violation]:
    """Members declared contiguously under a util::Mutex member (the
    project's declaration convention for guarded state) must carry
    P2PREP_GUARDED_BY. A blank line ends the guarded block — state below
    it is the next section's business."""
    violations = []
    for path in files:
        raw_lines = path.read_text().splitlines()
        stripped_lines = strip_comments_and_strings(path.read_text()).splitlines()
        guard_mutex: str | None = None
        pending: list[str] = []  # continuation lines of one declaration
        pending_start = 0
        for lineno, line in enumerate(stripped_lines, 1):
            raw = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
            if not line.strip():
                # Comment-only lines (blank after stripping) keep the block
                # alive; genuinely blank source lines end it.
                if not raw.strip():
                    guard_mutex = None
                    pending = []
                continue
            if pending:
                pending.append(line)
                if ";" not in line:
                    continue
                stmt = " ".join(p.strip() for p in pending)
                pending = []
                violations.extend(
                    _judge_member(path, pending_start, stmt, guard_mutex)
                )
                continue
            if BLOCK_END_RE.match(line):
                guard_mutex = None
                continue
            m = MUTEX_DECL_RE.match(line)
            if m:
                guard_mutex = m.group(1)
                continue
            if guard_mutex is None:
                continue
            if ";" not in line:
                pending = [line]
                pending_start = lineno
                continue
            violations.extend(_judge_member(path, lineno, line, guard_mutex))
    return violations


def _judge_member(
    path: Path, lineno: int, stmt: str, guard_mutex: str | None
) -> list[Violation]:
    if guard_mutex is None:
        return []
    if EXEMPT_MEMBER_RE.match(stmt):
        return []
    if "GUARDED_BY" in stmt:
        return []
    if "(" in stmt.split("=")[0].split("{")[0]:
        return []  # function declaration, not a data member
    if not stmt.strip() or stmt.strip() in {";"}:
        return []
    return [
        Violation(
            path,
            lineno,
            "guard-block",
            f"member under mutex '{guard_mutex}' lacks "
            f"P2PREP_GUARDED_BY({guard_mutex})",
        )
    ]


# --- Rule: enum-switch -------------------------------------------------------


class EnumSwitchCheck(NamedTuple):
    enum_file: str
    enum_name: str
    impl_file: str
    regions: tuple[str, ...]  # substrings locating each handler definition


ENUM_SWITCH_CHECKS = (
    EnumSwitchCheck(
        "src/service/wal.h",
        "WalRecordKind",
        "src/service/wal.cpp",
        ("encode_payload(", "decode_payload("),
    ),
    EnumSwitchCheck(
        "src/rpc/protocol.h",
        "MsgType",
        "src/rpc/protocol.cpp",
        ("to_string(MsgType",),
    ),
    EnumSwitchCheck(
        "src/rpc/protocol.h",
        "Status",
        "src/rpc/protocol.cpp",
        ("to_string(Status",),
    ),
)


def enum_values(stripped: str, enum_name: str, path: Path) -> list[str]:
    m = re.search(
        rf"enum\s+(?:class\s+)?{re.escape(enum_name)}\b[^{{]*{{(.*?)}}\s*;",
        stripped,
        re.DOTALL,
    )
    if not m:
        raise SystemExit(f"lint: internal: enum {enum_name} not found in {path}")
    return re.findall(r"\b(k\w+)\b\s*(?:=\s*[\w:x]+)?\s*(?:,|$)", m.group(1))


def check_enum_switch(root: Path, checks: Iterable[EnumSwitchCheck]) -> list[Violation]:
    """Every enumerator of a wire-format enum must be named in each of its
    handler functions (encode AND decode, or to_string): the two sides of a
    codec drift apart exactly when an enumerator grows only one of them."""
    violations = []
    for check in checks:
        enum_path = root / check.enum_file
        impl_path = root / check.impl_file
        enum_stripped = strip_comments_and_strings(enum_path.read_text())
        values = enum_values(enum_stripped, check.enum_name, enum_path)
        impl_text = impl_path.read_text()
        impl_stripped = strip_comments_and_strings(impl_text)
        for region in check.regions:
            body = function_region(impl_stripped, region, impl_path)
            for value in values:
                if not re.search(rf"\b{re.escape(value)}\b", body):
                    # Anchor the report at the handler's definition line.
                    lineno = impl_stripped[: impl_stripped.find(region)].count("\n") + 1
                    violations.append(
                        Violation(
                            impl_path,
                            lineno,
                            "enum-switch",
                            f"{check.enum_name}::{value} is not handled in "
                            f"'{region}...'",
                        )
                    )
    return violations


# --- Rule: nondeterminism ----------------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
)

NONDET_SUBDIRS = (
    "src/core",
    "src/detect",
    "src/rating",
    "src/reputation",
    "src/dht",
)
NONDET_EXTRA_FILES = ("src/service/wal.cpp",)


def check_nondeterminism(files: Iterable[Path]) -> list[Violation]:
    """Detector / replay-critical code must be a pure function of its
    inputs: replaying the same WAL or trace twice must flag the same
    colluders. Seeded util::Rng and steady_clock durations are fine; wall
    clocks and ambient RNG are not."""
    violations = []
    for path in files:
        stripped = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for pattern, label in NONDET_PATTERNS:
                if pattern.search(line):
                    violations.append(
                        Violation(
                            path,
                            lineno,
                            "nondeterminism",
                            f"{label} in replay-deterministic code — take "
                            "ticks/seeds as inputs instead",
                        )
                    )
    return violations


# --- Rule: guarded-by-xref ---------------------------------------------------

ANNOTATION_ARG_RE = re.compile(
    r"\bP2PREP_(?:GUARDED_BY|PT_GUARDED_BY|ACQUIRED_AFTER|ACQUIRED_BEFORE)"
    r"\s*\(([^)]*)\)"
)
MUTEX_MEMBER_RE = re.compile(r"\b(?:util::)?Mutex\s+(\w+)\s*[;P]")


def check_guarded_by_xref(files: Iterable[Path]) -> list[Violation]:
    """Every mutex named by a guard/ordering annotation must be a Mutex
    declared in the same file. Under gcc the macros expand to nothing, so a
    typo'd name is invisible until someone builds with Clang — this keeps
    the annotation set well-formed everywhere."""
    violations = []
    for path in files:
        stripped = strip_comments_and_strings(path.read_text())
        declared = set(MUTEX_MEMBER_RE.findall(stripped))
        in_directive = False
        for lineno, line in enumerate(stripped.splitlines(), 1):
            # Skip preprocessor directives (and their backslash
            # continuations): the macro definitions themselves use the
            # annotation names with formal parameters, not mutex members.
            if in_directive or line.lstrip().startswith("#"):
                in_directive = line.rstrip().endswith("\\")
                continue
            for m in ANNOTATION_ARG_RE.finditer(line):
                for arg in m.group(1).split(","):
                    arg = arg.strip()
                    # Only simple member names are checkable; expressions
                    # (this->x, a.b) are out of scope for a text linter.
                    if not arg or not re.fullmatch(r"\w+", arg):
                        continue
                    if arg not in declared:
                        violations.append(
                            Violation(
                                path,
                                lineno,
                                "guarded-by-xref",
                                f"annotation names '{arg}' but no Mutex "
                                "member of that name is declared in this "
                                "file",
                            )
                        )
    return violations


# --- Driver ------------------------------------------------------------------


def lint_tree(root: Path) -> list[Violation]:
    src_files = cpp_files(root, ("src", "fuzz"))
    nondet_files = cpp_files(root, NONDET_SUBDIRS) + [
        root / f for f in NONDET_EXTRA_FILES if (root / f).exists()
    ]
    violations: list[Violation] = []
    violations += check_raw_sync(src_files, allowed={"mutex.h"})
    violations += check_guard_block(src_files)
    violations += check_enum_switch(root, ENUM_SWITCH_CHECKS)
    violations += check_nondeterminism(nondet_files)
    violations += check_guarded_by_xref(src_files)
    return sorted(violations, key=lambda v: (str(v.path), v.line, v.rule))


def self_test(root: Path) -> int:
    """Each rule must fire on its negative fixture — a rule that reports
    nothing on a file built to violate it is dead code, and a clean tree
    would prove nothing."""
    fixtures = Path(__file__).resolve().parent / "fixtures"
    failures = 0

    def expect(rule: str, violations: list[Violation]) -> None:
        nonlocal failures
        hits = [v for v in violations if v.rule == rule]
        if hits:
            print(f"self-test PASS {rule}: fixture raised {len(hits)} violation(s)")
        else:
            print(f"self-test FAIL {rule}: fixture raised no violations")
            failures += 1

    expect(
        "raw-sync",
        check_raw_sync([fixtures / "raw_sync" / "bad.cpp"], allowed=set()),
    )
    expect("guard-block", check_guard_block([fixtures / "guard_block" / "bad.h"]))
    expect(
        "enum-switch",
        check_enum_switch(
            fixtures,
            [
                EnumSwitchCheck(
                    "enum_switch/enum.h",
                    "TestKind",
                    "enum_switch/impl.cpp",
                    ("encode_payload(", "decode_payload("),
                )
            ],
        ),
    )
    expect(
        "nondeterminism",
        check_nondeterminism([fixtures / "nondeterminism" / "bad.cpp"]),
    )
    expect(
        "guarded-by-xref",
        check_guarded_by_xref([fixtures / "guarded_by_xref" / "bad.h"]),
    )

    # The stripper is the foundation every rule stands on; pin its contract.
    stripped = strip_comments_and_strings('a // std::mutex\nb "std::mutex" /* x\ny */ c\n')
    if "std::mutex" in stripped or stripped.count("\n") != 3:
        print("self-test FAIL strip: comment/string stripping broke")
        failures += 1
    else:
        print("self-test PASS strip: comments/strings blanked, lines kept")

    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify each rule fires on its negative fixture",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = lint_tree(args.root.resolve())
    for v in violations:
        try:
            rel = v.path.relative_to(args.root.resolve())
        except ValueError:
            rel = v.path
        print(f"{rel}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
