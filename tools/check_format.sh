#!/usr/bin/env bash
# Check-only clang-format gate over all tracked C++ sources (.clang-format
# at the repo root). Never rewrites anything — prints a diff-style report
# via `clang-format --dry-run` and exits nonzero if any file is
# mis-formatted. Skips gracefully (exit 0) when clang-format is absent.
#
# Usage: tools/check_format.sh [file ...]    (default: all tracked sources)
# Environment:
#   P2PREP_CLANG_FORMAT   clang-format binary (default: clang-format in PATH)
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
clang_format="${P2PREP_CLANG_FORMAT:-$(command -v clang-format || true)}"

if [[ -z "${clang_format}" ]]; then
  echo "SKIP: clang-format not found in PATH (set P2PREP_CLANG_FORMAT)"
  exit 0
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(cd "${repo_root}" &&
    git ls-files -- '*.cpp' '*.h' '*.cc' '*.hpp')
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "no C++ sources to check"
  exit 0
fi

echo "checking ${#files[@]} files with $("${clang_format}" --version)"
failed=0
for f in "${files[@]}"; do
  if ! (cd "${repo_root}" &&
    "${clang_format}" --dry-run -Werror --style=file "${f}" 2>&1); then
    failed=1
  fi
done

if [[ "${failed}" -ne 0 ]]; then
  echo
  echo "FORMAT VIOLATIONS FOUND — fix with:"
  echo "  clang-format -i --style=file <file>"
  exit 1
fi
echo "all files clean"
