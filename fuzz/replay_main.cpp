// Portable corpus-replay driver: feeds checked-in corpus files through the
// same target functions the libFuzzer binaries use, but as a plain
// executable that builds under any compiler. ctest runs it over
// fuzz/corpus/<target>/ on every build (gcc + ASan included), so each
// corpus file — valid seed or crash fixture — is a standing regression
// test even where libFuzzer is unavailable.
//
// Usage:  fuzz_replay <rpc|wal|checkpoint> <file-or-dir>...
//
// Directories are expanded (recursively, sorted by path so failures are
// reproducible in a stable order). Exits non-zero when no input files were
// found — an empty corpus directory must fail loudly, not pass vacuously.
// A target that trips an oracle calls std::abort(), which the test runner
// reports against the file named last on stderr.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/targets.h"

namespace {

using TargetFn = int (*)(const std::uint8_t*, std::size_t);

TargetFn resolve_target(const char* name) {
  if (std::strcmp(name, "rpc") == 0) return &p2prep::fuzz::rpc_one_input;
  if (std::strcmp(name, "wal") == 0) return &p2prep::fuzz::wal_one_input;
  if (std::strcmp(name, "checkpoint") == 0)
    return &p2prep::fuzz::checkpoint_one_input;
  return nullptr;
}

/// Expands `arg` into regular files: a file is taken as-is, a directory is
/// walked recursively. Hidden files (".gitkeep" and friends) are skipped so
/// placeholder entries never count as corpus.
void collect_inputs(const std::filesystem::path& arg,
                    std::vector<std::filesystem::path>& out) {
  std::error_code ec;
  if (std::filesystem::is_directory(arg, ec)) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() &&
          entry.path().filename().string().front() != '.')
        out.push_back(entry.path());
    }
  } else if (std::filesystem::is_regular_file(arg, ec)) {
    out.push_back(arg);
  } else {
    std::fprintf(stderr, "fuzz_replay: no such file or directory: %s\n",
                 arg.string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: fuzz_replay <rpc|wal|checkpoint> <file-or-dir>...\n");
    return 2;
  }
  const TargetFn target = resolve_target(argv[1]);
  if (target == nullptr) {
    std::fprintf(stderr, "fuzz_replay: unknown target '%s'\n", argv[1]);
    return 2;
  }

  std::vector<std::filesystem::path> inputs;
  for (int i = 2; i < argc; ++i) collect_inputs(argv[i], inputs);
  std::sort(inputs.begin(), inputs.end());

  if (inputs.empty()) {
    std::fprintf(stderr,
                 "fuzz_replay: no corpus files found — an empty corpus "
                 "would pass vacuously, refusing\n");
    return 1;
  }

  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz_replay: cannot read %s\n",
                   path.string().c_str());
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    // Name the file before running it: if the target aborts, the last line
    // on stderr identifies the offending input.
    std::fprintf(stderr, "replay %s (%zu bytes)\n", path.string().c_str(),
                 bytes.size());
    target(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::fprintf(stderr, "fuzz_replay: %zu inputs OK under target '%s'\n",
               inputs.size(), argv[1]);
  return 0;
}
