// Shared fuzz-target entry points (DESIGN.md §14 "Correctness tooling").
//
// Each function consumes arbitrary attacker-controlled bytes through one of
// the project's hostile-input decoders and must never crash, over-read,
// leak, or trip a sanitizer. The same three functions back two harnesses:
//
//  * the libFuzzer binaries fuzz/fuzz_{rpc_protocol,wal,checkpoint}.cpp
//    (Clang only, -DP2PREP_FUZZERS=ON) for coverage-guided exploration;
//  * the portable corpus-replay driver fuzz/replay_main.cpp (plain C++,
//    builds everywhere) that replays every checked-in corpus file under
//    ctest, so each fixture is a regression test on gcc+ASan too.
//
// Beyond "don't crash", the targets assert round-trip oracles: whenever a
// decoder accepts an input, re-encoding the decoded value must reproduce
// the accepted bytes exactly (the codecs are canonical). A violation calls
// std::abort(), which both libFuzzer and the replay driver report.
#pragma once

#include <cstddef>
#include <cstdint>

namespace p2prep::fuzz {

/// RPC wire protocol: frame extraction, request/response envelopes, and
/// every message-body decoder (rpc/protocol.h).
int rpc_one_input(const std::uint8_t* data, std::size_t size);

/// WAL v2 images: header, record frames, fence markers, torn tails
/// (service::parse_wal).
int wal_one_input(const std::uint8_t* data, std::size_t size);

/// Shard checkpoint images (service::parse_checkpoint).
int checkpoint_one_input(const std::uint8_t* data, std::size_t size);

}  // namespace p2prep::fuzz
