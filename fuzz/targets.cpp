#include "fuzz/targets.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/protocol.h"
#include "rpc/protocol.h"
#include "service/wal.h"

namespace p2prep::fuzz {

namespace {

/// Oracle check: unlike assert(), active in every build type (the replay
/// driver runs in RelWithDebInfo ctest too).
void fuzz_check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz oracle violated: %s\n", what);
    std::abort();
  }
}

// --- RPC -------------------------------------------------------------------

/// Re-encodes a decoded body and re-decodes the result: decode must accept
/// its own encoding and encoding must be a fixpoint (canonical codec). The
/// first decode's consumed bytes are not compared — a body decoder may
/// legitimately leave trailing bytes unread.
template <typename Body>
void roundtrip_body(const Body& first) {
  std::string bytes;
  first.encode(bytes);
  rpc::Reader r(bytes);
  const std::optional<Body> second = Body::decode(r);
  fuzz_check(second.has_value(), "decoder rejected its own encoding");
  fuzz_check(r.done(), "re-decode left trailing bytes of a re-encoding");
  std::string bytes2;
  second->encode(bytes2);
  fuzz_check(bytes == bytes2, "encode-of-decode is not a fixpoint");
}

/// Runs every decoder that could meet `payload` in a real connection: the
/// request envelope + type-dispatched request body (the server's read
/// path), then the response envelope + body (the client's read path).
void exercise_rpc_payload(std::string_view payload) {
  {
    rpc::Reader r(payload);
    rpc::RequestHeader h;
    if (rpc::decode_request_header(r, h)) {
      switch (static_cast<rpc::MsgType>(h.type)) {
        case rpc::MsgType::kSubmitRating:
          if (auto b = rpc::SubmitRatingRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kSubmitBatch:
          if (auto b = rpc::SubmitBatchRequest::decode(r)) roundtrip_body(*b);
          break;
        case rpc::MsgType::kQueryReputation:
          if (auto b = rpc::QueryReputationRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kResize:
          if (auto b = rpc::ResizeRequest::decode(r)) roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrInsert:
          if (auto b = cluster::MgrInsertRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrReplicate:
          if (auto b = cluster::MgrReplicateRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrStatePull:
          if (auto b = cluster::MgrStatePullRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrColluderSet:
          if (auto b = cluster::MgrColluderSetRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrRejoin:
          if (auto b = cluster::MgrRejoinRequest::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrResyncHint:
          if (auto b = cluster::MgrResyncHintRequest::decode(r))
            roundtrip_body(*b);
          break;
        default:
          // kPing / kQueryColluders / kGetMetrics / kGoAway / kMgrRingInfo
          // have no request body; unknown types are the server's
          // kUnsupportedType path.
          break;
      }
    }
  }
  {
    rpc::Reader r(payload);
    rpc::ResponseHeader h;
    if (rpc::decode_response_header(r, h)) {
      switch (static_cast<rpc::MsgType>(h.type)) {
        case rpc::MsgType::kSubmitBatch:
          if (auto b = rpc::SubmitBatchResponse::decode(r)) roundtrip_body(*b);
          break;
        case rpc::MsgType::kQueryReputation:
          if (auto b = rpc::QueryReputationResponse::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kQueryColluders:
          if (auto b = rpc::QueryColludersResponse::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kGetMetrics:
          if (auto b = rpc::GetMetricsResponse::decode(r)) roundtrip_body(*b);
          break;
        case rpc::MsgType::kResize:
          if (auto b = rpc::ResizeResponse::decode(r)) roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrInsert:
          if (auto b = cluster::MgrInsertResponse::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrStatePull:
          if (auto b = cluster::MgrStatePullResponse::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrColluderSet:
          if (auto b = cluster::MgrColluderSetResponse::decode(r))
            roundtrip_body(*b);
          break;
        case rpc::MsgType::kMgrRingInfo:
          if (auto b = cluster::MgrRingInfoResponse::decode(r))
            roundtrip_body(*b);
          break;
        default:
          // kMgrReplicate / kMgrRejoin / kMgrResyncHint responses have no
          // body.
          break;
      }
    }
  }
}

}  // namespace

int rpc_one_input(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Stream mode: the server/client read path — extract CRC-checked frames
  // from the byte stream, feed each payload to the envelope decoders.
  std::string_view rest = input;
  for (;;) {
    std::string_view payload;
    std::size_t consumed = 0;
    std::string error;
    const rpc::FrameResult res = rpc::try_decode_frame(
        rest, rpc::kDefaultMaxFrameBytes, &payload, &consumed, &error);
    if (res != rpc::FrameResult::kFrame) break;
    fuzz_check(consumed >= rpc::kFrameHeaderBytes && consumed <= rest.size(),
               "frame consumed outside buffer bounds");
    fuzz_check(payload.size() == consumed - rpc::kFrameHeaderBytes,
               "frame payload size inconsistent with consumed bytes");
    exercise_rpc_payload(payload);
    rest.remove_prefix(consumed);
  }

  // Raw mode: the same bytes as a bare payload, so envelope/body decoders
  // see inputs no CRC check has laundered.
  exercise_rpc_payload(input);
  return 0;
}

// --- WAL -------------------------------------------------------------------

int wal_one_input(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const service::WalReadResult result = service::parse_wal(input);

  fuzz_check(result.records.size() == result.end_offsets.size(),
             "records/end_offsets size mismatch");
  fuzz_check(result.valid_bytes <= input.size(),
             "valid_bytes exceeds input size");
  if (!result.found) {
    fuzz_check(result.records.empty() && result.valid_bytes == 0,
               "records parsed out of a header-less file");
    return 0;
  }
  fuzz_check(result.valid_bytes >= service::kWalHeaderBytes,
             "valid_bytes below header size");

  // Canonical-encoding oracle: rebuilding the image from the parsed header
  // and records must reproduce the accepted prefix byte-for-byte.
  std::string rebuilt;
  service::append_wal_header(rebuilt, result.generation, result.map_epoch,
                             result.num_shards);
  std::uint64_t prev_end = service::kWalHeaderBytes;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    service::append_wal_frame(rebuilt, result.records[i]);
    fuzz_check(result.end_offsets[i] > prev_end,
               "record end offsets not strictly increasing");
    fuzz_check(rebuilt.size() == result.end_offsets[i],
               "re-encoded record length disagrees with end offset");
    prev_end = result.end_offsets[i];
  }
  fuzz_check(rebuilt.size() == result.valid_bytes,
             "re-encoded image length disagrees with valid_bytes");
  fuzz_check(rebuilt == input.substr(0, result.valid_bytes),
             "re-encoded WAL image differs from accepted prefix");
  return 0;
}

// --- Checkpoint ------------------------------------------------------------

int checkpoint_one_input(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const std::optional<service::ShardCheckpoint> ckpt =
      service::parse_checkpoint(input);
  if (!ckpt) return 0;
  // parse_checkpoint accepts only whole, CRC-clean, fully-consumed images,
  // so re-encoding must reproduce the input exactly.
  fuzz_check(service::encode_checkpoint(*ckpt) == input,
             "re-encoded checkpoint differs from accepted image");
  return 0;
}

}  // namespace p2prep::fuzz
