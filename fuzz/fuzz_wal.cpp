// libFuzzer entry point for WAL v2 image parsing (service::parse_wal):
// header, record frames, fence markers, torn tails. Build with
// -DP2PREP_FUZZERS=ON under Clang; run e.g.
//   build/fuzz/fuzz_wal fuzz/corpus/wal -max_total_time=60
#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return p2prep::fuzz::wal_one_input(data, size);
}
