// Deterministic seed-corpus generator. Writes the checked-in corpus under
// fuzz/corpus/{rpc,wal,checkpoint}/ by round-tripping the project's REAL
// encoders (rpc::encode_*, service::append_wal_*, encode_checkpoint), so
// every structural seed is a byte-exact valid input — the fuzzer starts
// from deep coverage instead of flailing at the magic/CRC checks — plus
// hand-built hostile fixtures that pin each decoder guard (oversize
// lengths, hostile counts under a valid CRC, bad kinds/scores, torn
// frames, version skew).
//
// Usage:  fuzz_corpus_gen <output-dir>
//
// Output is a pure function of this file: no clocks, no randomness, stable
// filenames. Regenerating over an up-to-date checkout must be a no-op
// (ctest FuzzCorpus.* verifies exactly that), so any encoder change that
// shifts the wire format shows up as a corpus diff in review.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "cluster/protocol.h"
#include "rating/types.h"
#include "rpc/protocol.h"
#include "service/metrics.h"
#include "service/wal.h"

namespace {

using p2prep::rating::Rating;
using p2prep::rating::Score;

int g_failures = 0;

void emit(const std::filesystem::path& dir, const char* name,
          const std::string& bytes) {
  const std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "corpus_gen: failed to write %s\n",
                 path.string().c_str());
    ++g_failures;
  }
}

// --- RPC seeds -------------------------------------------------------------

/// Frames `payload` exactly as the client/server write path does.
std::string framed(const std::string& payload) {
  return p2prep::rpc::encode_frame(payload);
}

void gen_rpc(const std::filesystem::path& dir) {
  namespace rpc = p2prep::rpc;

  // Valid requests, one per bodied message type (+ the body-less kPing).
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kPing, 1);
    emit(dir, "req_ping", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kSubmitRating, 2);
    rpc::SubmitRatingRequest body;
    body.rating = Rating{7, 11, Score::kPositive, 42};
    body.encode(p);
    emit(dir, "req_submit_rating", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kSubmitBatch, 3);
    rpc::SubmitBatchRequest body;
    body.ratings = {Rating{1, 2, Score::kPositive, 10},
                    Rating{2, 1, Score::kNegative, 11},
                    Rating{3, 4, Score::kNeutral, 12}};
    body.encode(p);
    emit(dir, "req_submit_batch", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kQueryReputation, 4);
    rpc::QueryReputationRequest body;
    body.node = 9;
    body.encode(p);
    emit(dir, "req_query_reputation", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kResize, 5);
    rpc::ResizeRequest body;
    body.new_num_shards = 8;
    body.encode(p);
    emit(dir, "req_resize", framed(p));
  }

  // Valid responses, one per bodied type + kGoAway's bare envelope.
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kSubmitBatch);
    h.request_id = 3;
    rpc::encode_response_header(p, h);
    rpc::SubmitBatchResponse body;
    body.accepted = 2;
    body.rejected = 1;
    body.encode(p);
    emit(dir, "resp_submit_batch", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kQueryReputation);
    h.request_id = 4;
    rpc::encode_response_header(p, h);
    rpc::QueryReputationResponse body;
    body.reputation = 0.625;
    body.suspected = 1;
    body.epoch = 17;
    body.shard = 2;
    body.encode(p);
    emit(dir, "resp_query_reputation", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kQueryColluders);
    h.request_id = 6;
    rpc::encode_response_header(p, h);
    rpc::QueryColludersResponse body;
    body.colluders = {3, 5, 9};
    body.total_suspected = 3;
    body.truncated = 0;
    body.encode(p);
    emit(dir, "resp_query_colluders", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kGetMetrics);
    h.request_id = 7;
    rpc::encode_response_header(p, h);
    rpc::GetMetricsResponse body;
    body.metrics.ratings_accepted = 1000;
    body.metrics.ratings_applied = 990;
    body.metrics.epochs_completed = 4;
    body.metrics.detections_total = 6;
    body.metrics.current_shard_count = 4;
    body.metrics.wal_records = 990;
    body.metrics.ingest_rate_per_sec = 12345.5;
    body.encode(p);
    emit(dir, "resp_get_metrics", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kResize);
    h.request_id = 5;
    rpc::encode_response_header(p, h);
    rpc::ResizeResponse body;
    body.num_shards = 8;
    body.keys_moved = 512;
    body.duration_ms = 3;
    body.encode(p);
    emit(dir, "resp_resize", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kGoAway);
    h.request_id = 0;
    h.status = rpc::Status::kRetryLater;
    h.backoff_hint_ms = 250;
    rpc::encode_response_header(p, h);
    emit(dir, "resp_goaway_retry_later", framed(p));
  }

  // Stream mode: two back-to-back frames in one input.
  {
    std::string ping;
    rpc::encode_request_header(ping, rpc::MsgType::kPing, 8);
    std::string query;
    rpc::encode_request_header(query, rpc::MsgType::kQueryReputation, 9);
    rpc::QueryReputationRequest body;
    body.node = 1;
    body.encode(query);
    emit(dir, "stream_two_frames", framed(ping) + framed(query));
  }

  // Version skew: the envelope decoder must surface version 2 (so the
  // server answers kUnsupportedVersion), not choke on it.
  {
    std::string p;
    rpc::put_u8(p, 2);  // future protocol version
    rpc::put_u8(p, static_cast<std::uint8_t>(rpc::MsgType::kPing));
    rpc::put_u64(p, 10);
    emit(dir, "req_version_skew", framed(p));
  }

  // Hostile framing: each fixture pins one guard in try_decode_frame.
  {
    const std::string whole = framed(std::string("payload"));
    emit(dir, "frame_truncated_header", whole.substr(0, 5));
    emit(dir, "frame_truncated_payload", whole.substr(0, whole.size() - 2));
    std::string bad_crc = whole;
    bad_crc.back() = static_cast<char>(bad_crc.back() ^ 0x01);
    emit(dir, "frame_bad_crc", bad_crc);
  }
  {
    // Length field beyond kDefaultMaxFrameBytes: must be kError (stream
    // corrupt), never an allocation of the announced size.
    std::string p;
    rpc::put_u32(p, 0xffffffffu);
    rpc::put_u32(p, 0xdeadbeefu);
    emit(dir, "frame_oversize_len", p);
  }

  // Hostile counts under a VALID frame CRC: the count guard inside the
  // body decoder is the only line of defense (kMaxBatchRatings /
  // kMaxColluderIds, and the bytes-present check).
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kSubmitBatch, 11);
    rpc::put_u32(p, 0xffffffffu);  // count with no ratings behind it
    emit(dir, "req_batch_hostile_count", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kQueryColluders);
    h.request_id = 12;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 0x00ffffffu);  // count >> kMaxColluderIds
    emit(dir, "resp_colluders_hostile_count", framed(p));
  }
}

// --- Manager-cluster seeds (same rpc framing, so same corpus dir) ----------

void gen_cluster(const std::filesystem::path& dir) {
  namespace rpc = p2prep::rpc;
  namespace cluster = p2prep::cluster;

  // Valid requests, one per manager-to-manager type with a body
  // (kMgrRingInfo's request is body-less, like kPing).
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrInsert, 20);
    cluster::MgrInsertRequest body;
    body.source = 3;
    body.seq = 41;
    body.forwarded = 1;
    body.rating = Rating{7, 11, Score::kPositive, 42};
    body.encode(p);
    emit(dir, "req_mgr_insert", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrReplicate, 21);
    cluster::MgrReplicateRequest body;
    body.range = 2;
    body.source = 3;
    body.seq = 41;
    body.rating = Rating{7, 11, Score::kPositive, 42};
    body.encode(p);
    emit(dir, "req_mgr_replicate", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrStatePull, 22);
    cluster::MgrStatePullRequest body;
    body.range = 1;
    body.encode(p);
    emit(dir, "req_mgr_state_pull", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrColluderSet, 23);
    cluster::MgrColluderSetRequest body;
    body.epoch_seq = 5;
    body.flagged = {3, 5, 9};
    body.encode(p);
    emit(dir, "req_mgr_colluder_set", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrRejoin, 24);
    cluster::MgrRejoinRequest body;
    body.index = 2;
    body.encode(p);
    emit(dir, "req_mgr_rejoin", framed(p));
  }
  {
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrResyncHint, 26);
    cluster::MgrResyncHintRequest body;
    body.range = 1;
    body.encode(p);
    emit(dir, "req_mgr_resync_hint", framed(p));
  }

  // Valid responses, one per bodied type.
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrInsert);
    h.request_id = 20;
    rpc::encode_response_header(p, h);
    cluster::MgrInsertResponse body;
    body.duplicate = 1;
    body.encode(p);
    emit(dir, "resp_mgr_insert", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrStatePull);
    h.request_id = 22;
    rpc::encode_response_header(p, h);
    cluster::MgrStatePullResponse body;
    body.range = 1;
    body.blob = "checkpoint-image-bytes";
    body.seqs = {{3, 41}, {4, 17}};
    body.encode(p);
    emit(dir, "resp_mgr_state_pull", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrColluderSet);
    h.request_id = 23;
    rpc::encode_response_header(p, h);
    cluster::MgrColluderSetResponse body;
    body.epochs_completed = 5;
    body.encode(p);
    emit(dir, "resp_mgr_colluder_set", framed(p));
  }
  {
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrRingInfo);
    h.request_id = 25;
    rpc::encode_response_header(p, h);
    cluster::MgrRingInfoResponse body;
    body.replication = 2;
    body.num_nodes = 1000;
    body.members = {{"127.0.0.1", 7500, 1},
                    {"127.0.0.1", 7501, 0},
                    {"127.0.0.1", 7502, 1}};
    body.encode(p);
    emit(dir, "resp_mgr_ring_info", framed(p));
  }

  // Hostile bodies under a VALID frame CRC — each pins one decoder guard
  // in cluster/protocol.cpp.
  {
    // forwarded flag outside {0,1}: a second relay must be rejected at
    // decode, not looped.
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrInsert, 30);
    rpc::put_u64(p, 3);   // source
    rpc::put_u64(p, 41);  // seq
    rpc::put_u8(p, 2);    // forwarded > 1
    rpc::put_rating(p, Rating{7, 11, Score::kPositive, 42});
    emit(dir, "req_mgr_insert_bad_forwarded", framed(p));
  }
  {
    // blob_len beyond kMaxStateBlobBytes with no bytes behind it.
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrStatePull);
    h.request_id = 31;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 1);            // range
    rpc::put_u32(p, 0xffffffffu);  // blob_len >> kMaxStateBlobBytes
    emit(dir, "resp_state_pull_hostile_blob_len", framed(p));
  }
  {
    // seq-table count beyond kMaxSeqEntries behind an empty blob.
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrStatePull);
    h.request_id = 32;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 1);            // range
    rpc::put_u32(p, 0);            // empty blob
    rpc::put_u32(p, 0xffffffffu);  // seq count >> kMaxSeqEntries
    emit(dir, "resp_state_pull_hostile_seq_count", framed(p));
  }
  {
    // flagged-id count with no ids behind it (kMaxColluderIds guard).
    std::string p;
    rpc::encode_request_header(p, rpc::MsgType::kMgrColluderSet, 33);
    rpc::put_u64(p, 5);            // epoch_seq
    rpc::put_u32(p, 0xffffffffu);  // count, no ids follow
    emit(dir, "req_mgr_colluder_set_hostile_count", framed(p));
  }
  {
    // member count beyond kMaxManagers with no members behind it.
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrRingInfo);
    h.request_id = 34;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 2);            // replication
    rpc::put_u64(p, 1000);         // num_nodes
    rpc::put_u32(p, 0xffffffffu);  // member count >> kMaxManagers
    emit(dir, "resp_ring_info_hostile_member_count", framed(p));
  }
  {
    // host_len beyond kMaxHostBytes inside the first member.
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrRingInfo);
    h.request_id = 35;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 2);       // replication
    rpc::put_u64(p, 1000);    // num_nodes
    rpc::put_u32(p, 1);       // one member
    rpc::put_u16(p, 0xffff);  // host_len >> kMaxHostBytes
    emit(dir, "resp_ring_info_hostile_host_len", framed(p));
  }
  {
    // alive flag outside {0,1}.
    std::string p;
    rpc::ResponseHeader h;
    h.type = static_cast<std::uint8_t>(rpc::MsgType::kMgrRingInfo);
    h.request_id = 36;
    rpc::encode_response_header(p, h);
    rpc::put_u32(p, 2);     // replication
    rpc::put_u64(p, 1000);  // num_nodes
    rpc::put_u32(p, 1);     // one member
    rpc::put_u16(p, 4);     // host_len
    p.append("host");
    rpc::put_u16(p, 7500);  // port
    rpc::put_u8(p, 2);      // alive > 1
    emit(dir, "resp_ring_info_bad_alive", framed(p));
  }
}

// --- WAL seeds -------------------------------------------------------------

void gen_wal(const std::filesystem::path& dir) {
  namespace service = p2prep::service;
  using service::WalRecord;

  std::string header;
  service::append_wal_header(header, /*generation=*/1, /*map_epoch=*/0,
                             /*num_shards=*/4);

  emit(dir, "header_only", header);

  {
    std::string img = header;
    service::append_wal_frame(img, WalRecord::make_rating(
                                       Rating{1, 2, Score::kPositive, 5}));
    service::append_wal_frame(img, WalRecord::make_rating(
                                       Rating{2, 3, Score::kNegative, 6}));
    service::append_wal_frame(img, WalRecord::make_rating(
                                       Rating{3, 1, Score::kNeutral, 7}));
    emit(dir, "ratings", img);

    service::append_wal_frame(img, WalRecord::make_marker(1));
    emit(dir, "ratings_epoch_marker", img);

    // Uncommitted-resize residue: fence marker as the last record.
    std::string fenced = img;
    service::append_wal_frame(fenced, WalRecord::make_map_change(
                                          /*map_epoch=*/1, /*new_shards=*/8));
    emit(dir, "resize_fence_tail", fenced);

    // Torn tail: crash mid-append left half a frame. The valid prefix must
    // parse, truncated_tail must be reported.
    std::string torn = img;
    std::string extra;
    service::append_wal_frame(extra, WalRecord::make_rating(
                                         Rating{4, 5, Score::kPositive, 8}));
    torn += extra.substr(0, extra.size() / 2);
    emit(dir, "torn_tail", torn);
  }

  // Header mutations.
  {
    std::string bad_magic = header;
    bad_magic[0] = 'X';
    emit(dir, "bad_magic", bad_magic);
    emit(dir, "truncated_header", header.substr(0, 12));
  }

  // Hostile record length past kMaxWalRecordBytes: the reader must cut the
  // file there, not trust the announced size.
  {
    std::string img = header;
    p2prep::rpc::put_u32(img, service::kMaxWalRecordBytes + 1);
    p2prep::rpc::put_u32(img, 0xdeadbeefu);
    emit(dir, "oversize_record_len", img);
  }

  // Frame-level corruption: valid length, wrong CRC.
  {
    std::string img = header;
    service::append_wal_frame(img, WalRecord::make_marker(9));
    img.back() = static_cast<char>(img.back() ^ 0x01);
    emit(dir, "record_bad_crc", img);
  }

  // Payload-level corruption under a VALID CRC — the payload decoder's own
  // validation is what must reject these.
  {
    std::string payload;
    p2prep::rpc::put_u8(payload, 9);  // unknown record kind
    std::string img = header;
    p2prep::rpc::put_u32(img, static_cast<std::uint32_t>(payload.size()));
    p2prep::rpc::put_u32(img, service::crc32(payload.data(), payload.size()));
    img += payload;
    emit(dir, "bad_kind_valid_crc", img);
  }
  {
    std::string payload;
    p2prep::rpc::put_u8(
        payload, static_cast<std::uint8_t>(service::WalRecordKind::kRating));
    p2prep::rpc::put_u32(payload, 1);
    p2prep::rpc::put_u32(payload, 2);
    p2prep::rpc::put_u8(payload, 7);  // biased score out of [0,2]
    p2prep::rpc::put_u64(payload, 3);
    std::string img = header;
    p2prep::rpc::put_u32(img, static_cast<std::uint32_t>(payload.size()));
    p2prep::rpc::put_u32(img, service::crc32(payload.data(), payload.size()));
    img += payload;
    emit(dir, "bad_score_valid_crc", img);
  }
}

// --- Checkpoint seeds ------------------------------------------------------

void gen_checkpoint(const std::filesystem::path& dir) {
  namespace service = p2prep::service;
  namespace rpc = p2prep::rpc;

  service::ShardCheckpoint minimal;
  emit(dir, "minimal", service::encode_checkpoint(minimal));

  service::ShardCheckpoint full;
  full.wal_generation = 3;
  full.wal_records_applied = 128;
  full.map_epoch = 2;
  full.map_num_shards = 8;
  full.epochs_completed = 5;
  full.applied_total = 4096;
  full.applied_since_epoch = 96;
  full.last_epoch_tick = 700;
  full.engine_blob = "engine-state-bytes";
  full.suppressed = {2, 7, 19};
  full.detected = {7, 19};
  full.cells.push_back({/*ratee=*/1, /*rater=*/2, {10, 8, 1}});
  full.cells.push_back({/*ratee=*/2, /*rater=*/1, {4, 1, 3}});
  const std::string full_img = service::encode_checkpoint(full);
  emit(dir, "populated", full_img);

  // Corruption fixtures derived from the valid image.
  emit(dir, "truncated_tail", full_img.substr(0, full_img.size() - 3));
  {
    std::string bad_crc = full_img;
    bad_crc.back() = static_cast<char>(bad_crc.back() ^ 0x01);
    emit(dir, "bad_crc", bad_crc);
  }
  {
    std::string bad_magic = full_img;
    bad_magic[0] = 'X';
    emit(dir, "bad_magic", bad_magic);
  }

  // Hostile counts under a VALID CRC: a ~60-byte image announcing 2^32-1
  // suppressed ids (or 2^64/20 cells). The pre-allocation count guards in
  // parse_checkpoint are the only thing between this file and a multi-GiB
  // resize — CRC does not help, the "attacker" below computes it honestly.
  const auto hostile_image = [](const std::string& payload) {
    std::string img = "P2PCKPT2";
    rpc::put_u32(img, static_cast<std::uint32_t>(payload.size()));
    rpc::put_u32(img, service::crc32(payload.data(), payload.size()));
    img += payload;
    return img;
  };
  const auto fixed_prefix = [] {
    std::string payload;
    rpc::put_u64(payload, 1);   // wal_generation
    rpc::put_u64(payload, 0);   // wal_records_applied
    rpc::put_u64(payload, 0);   // map_epoch
    rpc::put_u32(payload, 1);   // map_num_shards
    rpc::put_u64(payload, 0);   // epochs_completed
    rpc::put_u64(payload, 0);   // applied_total
    rpc::put_u64(payload, 0);   // applied_since_epoch
    rpc::put_u64(payload, 0);   // last_epoch_tick
    rpc::put_u32(payload, 0);   // engine_blob length
    return payload;
  };
  {
    std::string payload = fixed_prefix();
    rpc::put_u32(payload, 0xffffffffu);  // suppressed count, no ids behind
    emit(dir, "hostile_suppressed_count", hostile_image(payload));
  }
  {
    std::string payload = fixed_prefix();
    rpc::put_u32(payload, 0);            // suppressed
    rpc::put_u32(payload, 0xffffffffu);  // detected count
    emit(dir, "hostile_detected_count", hostile_image(payload));
  }
  {
    std::string payload = fixed_prefix();
    rpc::put_u32(payload, 0);                       // suppressed
    rpc::put_u32(payload, 0);                       // detected
    rpc::put_u64(payload, 0xffffffffffffffffull);   // cell count
    emit(dir, "hostile_cell_count", hostile_image(payload));
  }
  {
    // engine_blob length pointing past the end of the payload.
    std::string payload = fixed_prefix();
    payload.resize(payload.size() - 4);  // drop the honest blob length
    rpc::put_u32(payload, 0xffffffffu);
    emit(dir, "hostile_blob_len", hostile_image(payload));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_corpus_gen <output-dir>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  std::error_code ec;
  for (const char* sub : {"rpc", "wal", "checkpoint"}) {
    std::filesystem::create_directories(root / sub, ec);
    if (ec) {
      std::fprintf(stderr, "corpus_gen: cannot create %s: %s\n",
                   (root / sub).string().c_str(), ec.message().c_str());
      return 1;
    }
  }
  gen_rpc(root / "rpc");
  gen_cluster(root / "rpc");
  gen_wal(root / "wal");
  gen_checkpoint(root / "checkpoint");
  if (g_failures != 0) return 1;
  std::fprintf(stderr, "corpus_gen: wrote seed corpus under %s\n",
               root.string().c_str());
  return 0;
}
