// libFuzzer entry point for shard-checkpoint image parsing
// (service::parse_checkpoint). Build with -DP2PREP_FUZZERS=ON under Clang;
// run e.g.
//   build/fuzz/fuzz_checkpoint fuzz/corpus/checkpoint -max_total_time=60
#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return p2prep::fuzz::checkpoint_one_input(data, size);
}
