// libFuzzer entry point for the RPC wire protocol (rpc/protocol.h):
// framing, envelopes, and every message-body decoder. Build with
// -DP2PREP_FUZZERS=ON under Clang; run e.g.
//   build/fuzz/fuzz_rpc_protocol fuzz/corpus/rpc -max_total_time=60
#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return p2prep::fuzz::rpc_one_input(data, size);
}
