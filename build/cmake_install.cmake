# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tools/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/libp2prep_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/rating/libp2prep_rating.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/reputation/libp2prep_reputation.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/dht/libp2prep_dht.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libp2prep_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/managers/libp2prep_managers.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/net/libp2prep_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/trace/libp2prep_trace.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/tools/p2prep_cli")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_cli")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/tools/p2prep_figures")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/p2prep_figures")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/p2prep" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep/p2prepTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep/p2prepTargets.cmake"
         "/root/repo/build/CMakeFiles/Export/a7b1fcc0224f9769666e5f4d7d7df93e/p2prepTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep/p2prepTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep/p2prepTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/a7b1fcc0224f9769666e5f4d7d7df93e/p2prepTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/p2prep" TYPE FILE FILES "/root/repo/build/CMakeFiles/Export/a7b1fcc0224f9769666e5f4d7d7df93e/p2prepTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
