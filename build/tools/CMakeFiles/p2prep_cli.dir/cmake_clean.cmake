file(REMOVE_RECURSE
  "CMakeFiles/p2prep_cli.dir/p2prep_cli.cpp.o"
  "CMakeFiles/p2prep_cli.dir/p2prep_cli.cpp.o.d"
  "p2prep_cli"
  "p2prep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
