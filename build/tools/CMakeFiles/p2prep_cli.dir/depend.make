# Empty dependencies file for p2prep_cli.
# This may be replaced when dependencies are built.
