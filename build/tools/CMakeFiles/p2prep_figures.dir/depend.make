# Empty dependencies file for p2prep_figures.
# This may be replaced when dependencies are built.
