file(REMOVE_RECURSE
  "CMakeFiles/p2prep_figures.dir/p2prep_figures.cpp.o"
  "CMakeFiles/p2prep_figures.dir/p2prep_figures.cpp.o.d"
  "p2prep_figures"
  "p2prep_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
