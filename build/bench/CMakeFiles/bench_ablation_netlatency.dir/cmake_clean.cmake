file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_netlatency.dir/bench_ablation_netlatency.cpp.o"
  "CMakeFiles/bench_ablation_netlatency.dir/bench_ablation_netlatency.cpp.o.d"
  "bench_ablation_netlatency"
  "bench_ablation_netlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_netlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
