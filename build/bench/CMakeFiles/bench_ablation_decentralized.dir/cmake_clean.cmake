file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decentralized.dir/bench_ablation_decentralized.cpp.o"
  "CMakeFiles/bench_ablation_decentralized.dir/bench_ablation_decentralized.cpp.o.d"
  "bench_ablation_decentralized"
  "bench_ablation_decentralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decentralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
