# Empty dependencies file for bench_ablation_decentralized.
# This may be replaced when dependencies are built.
