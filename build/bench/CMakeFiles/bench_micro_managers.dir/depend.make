# Empty dependencies file for bench_micro_managers.
# This may be replaced when dependencies are built.
