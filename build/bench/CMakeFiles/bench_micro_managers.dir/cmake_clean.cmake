file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_managers.dir/bench_micro_managers.cpp.o"
  "CMakeFiles/bench_micro_managers.dir/bench_micro_managers.cpp.o.d"
  "bench_micro_managers"
  "bench_micro_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
