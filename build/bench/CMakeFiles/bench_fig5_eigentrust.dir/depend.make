# Empty dependencies file for bench_fig5_eigentrust.
# This may be replaced when dependencies are built.
