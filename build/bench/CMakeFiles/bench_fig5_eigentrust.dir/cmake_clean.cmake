file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_eigentrust.dir/bench_fig5_eigentrust.cpp.o"
  "CMakeFiles/bench_fig5_eigentrust.dir/bench_fig5_eigentrust.cpp.o.d"
  "bench_fig5_eigentrust"
  "bench_fig5_eigentrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eigentrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
