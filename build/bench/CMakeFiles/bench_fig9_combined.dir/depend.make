# Empty dependencies file for bench_fig9_combined.
# This may be replaced when dependencies are built.
