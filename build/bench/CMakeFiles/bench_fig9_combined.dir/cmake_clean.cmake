file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_combined.dir/bench_fig9_combined.cpp.o"
  "CMakeFiles/bench_fig9_combined.dir/bench_fig9_combined.cpp.o.d"
  "bench_fig9_combined"
  "bench_fig9_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
