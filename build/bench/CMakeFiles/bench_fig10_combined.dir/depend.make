# Empty dependencies file for bench_fig10_combined.
# This may be replaced when dependencies are built.
