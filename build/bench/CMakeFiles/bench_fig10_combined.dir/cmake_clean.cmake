file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_combined.dir/bench_fig10_combined.cpp.o"
  "CMakeFiles/bench_fig10_combined.dir/bench_fig10_combined.cpp.o.d"
  "bench_fig10_combined"
  "bench_fig10_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
