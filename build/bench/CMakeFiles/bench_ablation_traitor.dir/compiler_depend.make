# Empty compiler generated dependencies file for bench_ablation_traitor.
# This may be replaced when dependencies are built.
