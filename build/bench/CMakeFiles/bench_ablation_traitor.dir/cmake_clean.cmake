file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_traitor.dir/bench_ablation_traitor.cpp.o"
  "CMakeFiles/bench_ablation_traitor.dir/bench_ablation_traitor.cpp.o.d"
  "bench_ablation_traitor"
  "bench_ablation_traitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_traitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
