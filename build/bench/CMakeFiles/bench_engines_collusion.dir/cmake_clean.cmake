file(REMOVE_RECURSE
  "CMakeFiles/bench_engines_collusion.dir/bench_engines_collusion.cpp.o"
  "CMakeFiles/bench_engines_collusion.dir/bench_engines_collusion.cpp.o.d"
  "bench_engines_collusion"
  "bench_engines_collusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engines_collusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
