# Empty dependencies file for bench_detector_scaling.
# This may be replaced when dependencies are built.
