file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_scaling.dir/bench_detector_scaling.cpp.o"
  "CMakeFiles/bench_detector_scaling.dir/bench_detector_scaling.cpp.o.d"
  "bench_detector_scaling"
  "bench_detector_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
