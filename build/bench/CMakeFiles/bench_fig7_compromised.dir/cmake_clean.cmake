file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_compromised.dir/bench_fig7_compromised.cpp.o"
  "CMakeFiles/bench_fig7_compromised.dir/bench_fig7_compromised.cpp.o.d"
  "bench_fig7_compromised"
  "bench_fig7_compromised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_compromised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
