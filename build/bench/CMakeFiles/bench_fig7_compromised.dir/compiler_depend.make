# Empty compiler generated dependencies file for bench_fig7_compromised.
# This may be replaced when dependencies are built.
