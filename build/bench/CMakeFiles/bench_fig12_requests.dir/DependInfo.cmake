
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_requests.cpp" "bench/CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/p2prep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p2prep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/p2prep_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2prep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/p2prep_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/p2prep_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/p2prep_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
