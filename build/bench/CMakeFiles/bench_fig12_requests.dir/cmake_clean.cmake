file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cpp.o"
  "CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cpp.o.d"
  "bench_fig12_requests"
  "bench_fig12_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
