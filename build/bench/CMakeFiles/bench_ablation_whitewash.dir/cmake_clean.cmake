file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_whitewash.dir/bench_ablation_whitewash.cpp.o"
  "CMakeFiles/bench_ablation_whitewash.dir/bench_ablation_whitewash.cpp.o.d"
  "bench_ablation_whitewash"
  "bench_ablation_whitewash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_whitewash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
