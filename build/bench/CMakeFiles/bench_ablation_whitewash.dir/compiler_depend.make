# Empty compiler generated dependencies file for bench_ablation_whitewash.
# This may be replaced when dependencies are built.
