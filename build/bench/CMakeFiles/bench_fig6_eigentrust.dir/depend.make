# Empty dependencies file for bench_fig6_eigentrust.
# This may be replaced when dependencies are built.
