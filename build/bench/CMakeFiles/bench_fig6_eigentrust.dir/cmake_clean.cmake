file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_eigentrust.dir/bench_fig6_eigentrust.cpp.o"
  "CMakeFiles/bench_fig6_eigentrust.dir/bench_fig6_eigentrust.cpp.o.d"
  "bench_fig6_eigentrust"
  "bench_fig6_eigentrust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_eigentrust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
