file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_group.dir/bench_ablation_group.cpp.o"
  "CMakeFiles/bench_ablation_group.dir/bench_ablation_group.cpp.o.d"
  "bench_ablation_group"
  "bench_ablation_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
