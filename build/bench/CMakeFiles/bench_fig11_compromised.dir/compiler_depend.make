# Empty compiler generated dependencies file for bench_fig11_compromised.
# This may be replaced when dependencies are built.
