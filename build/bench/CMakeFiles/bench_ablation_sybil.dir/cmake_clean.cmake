file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sybil.dir/bench_ablation_sybil.cpp.o"
  "CMakeFiles/bench_ablation_sybil.dir/bench_ablation_sybil.cpp.o.d"
  "bench_ablation_sybil"
  "bench_ablation_sybil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sybil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
