# Empty dependencies file for bench_ablation_sybil.
# This may be replaced when dependencies are built.
