# Empty dependencies file for p2prep_tests.
# This may be replaced when dependencies are built.
