
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/accomplice_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/accomplice_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/accomplice_test.cpp.o.d"
  "/root/repo/tests/core/basic_detector_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/basic_detector_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/basic_detector_test.cpp.o.d"
  "/root/repo/tests/core/calibration_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/calibration_test.cpp.o.d"
  "/root/repo/tests/core/detector_equivalence_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/detector_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/detector_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/detector_property_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/detector_property_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/detector_property_test.cpp.o.d"
  "/root/repo/tests/core/evidence_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/evidence_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/evidence_test.cpp.o.d"
  "/root/repo/tests/core/formula_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/formula_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/formula_test.cpp.o.d"
  "/root/repo/tests/core/group_detector_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/group_detector_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/group_detector_test.cpp.o.d"
  "/root/repo/tests/core/optimized_detector_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/optimized_detector_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/optimized_detector_test.cpp.o.d"
  "/root/repo/tests/core/predicates_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/core/predicates_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/core/predicates_test.cpp.o.d"
  "/root/repo/tests/dht/chord_property_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/dht/chord_property_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/dht/chord_property_test.cpp.o.d"
  "/root/repo/tests/dht/chord_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/dht/chord_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/dht/chord_test.cpp.o.d"
  "/root/repo/tests/dht/hash_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/dht/hash_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/dht/hash_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/robustness_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/integration/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/integration/robustness_test.cpp.o.d"
  "/root/repo/tests/integration/scale_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/integration/scale_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/integration/scale_test.cpp.o.d"
  "/root/repo/tests/managers/centralized_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/managers/centralized_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/managers/centralized_test.cpp.o.d"
  "/root/repo/tests/managers/churn_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/managers/churn_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/managers/churn_test.cpp.o.d"
  "/root/repo/tests/managers/decentralized_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/managers/decentralized_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/managers/decentralized_test.cpp.o.d"
  "/root/repo/tests/managers/incremental_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/managers/incremental_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/managers/incremental_test.cpp.o.d"
  "/root/repo/tests/managers/latency_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/managers/latency_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/managers/latency_test.cpp.o.d"
  "/root/repo/tests/net/attack_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/attack_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/attack_test.cpp.o.d"
  "/root/repo/tests/net/churn_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/churn_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/churn_test.cpp.o.d"
  "/root/repo/tests/net/experiment_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/experiment_test.cpp.o.d"
  "/root/repo/tests/net/metrics_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/metrics_test.cpp.o.d"
  "/root/repo/tests/net/overlay_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/overlay_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/overlay_test.cpp.o.d"
  "/root/repo/tests/net/roles_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/roles_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/roles_test.cpp.o.d"
  "/root/repo/tests/net/simulator_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/simulator_test.cpp.o.d"
  "/root/repo/tests/net/whitewash_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/net/whitewash_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/net/whitewash_test.cpp.o.d"
  "/root/repo/tests/rating/matrix_property_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/matrix_property_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/matrix_property_test.cpp.o.d"
  "/root/repo/tests/rating/matrix_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/matrix_test.cpp.o.d"
  "/root/repo/tests/rating/pair_stats_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/pair_stats_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/pair_stats_test.cpp.o.d"
  "/root/repo/tests/rating/store_model_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/store_model_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/store_model_test.cpp.o.d"
  "/root/repo/tests/rating/store_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/store_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/store_test.cpp.o.d"
  "/root/repo/tests/rating/types_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/rating/types_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/rating/types_test.cpp.o.d"
  "/root/repo/tests/reputation/eigentrust_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/eigentrust_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/eigentrust_test.cpp.o.d"
  "/root/repo/tests/reputation/gossiptrust_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/gossiptrust_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/gossiptrust_test.cpp.o.d"
  "/root/repo/tests/reputation/peertrust_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/peertrust_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/peertrust_test.cpp.o.d"
  "/root/repo/tests/reputation/ratio_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/ratio_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/ratio_test.cpp.o.d"
  "/root/repo/tests/reputation/summation_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/summation_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/summation_test.cpp.o.d"
  "/root/repo/tests/reputation/trustguard_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/trustguard_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/trustguard_test.cpp.o.d"
  "/root/repo/tests/reputation/weighted_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/reputation/weighted_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/reputation/weighted_test.cpp.o.d"
  "/root/repo/tests/trace/amazon_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/trace/amazon_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/trace/amazon_test.cpp.o.d"
  "/root/repo/tests/trace/analysis_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/trace/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/trace/analysis_test.cpp.o.d"
  "/root/repo/tests/trace/io_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/trace/io_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/trace/io_test.cpp.o.d"
  "/root/repo/tests/trace/overstock_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/trace/overstock_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/trace/overstock_test.cpp.o.d"
  "/root/repo/tests/util/cost_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/cost_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/cost_test.cpp.o.d"
  "/root/repo/tests/util/distributions_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/distributions_test.cpp.o.d"
  "/root/repo/tests/util/event_queue_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/event_queue_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/matrix_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/matrix_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/svg_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/svg_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/svg_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/p2prep_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/p2prep_tests.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/p2prep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p2prep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/p2prep_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2prep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/p2prep_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/p2prep_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/rating/CMakeFiles/p2prep_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
