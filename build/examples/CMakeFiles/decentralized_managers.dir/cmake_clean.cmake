file(REMOVE_RECURSE
  "CMakeFiles/decentralized_managers.dir/decentralized_managers.cpp.o"
  "CMakeFiles/decentralized_managers.dir/decentralized_managers.cpp.o.d"
  "decentralized_managers"
  "decentralized_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
