# Empty dependencies file for decentralized_managers.
# This may be replaced when dependencies are built.
