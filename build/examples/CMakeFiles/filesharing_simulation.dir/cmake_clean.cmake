file(REMOVE_RECURSE
  "CMakeFiles/filesharing_simulation.dir/filesharing_simulation.cpp.o"
  "CMakeFiles/filesharing_simulation.dir/filesharing_simulation.cpp.o.d"
  "filesharing_simulation"
  "filesharing_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesharing_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
