# Empty dependencies file for filesharing_simulation.
# This may be replaced when dependencies are built.
