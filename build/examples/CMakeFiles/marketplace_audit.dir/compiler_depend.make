# Empty compiler generated dependencies file for marketplace_audit.
# This may be replaced when dependencies are built.
