
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/amazon.cpp" "src/trace/CMakeFiles/p2prep_trace.dir/amazon.cpp.o" "gcc" "src/trace/CMakeFiles/p2prep_trace.dir/amazon.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/p2prep_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/p2prep_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/p2prep_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/p2prep_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/overstock.cpp" "src/trace/CMakeFiles/p2prep_trace.dir/overstock.cpp.o" "gcc" "src/trace/CMakeFiles/p2prep_trace.dir/overstock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rating/CMakeFiles/p2prep_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
