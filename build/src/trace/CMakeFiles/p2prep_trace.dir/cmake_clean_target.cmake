file(REMOVE_RECURSE
  "libp2prep_trace.a"
)
