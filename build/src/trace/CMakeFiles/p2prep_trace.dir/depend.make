# Empty dependencies file for p2prep_trace.
# This may be replaced when dependencies are built.
