file(REMOVE_RECURSE
  "CMakeFiles/p2prep_trace.dir/amazon.cpp.o"
  "CMakeFiles/p2prep_trace.dir/amazon.cpp.o.d"
  "CMakeFiles/p2prep_trace.dir/analysis.cpp.o"
  "CMakeFiles/p2prep_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/p2prep_trace.dir/io.cpp.o"
  "CMakeFiles/p2prep_trace.dir/io.cpp.o.d"
  "CMakeFiles/p2prep_trace.dir/overstock.cpp.o"
  "CMakeFiles/p2prep_trace.dir/overstock.cpp.o.d"
  "libp2prep_trace.a"
  "libp2prep_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
