file(REMOVE_RECURSE
  "libp2prep_core.a"
)
