# Empty dependencies file for p2prep_core.
# This may be replaced when dependencies are built.
