
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accomplice.cpp" "src/core/CMakeFiles/p2prep_core.dir/accomplice.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/accomplice.cpp.o.d"
  "/root/repo/src/core/basic_detector.cpp" "src/core/CMakeFiles/p2prep_core.dir/basic_detector.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/basic_detector.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/p2prep_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/evidence.cpp" "src/core/CMakeFiles/p2prep_core.dir/evidence.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/evidence.cpp.o.d"
  "/root/repo/src/core/group_detector.cpp" "src/core/CMakeFiles/p2prep_core.dir/group_detector.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/group_detector.cpp.o.d"
  "/root/repo/src/core/optimized_detector.cpp" "src/core/CMakeFiles/p2prep_core.dir/optimized_detector.cpp.o" "gcc" "src/core/CMakeFiles/p2prep_core.dir/optimized_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rating/CMakeFiles/p2prep_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
