file(REMOVE_RECURSE
  "CMakeFiles/p2prep_core.dir/accomplice.cpp.o"
  "CMakeFiles/p2prep_core.dir/accomplice.cpp.o.d"
  "CMakeFiles/p2prep_core.dir/basic_detector.cpp.o"
  "CMakeFiles/p2prep_core.dir/basic_detector.cpp.o.d"
  "CMakeFiles/p2prep_core.dir/calibration.cpp.o"
  "CMakeFiles/p2prep_core.dir/calibration.cpp.o.d"
  "CMakeFiles/p2prep_core.dir/evidence.cpp.o"
  "CMakeFiles/p2prep_core.dir/evidence.cpp.o.d"
  "CMakeFiles/p2prep_core.dir/group_detector.cpp.o"
  "CMakeFiles/p2prep_core.dir/group_detector.cpp.o.d"
  "CMakeFiles/p2prep_core.dir/optimized_detector.cpp.o"
  "CMakeFiles/p2prep_core.dir/optimized_detector.cpp.o.d"
  "libp2prep_core.a"
  "libp2prep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
