file(REMOVE_RECURSE
  "libp2prep_net.a"
)
