# Empty compiler generated dependencies file for p2prep_net.
# This may be replaced when dependencies are built.
