file(REMOVE_RECURSE
  "CMakeFiles/p2prep_net.dir/experiment.cpp.o"
  "CMakeFiles/p2prep_net.dir/experiment.cpp.o.d"
  "CMakeFiles/p2prep_net.dir/overlay.cpp.o"
  "CMakeFiles/p2prep_net.dir/overlay.cpp.o.d"
  "CMakeFiles/p2prep_net.dir/roles.cpp.o"
  "CMakeFiles/p2prep_net.dir/roles.cpp.o.d"
  "CMakeFiles/p2prep_net.dir/simulator.cpp.o"
  "CMakeFiles/p2prep_net.dir/simulator.cpp.o.d"
  "libp2prep_net.a"
  "libp2prep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
