file(REMOVE_RECURSE
  "libp2prep_managers.a"
)
