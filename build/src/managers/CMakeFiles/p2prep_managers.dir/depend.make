# Empty dependencies file for p2prep_managers.
# This may be replaced when dependencies are built.
