file(REMOVE_RECURSE
  "CMakeFiles/p2prep_managers.dir/centralized.cpp.o"
  "CMakeFiles/p2prep_managers.dir/centralized.cpp.o.d"
  "CMakeFiles/p2prep_managers.dir/decentralized.cpp.o"
  "CMakeFiles/p2prep_managers.dir/decentralized.cpp.o.d"
  "CMakeFiles/p2prep_managers.dir/incremental.cpp.o"
  "CMakeFiles/p2prep_managers.dir/incremental.cpp.o.d"
  "CMakeFiles/p2prep_managers.dir/latency.cpp.o"
  "CMakeFiles/p2prep_managers.dir/latency.cpp.o.d"
  "libp2prep_managers.a"
  "libp2prep_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
