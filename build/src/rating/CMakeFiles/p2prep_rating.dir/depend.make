# Empty dependencies file for p2prep_rating.
# This may be replaced when dependencies are built.
