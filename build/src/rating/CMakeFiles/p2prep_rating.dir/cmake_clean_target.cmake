file(REMOVE_RECURSE
  "libp2prep_rating.a"
)
