file(REMOVE_RECURSE
  "CMakeFiles/p2prep_rating.dir/matrix.cpp.o"
  "CMakeFiles/p2prep_rating.dir/matrix.cpp.o.d"
  "CMakeFiles/p2prep_rating.dir/store.cpp.o"
  "CMakeFiles/p2prep_rating.dir/store.cpp.o.d"
  "libp2prep_rating.a"
  "libp2prep_rating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
