file(REMOVE_RECURSE
  "CMakeFiles/p2prep_reputation.dir/eigentrust.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/eigentrust.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/gossiptrust.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/gossiptrust.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/peertrust.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/peertrust.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/ratio.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/ratio.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/summation.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/summation.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/trustguard.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/trustguard.cpp.o.d"
  "CMakeFiles/p2prep_reputation.dir/weighted.cpp.o"
  "CMakeFiles/p2prep_reputation.dir/weighted.cpp.o.d"
  "libp2prep_reputation.a"
  "libp2prep_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
