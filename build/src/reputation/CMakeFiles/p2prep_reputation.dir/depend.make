# Empty dependencies file for p2prep_reputation.
# This may be replaced when dependencies are built.
