
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reputation/eigentrust.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/eigentrust.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/eigentrust.cpp.o.d"
  "/root/repo/src/reputation/gossiptrust.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/gossiptrust.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/gossiptrust.cpp.o.d"
  "/root/repo/src/reputation/peertrust.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/peertrust.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/peertrust.cpp.o.d"
  "/root/repo/src/reputation/ratio.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/ratio.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/ratio.cpp.o.d"
  "/root/repo/src/reputation/summation.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/summation.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/summation.cpp.o.d"
  "/root/repo/src/reputation/trustguard.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/trustguard.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/trustguard.cpp.o.d"
  "/root/repo/src/reputation/weighted.cpp" "src/reputation/CMakeFiles/p2prep_reputation.dir/weighted.cpp.o" "gcc" "src/reputation/CMakeFiles/p2prep_reputation.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rating/CMakeFiles/p2prep_rating.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
