file(REMOVE_RECURSE
  "libp2prep_reputation.a"
)
