file(REMOVE_RECURSE
  "libp2prep_util.a"
)
