file(REMOVE_RECURSE
  "CMakeFiles/p2prep_util.dir/event_queue.cpp.o"
  "CMakeFiles/p2prep_util.dir/event_queue.cpp.o.d"
  "CMakeFiles/p2prep_util.dir/histogram.cpp.o"
  "CMakeFiles/p2prep_util.dir/histogram.cpp.o.d"
  "CMakeFiles/p2prep_util.dir/stats.cpp.o"
  "CMakeFiles/p2prep_util.dir/stats.cpp.o.d"
  "CMakeFiles/p2prep_util.dir/svg.cpp.o"
  "CMakeFiles/p2prep_util.dir/svg.cpp.o.d"
  "CMakeFiles/p2prep_util.dir/table.cpp.o"
  "CMakeFiles/p2prep_util.dir/table.cpp.o.d"
  "CMakeFiles/p2prep_util.dir/thread_pool.cpp.o"
  "CMakeFiles/p2prep_util.dir/thread_pool.cpp.o.d"
  "libp2prep_util.a"
  "libp2prep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
