# Empty dependencies file for p2prep_util.
# This may be replaced when dependencies are built.
