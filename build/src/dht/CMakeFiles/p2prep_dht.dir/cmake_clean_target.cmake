file(REMOVE_RECURSE
  "libp2prep_dht.a"
)
