file(REMOVE_RECURSE
  "CMakeFiles/p2prep_dht.dir/chord.cpp.o"
  "CMakeFiles/p2prep_dht.dir/chord.cpp.o.d"
  "CMakeFiles/p2prep_dht.dir/hash.cpp.o"
  "CMakeFiles/p2prep_dht.dir/hash.cpp.o.d"
  "libp2prep_dht.a"
  "libp2prep_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prep_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
