# Empty dependencies file for p2prep_dht.
# This may be replaced when dependencies are built.
