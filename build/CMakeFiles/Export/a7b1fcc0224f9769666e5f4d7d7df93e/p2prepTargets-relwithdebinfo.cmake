#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "p2prep::p2prep_util" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_util.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_util )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_util "${_IMPORT_PREFIX}/lib/libp2prep_util.a" )

# Import target "p2prep::p2prep_rating" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_rating APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_rating PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_rating.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_rating )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_rating "${_IMPORT_PREFIX}/lib/libp2prep_rating.a" )

# Import target "p2prep::p2prep_reputation" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_reputation APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_reputation PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_reputation.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_reputation )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_reputation "${_IMPORT_PREFIX}/lib/libp2prep_reputation.a" )

# Import target "p2prep::p2prep_dht" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_dht APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_dht PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_dht.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_dht )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_dht "${_IMPORT_PREFIX}/lib/libp2prep_dht.a" )

# Import target "p2prep::p2prep_core" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_core.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_core )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_core "${_IMPORT_PREFIX}/lib/libp2prep_core.a" )

# Import target "p2prep::p2prep_managers" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_managers APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_managers PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_managers.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_managers )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_managers "${_IMPORT_PREFIX}/lib/libp2prep_managers.a" )

# Import target "p2prep::p2prep_net" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_net.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_net )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_net "${_IMPORT_PREFIX}/lib/libp2prep_net.a" )

# Import target "p2prep::p2prep_trace" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libp2prep_trace.a"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_trace )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_trace "${_IMPORT_PREFIX}/lib/libp2prep_trace.a" )

# Import target "p2prep::p2prep_cli" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_cli APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_cli PROPERTIES
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/bin/p2prep_cli"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_cli )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_cli "${_IMPORT_PREFIX}/bin/p2prep_cli" )

# Import target "p2prep::p2prep_figures" for configuration "RelWithDebInfo"
set_property(TARGET p2prep::p2prep_figures APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(p2prep::p2prep_figures PROPERTIES
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/bin/p2prep_figures"
  )

list(APPEND _cmake_import_check_targets p2prep::p2prep_figures )
list(APPEND _cmake_import_check_files_for_p2prep::p2prep_figures "${_IMPORT_PREFIX}/bin/p2prep_figures" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
