// Whitewashing: detected colluders abandon their identities and resume
// under fresh ones.
#include <gtest/gtest.h>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"

namespace p2prep::net {
namespace {

SimConfig ww_config() {
  SimConfig c;
  c.num_nodes = 80;
  c.num_interests = 8;
  c.sim_cycles = 6;
  c.query_cycles_per_sim_cycle = 10;
  c.whitewash_on_detection = true;
  c.seed = 404;
  return c;
}

core::DetectorConfig detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

TEST(WhitewashTest, IdentitiesRotateAfterDetection) {
  reputation::WeightedFeedbackEngine engine;
  const NodeRoles original = paper_roles(4, 2);
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(ww_config(), original, engine, &detector);
  sim.run_sim_cycle();  // colluders detected and whitewashed
  EXPECT_EQ(sim.whitewash_count(), 4u);
  // The live collusion edges no longer involve the burned ids.
  for (rating::NodeId burned : original.colluders) {
    for (const auto& [a, b] : sim.roles().collusion_edges) {
      EXPECT_NE(a, burned);
      EXPECT_NE(b, burned);
    }
    EXPECT_EQ(sim.type_of(burned), NodeType::kNormal);
    EXPECT_FALSE(sim.online(burned));
  }
  // Fresh identities came from the top of the id space.
  for (const auto& [a, b] : sim.roles().collusion_edges) {
    EXPECT_GE(a, 70u);
    EXPECT_GE(b, 70u);
    EXPECT_EQ(sim.type_of(a), NodeType::kColluder);
  }
}

TEST(WhitewashTest, EachGenerationIsReDetected) {
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(ww_config(), paper_roles(4, 2), engine, &detector);
  sim.run();
  // 4 colluders whitewashed every cycle they are caught; over 6 cycles
  // many generations burn through.
  EXPECT_GE(sim.whitewash_count(), 3u * 4u);
  // Every currently-live colluder generation is freshly suppressible:
  // traffic share stays low despite the identity churn.
  EXPECT_LT(sim.metrics().percent_to_colluders(), 10.0);
}

TEST(WhitewashTest, PoolExhaustionStopsRotation) {
  SimConfig config = ww_config();
  config.num_nodes = 16;  // tiny pool: 2 pretrusted + 4 colluders + 10 normal
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(config, paper_roles(4, 2), engine, &detector);
  sim.run();
  // At most the normal population minus one can be consumed.
  EXPECT_LE(sim.whitewash_count(), 10u);
  EXPECT_EQ(sim.sim_cycles_run(), config.sim_cycles);
}

TEST(WhitewashTest, DisabledByDefault) {
  SimConfig config = ww_config();
  config.whitewash_on_detection = false;
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  const NodeRoles roles = paper_roles(4, 2);
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  EXPECT_EQ(sim.whitewash_count(), 0u);
  EXPECT_EQ(sim.roles().colluders, roles.colluders);
}

}  // namespace
}  // namespace p2prep::net
