#include "net/metrics.h"

#include <gtest/gtest.h>

namespace p2prep::net {
namespace {

TEST(MetricsTest, PercentToColludersZeroWhenNoRequests) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.percent_to_colluders(), 0.0);
}

TEST(MetricsTest, PercentToColludersComputed) {
  Metrics m;
  m.total_requests = 200;
  m.requests_to_colluders = 50;
  EXPECT_DOUBLE_EQ(m.percent_to_colluders(), 25.0);
}

TEST(MetricsTest, PercentBoundedByHundred) {
  Metrics m;
  m.total_requests = 10;
  m.requests_to_colluders = 10;
  EXPECT_DOUBLE_EQ(m.percent_to_colluders(), 100.0);
}

}  // namespace
}  // namespace p2prep::net
