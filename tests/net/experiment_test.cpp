#include "net/experiment.h"

#include <gtest/gtest.h>

namespace p2prep::net {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.config.num_nodes = 50;
  spec.config.num_interests = 8;
  spec.config.sim_cycles = 3;
  spec.config.query_cycles_per_sim_cycle = 10;
  spec.config.seed = 77;
  spec.roles = paper_roles(4, 2);
  spec.runs = 2;
  spec.detector_config.positive_fraction_min = 0.9;
  spec.detector_config.complement_fraction_max = 0.7;
  spec.detector_config.frequency_min = 20;
  return spec;
}

TEST(ExperimentTest, NamesAreStable) {
  EXPECT_EQ(to_string(EngineKind::kWeighted), "WeightedEigenTrust");
  EXPECT_EQ(to_string(EngineKind::kEigenTrust), "EigenTrust");
  EXPECT_EQ(to_string(EngineKind::kSummation), "Summation");
  EXPECT_EQ(to_string(DetectorKind::kNone), "None");
  EXPECT_EQ(to_string(DetectorKind::kBasic), "Unoptimized");
  EXPECT_EQ(to_string(DetectorKind::kOptimized), "Optimized");
}

TEST(ExperimentTest, BaselineRunAverages) {
  const ExperimentResult r = run_experiment(small_spec());
  EXPECT_EQ(r.runs, 2u);
  EXPECT_EQ(r.avg_reputation.size(), 50u);
  EXPECT_GT(r.avg_total_requests, 0.0);
  EXPECT_GT(r.avg_engine_cost, 0.0);
  EXPECT_EQ(r.avg_detector_cost, 0.0);  // no detector attached
  EXPECT_EQ(r.avg_recall, 0.0);
  double sum = 0.0;
  for (double rep : r.avg_reputation) sum += rep;
  EXPECT_NEAR(sum, 1.0, 1e-6);  // each run's engine publishes a distribution
}

TEST(ExperimentTest, DetectionAchievesFullRecall) {
  ExperimentSpec spec = small_spec();
  spec.detector = DetectorKind::kOptimized;
  const ExperimentResult r = run_experiment(spec);
  EXPECT_DOUBLE_EQ(r.avg_recall, 1.0);
  EXPECT_EQ(r.avg_false_positives, 0.0);
  EXPECT_GT(r.avg_detector_cost, 0.0);
  for (rating::NodeId id : spec.roles.colluders) {
    EXPECT_DOUBLE_EQ(r.avg_reputation[id], 0.0);
    EXPECT_DOUBLE_EQ(r.detection_rate[id], 1.0);
  }
}

TEST(ExperimentTest, DetectionLowersColluderTraffic) {
  ExperimentSpec baseline = small_spec();
  ExperimentSpec protected_spec = small_spec();
  protected_spec.detector = DetectorKind::kOptimized;
  const auto rb = run_experiment(baseline);
  const auto rp = run_experiment(protected_spec);
  EXPECT_LT(rp.avg_percent_to_colluders, rb.avg_percent_to_colluders);
}

TEST(ExperimentTest, BasicAndOptimizedSameRecallDifferentCost) {
  ExperimentSpec basic = small_spec();
  basic.detector = DetectorKind::kBasic;
  ExperimentSpec optimized = small_spec();
  optimized.detector = DetectorKind::kOptimized;
  const auto rb = run_experiment(basic);
  const auto ro = run_experiment(optimized);
  EXPECT_DOUBLE_EQ(rb.avg_recall, ro.avg_recall);
  EXPECT_GT(rb.avg_detector_cost, ro.avg_detector_cost);
}

TEST(ExperimentTest, DeterministicForSameSpec) {
  const auto a = run_experiment(small_spec());
  const auto b = run_experiment(small_spec());
  EXPECT_EQ(a.avg_reputation, b.avg_reputation);
  EXPECT_DOUBLE_EQ(a.avg_percent_to_colluders, b.avg_percent_to_colluders);
}

TEST(ExperimentTest, EigenTrustEngineVariant) {
  ExperimentSpec spec = small_spec();
  spec.engine = EngineKind::kEigenTrust;
  spec.runs = 1;
  const auto r = run_experiment(spec);
  EXPECT_GT(r.avg_engine_cost, 0.0);
  double sum = 0.0;
  for (double rep : r.avg_reputation) sum += rep;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace p2prep::net
