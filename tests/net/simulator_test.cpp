#include "net/simulator.h"

#include <gtest/gtest.h>

#include "core/optimized_detector.h"
#include "reputation/weighted.h"

namespace p2prep::net {
namespace {

SimConfig small_config() {
  SimConfig c;
  c.num_nodes = 60;
  c.num_interests = 8;
  c.sim_cycles = 3;
  c.query_cycles_per_sim_cycle = 10;
  c.seed = 42;
  return c;
}

/// Detector thresholds for simulation workloads (see DESIGN.md: T_b must
/// sit between colluders' service quality and normal nodes' 0.8).
core::DetectorConfig sim_detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

TEST(SimulatorTest, RunsAndProducesTraffic) {
  reputation::WeightedFeedbackEngine engine;
  Simulator sim(small_config(), paper_roles(4, 2), engine);
  sim.run();
  EXPECT_EQ(sim.sim_cycles_run(), 3u);
  EXPECT_GT(sim.metrics().total_requests, 0u);
  EXPECT_GT(sim.metrics().authentic_files, 0u);
  EXPECT_EQ(sim.metrics().total_requests,
            sim.metrics().authentic_files + sim.metrics().inauthentic_files);
}

TEST(SimulatorTest, RolesConfigureNodeBehaviour) {
  reputation::WeightedFeedbackEngine engine;
  const SimConfig c = small_config();
  Simulator sim(c, paper_roles(4, 2), engine);
  EXPECT_EQ(sim.type_of(0), NodeType::kPretrusted);
  EXPECT_EQ(sim.type_of(2), NodeType::kColluder);
  EXPECT_EQ(sim.type_of(30), NodeType::kNormal);
  EXPECT_DOUBLE_EQ(sim.good_prob_of(0), c.pretrusted_good_prob);
  EXPECT_DOUBLE_EQ(sim.good_prob_of(2), c.colluder_good_prob);
  EXPECT_DOUBLE_EQ(sim.good_prob_of(30), c.normal_good_prob);
  for (rating::NodeId id = 0; id < c.num_nodes; ++id) {
    EXPECT_GE(sim.active_prob_of(id), c.min_active_prob);
    EXPECT_LE(sim.active_prob_of(id), c.max_active_prob);
  }
}

TEST(SimulatorTest, CollusionRatingsInjectedPerQueryCycle) {
  reputation::WeightedFeedbackEngine engine;
  const SimConfig c = small_config();
  const NodeRoles roles = paper_roles(4, 2);  // 2 collusion edges
  Simulator sim(c, roles, engine);
  sim.run_sim_cycle();
  // 2 edges * 2 directions * 10 ratings * 10 query cycles.
  EXPECT_EQ(sim.metrics().collusion_ratings, 2u * 2u * 10u * 10u);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  auto run = [] {
    reputation::WeightedFeedbackEngine engine;
    Simulator sim(small_config(), paper_roles(4, 2), engine);
    sim.run();
    return std::vector<double>(engine.reputations().begin(),
                               engine.reputations().end());
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    reputation::WeightedFeedbackEngine engine;
    SimConfig c = small_config();
    c.seed = seed;
    Simulator sim(c, paper_roles(4, 2), engine);
    sim.run();
    return sim.metrics().total_requests;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(SimulatorTest, CollusionBoostsColluderReputationWithoutDetection) {
  // The Fig. 5 effect: with B = 0.6, colluders end up with the highest
  // reputations in the system.
  reputation::WeightedFeedbackEngine engine;
  SimConfig c = small_config();
  c.colluder_good_prob = 0.6;
  c.sim_cycles = 5;
  const NodeRoles roles = paper_roles(4, 2);
  Simulator sim(c, roles, engine);
  sim.run();
  double colluder_avg = 0.0;
  for (rating::NodeId id : roles.colluders)
    colluder_avg += engine.reputation(id);
  colluder_avg /= static_cast<double>(roles.colluders.size());
  double normal_avg = 0.0;
  std::size_t normals = 0;
  for (rating::NodeId id = 10; id < c.num_nodes; ++id) {
    normal_avg += engine.reputation(id);
    ++normals;
  }
  normal_avg /= static_cast<double>(normals);
  EXPECT_GT(colluder_avg, normal_avg * 2.0);
}

TEST(SimulatorTest, DetectorSuppressesColluders) {
  // The Fig. 8/10 effect: with detection attached, all colluders end at 0.
  reputation::WeightedFeedbackEngine engine;
  SimConfig c = small_config();
  c.sim_cycles = 5;
  const NodeRoles roles = paper_roles(4, 2);
  core::OptimizedCollusionDetector detector(sim_detector_config());
  Simulator sim(c, roles, engine, &detector);
  sim.run();
  for (rating::NodeId id : roles.colluders)
    EXPECT_EQ(engine.reputation(id), 0.0) << "colluder " << id;
  EXPECT_GT(sim.detections(), 0u);
  EXPECT_GT(sim.detection_cost().total(), 0u);
  // Pretrusted nodes (good service) survive detection.
  for (rating::NodeId id : roles.pretrusted)
    EXPECT_TRUE(sim.manager().detected().find(id) ==
                sim.manager().detected().end());
}

TEST(SimulatorTest, DetectionReducesColluderTraffic) {
  SimConfig c = small_config();
  c.sim_cycles = 6;
  const NodeRoles roles = paper_roles(8, 2);

  reputation::WeightedFeedbackEngine baseline_engine;
  Simulator baseline(c, roles, baseline_engine);
  baseline.run();

  reputation::WeightedFeedbackEngine protected_engine;
  core::OptimizedCollusionDetector detector(sim_detector_config());
  Simulator protected_sim(c, roles, protected_engine, &detector);
  protected_sim.run();

  EXPECT_LT(protected_sim.metrics().percent_to_colluders(),
            baseline.metrics().percent_to_colluders());
}

TEST(SimulatorTest, CapacityBoundsPerNodeServiceLoad) {
  reputation::WeightedFeedbackEngine engine;
  SimConfig c = small_config();
  c.node_capacity = 2;
  c.sim_cycles = 1;
  Simulator sim(c, paper_roles(4, 2), engine);
  sim.run();
  // Per query cycle each node serves at most `capacity` requests:
  // 10 query cycles * 2 = 20 max.
  for (std::uint64_t served : sim.metrics().requests_served)
    EXPECT_LE(served, 20u);
}

TEST(SimulatorTest, RequestsGoToClusterMembersOnly) {
  reputation::WeightedFeedbackEngine engine;
  const SimConfig c = small_config();
  Simulator sim(c, paper_roles(4, 2), engine);
  sim.run_sim_cycle();
  // Every rating in the manager's store connects a client to a server
  // sharing at least one interest.
  const auto& store = sim.manager().store();
  for (rating::NodeId server = 0; server < c.num_nodes; ++server) {
    store.for_each_window_rater(
        server, [&](rating::NodeId client, const rating::PairStats&) {
          // Collusion partners rate each other regardless of interest.
          for (const auto& [a, b] : sim.roles().collusion_edges) {
            if ((a == client && b == server) || (b == client && a == server))
              return;
          }
          bool shared = false;
          for (InterestId cat : sim.overlay().interests_of(client)) {
            if (sim.overlay().has_interest(server, cat)) shared = true;
          }
          EXPECT_TRUE(shared)
              << "client " << client << " rated non-neighbor " << server;
        });
  }
}

}  // namespace
}  // namespace p2prep::net
