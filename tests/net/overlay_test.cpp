#include "net/overlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace p2prep::net {
namespace {

SimConfig small_config() {
  SimConfig c;
  c.num_nodes = 60;
  c.num_interests = 10;
  c.min_interests_per_node = 1;
  c.max_interests_per_node = 4;
  return c;
}

TEST(InterestOverlayTest, EveryNodeHasInterestsInRange) {
  const SimConfig c = small_config();
  util::Rng rng(1);
  InterestOverlay overlay(c, rng);
  EXPECT_EQ(overlay.num_nodes(), c.num_nodes);
  EXPECT_EQ(overlay.num_interests(), c.num_interests);
  for (rating::NodeId id = 0; id < c.num_nodes; ++id) {
    const auto mine = overlay.interests_of(id);
    EXPECT_GE(mine.size(), c.min_interests_per_node);
    EXPECT_LE(mine.size(), c.max_interests_per_node);
    for (InterestId cat : mine) EXPECT_LT(cat, c.num_interests);
  }
}

TEST(InterestOverlayTest, InterestsAreDistinctAndSorted) {
  const SimConfig c = small_config();
  util::Rng rng(2);
  InterestOverlay overlay(c, rng);
  for (rating::NodeId id = 0; id < c.num_nodes; ++id) {
    const auto mine = overlay.interests_of(id);
    EXPECT_TRUE(std::is_sorted(mine.begin(), mine.end()));
    const std::set<InterestId> unique(mine.begin(), mine.end());
    EXPECT_EQ(unique.size(), mine.size());
  }
}

TEST(InterestOverlayTest, ClustersMirrorInterests) {
  const SimConfig c = small_config();
  util::Rng rng(3);
  InterestOverlay overlay(c, rng);
  // Node in cluster <=> cluster in node's interests, both directions.
  for (InterestId cat = 0; cat < c.num_interests; ++cat) {
    for (rating::NodeId member : overlay.cluster(cat))
      EXPECT_TRUE(overlay.has_interest(member, cat));
  }
  std::size_t total_memberships = 0;
  for (rating::NodeId id = 0; id < c.num_nodes; ++id)
    total_memberships += overlay.interests_of(id).size();
  std::size_t total_cluster_size = 0;
  for (InterestId cat = 0; cat < c.num_interests; ++cat)
    total_cluster_size += overlay.cluster(cat).size();
  EXPECT_EQ(total_memberships, total_cluster_size);
}

TEST(InterestOverlayTest, DeterministicForSameSeed) {
  const SimConfig c = small_config();
  util::Rng rng1(7);
  util::Rng rng2(7);
  InterestOverlay a(c, rng1);
  InterestOverlay b(c, rng2);
  for (rating::NodeId id = 0; id < c.num_nodes; ++id) {
    const auto ia = a.interests_of(id);
    const auto ib = b.interests_of(id);
    ASSERT_EQ(ia.size(), ib.size());
    EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
  }
}

TEST(InterestOverlayTest, HasInterestNegativeCase) {
  SimConfig c = small_config();
  c.min_interests_per_node = 1;
  c.max_interests_per_node = 1;
  util::Rng rng(9);
  InterestOverlay overlay(c, rng);
  for (rating::NodeId id = 0; id < 10; ++id) {
    const InterestId mine = overlay.interests_of(id)[0];
    std::size_t held = 0;
    for (InterestId cat = 0; cat < c.num_interests; ++cat)
      if (overlay.has_interest(id, cat)) ++held;
    EXPECT_EQ(held, 1u);
    EXPECT_TRUE(overlay.has_interest(id, mine));
  }
}

TEST(InterestOverlayTest, PaperScaleConfig) {
  // The paper's setup: 200 nodes, 20 interests, 1-5 interests per node.
  SimConfig c;
  util::Rng rng(20120910);
  InterestOverlay overlay(c, rng);
  EXPECT_EQ(overlay.num_nodes(), 200u);
  EXPECT_EQ(overlay.num_interests(), 20u);
  // With 200 nodes and ~3 interests each, every cluster should be
  // populated (expected ~30 members).
  for (InterestId cat = 0; cat < 20; ++cat)
    EXPECT_GT(overlay.cluster(cat).size(), 5u);
}

}  // namespace
}  // namespace p2prep::net
