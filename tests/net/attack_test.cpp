// Attack-model tests: Sybil boosting (mutual and one-directional) and
// traitorous behaviour switches — the threat extensions beyond the paper's
// pairwise collusion (its stated future work).
#include <gtest/gtest.h>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"

namespace p2prep::net {
namespace {

SimConfig small_config() {
  SimConfig c;
  c.num_nodes = 60;
  c.num_interests = 8;
  c.sim_cycles = 5;
  c.query_cycles_per_sim_cycle = 10;
  c.seed = 99;
  return c;
}

core::DetectorConfig detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

TEST(SybilRolesTest, MutualAndOneWayStructures) {
  const NodeRoles mutual = sybil_roles(2, 3, /*mutual=*/true);
  EXPECT_EQ(mutual.collusion_edges.size(), 6u);
  EXPECT_TRUE(mutual.boost_edges.empty());
  EXPECT_EQ(mutual.colluders.size(), 2u + 6u);  // targets + sybils

  const NodeRoles oneway = sybil_roles(2, 3, /*mutual=*/false);
  EXPECT_TRUE(oneway.collusion_edges.empty());
  EXPECT_EQ(oneway.boost_edges.size(), 6u);
  // Targets take ids right after the pretrusted nodes (0-based 3, 4).
  EXPECT_EQ(oneway.boost_edges[0].second, 3u);
  EXPECT_EQ(oneway.boost_edges[3].second, 4u);
}

TEST(SybilAttackTest, OneWayBoostInflatesTarget) {
  const SimConfig config = small_config();
  const NodeRoles roles = sybil_roles(1, 4, /*mutual=*/false);
  reputation::WeightedFeedbackEngine engine;
  Simulator sim(config, roles, engine);
  sim.run();
  // Target (id 3) collects 4 sybils * 10 ratings * 10 qc * 5 cycles of
  // positive feedback: far above any normal node.
  double normal_max = 0.0;
  for (rating::NodeId id = 8; id < config.num_nodes; ++id)
    normal_max = std::max(normal_max, engine.reputation(id));
  EXPECT_GT(engine.reputation(3), normal_max);
}

TEST(SybilAttackTest, MutualRingCaughtByDefaultDetector) {
  const SimConfig config = small_config();
  const NodeRoles roles = sybil_roles(1, 4, /*mutual=*/true);
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  EXPECT_TRUE(sim.manager().detected().contains(3));  // target zeroed
  EXPECT_DOUBLE_EQ(engine.reputation(3), 0.0);
}

TEST(SybilAttackTest, OneWayBoostEvadesMutualPredicate) {
  // The documented limitation: with require_mutual (the paper's method),
  // a one-directional Sybil boost is never flagged.
  const SimConfig config = small_config();
  const NodeRoles roles = sybil_roles(1, 4, /*mutual=*/false);
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  EXPECT_FALSE(sim.manager().detected().contains(3));
  EXPECT_GT(engine.reputation(3), 0.0);
}

TEST(SybilAttackTest, OneSidedModeCatchesOneWayBoost) {
  const SimConfig config = small_config();
  const NodeRoles roles = sybil_roles(1, 4, /*mutual=*/false);
  reputation::WeightedFeedbackEngine engine;
  core::DetectorConfig dc = detector_config();
  dc.require_mutual = false;
  core::OptimizedCollusionDetector detector(dc);
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  EXPECT_TRUE(sim.manager().detected().contains(3));
  EXPECT_DOUBLE_EQ(engine.reputation(3), 0.0);
  // No honest node is collateral damage in this workload.
  for (rating::NodeId id : sim.manager().detected())
    EXPECT_EQ(roles.type_of(id), NodeType::kColluder);
}

TEST(TraitorRolesTest, Structure) {
  const NodeRoles roles = traitor_roles(4, 2);
  EXPECT_EQ(roles.pretrusted.size(), 2u);
  EXPECT_EQ(roles.traitors, (std::vector<rating::NodeId>{2, 3, 4, 5}));
  EXPECT_TRUE(roles.collusion_edges.empty());
  EXPECT_TRUE(roles.colluders.empty());
}

TEST(TraitorAttackTest, BehaviourSwitchesAtDefectCycle) {
  SimConfig config = small_config();
  config.sim_cycles = 6;
  config.traitor_defect_cycle = 3;
  config.traitor_good_prob_after = 0.0;
  const NodeRoles roles = traitor_roles(3, 2);
  reputation::WeightedFeedbackEngine engine;
  Simulator sim(config, roles, engine);

  for (std::size_t c = 0; c < 3; ++c) sim.run_sim_cycle();
  EXPECT_DOUBLE_EQ(sim.good_prob_of(roles.traitors[0]),
                   config.normal_good_prob);
  sim.run_sim_cycle();  // cycle index 3: defection applies at its start
  EXPECT_DOUBLE_EQ(sim.good_prob_of(roles.traitors[0]), 0.0);
}

TEST(TraitorAttackTest, NoFalseCollusionDetection) {
  // Traitors degrade service but never collude: the detector must stay
  // silent (reputation decay is the engine's job, not detection's).
  SimConfig config = small_config();
  config.sim_cycles = 8;
  config.traitor_defect_cycle = 4;
  const NodeRoles roles = traitor_roles(4, 2);
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  EXPECT_TRUE(sim.manager().detected().empty());
}

}  // namespace
}  // namespace p2prep::net
