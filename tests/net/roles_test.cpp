#include "net/roles.h"

#include <gtest/gtest.h>

#include <set>

namespace p2prep::net {
namespace {

TEST(RolesTest, PaperRolesMatchSectionV) {
  // Paper ids: pretrusted 1-3, colluders 4-11 -> 0-based 0-2 and 3-10.
  const NodeRoles roles = paper_roles(8, 3);
  EXPECT_EQ(roles.pretrusted, (std::vector<rating::NodeId>{0, 1, 2}));
  EXPECT_EQ(roles.colluders,
            (std::vector<rating::NodeId>{3, 4, 5, 6, 7, 8, 9, 10}));
  ASSERT_EQ(roles.collusion_edges.size(), 4u);
  EXPECT_EQ(roles.collusion_edges[0], (std::pair<rating::NodeId,
                                       rating::NodeId>{3, 4}));
  EXPECT_EQ(roles.collusion_edges[3], (std::pair<rating::NodeId,
                                       rating::NodeId>{9, 10}));
}

TEST(RolesTest, TypeOfClassifies) {
  const NodeRoles roles = paper_roles(8, 3);
  EXPECT_EQ(roles.type_of(0), NodeType::kPretrusted);
  EXPECT_EQ(roles.type_of(3), NodeType::kColluder);
  EXPECT_EQ(roles.type_of(50), NodeType::kNormal);
}

TEST(RolesTest, Fig8RolesHaveNoPretrusted) {
  // Fig. 8: colluder ids 1-8 (0-based 0-7), no pretrusted nodes.
  const NodeRoles roles = fig8_roles();
  EXPECT_TRUE(roles.pretrusted.empty());
  EXPECT_EQ(roles.colluders,
            (std::vector<rating::NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(roles.collusion_edges.size(), 4u);
  EXPECT_EQ(roles.collusion_edges[0].first, 0u);
}

TEST(RolesTest, CompromisedRolesAddPretrustedEdges) {
  // Fig. 7/11: n1-n4 and n2-n6 (1-based) collude on top of the pairs.
  const NodeRoles roles = compromised_roles();
  ASSERT_EQ(roles.collusion_edges.size(), 6u);
  EXPECT_EQ(roles.collusion_edges[4],
            (std::pair<rating::NodeId, rating::NodeId>{0, 3}));
  EXPECT_EQ(roles.collusion_edges[5],
            (std::pair<rating::NodeId, rating::NodeId>{1, 5}));
  // Pretrusted membership unchanged.
  EXPECT_EQ(roles.pretrusted.size(), 3u);
  EXPECT_EQ(roles.colluders.size(), 8u);
}

TEST(RolesTest, ColluderSetMatchesVector) {
  const NodeRoles roles = paper_roles(6, 2);
  const auto set = roles.colluder_set();
  EXPECT_EQ(set.size(), 6u);
  for (rating::NodeId c : roles.colluders) EXPECT_TRUE(set.contains(c));
}

TEST(RolesTest, VariableColluderCounts) {
  for (std::size_t count : {8u, 18u, 28u, 38u, 48u, 58u}) {
    const NodeRoles roles = paper_roles(count, 3);
    EXPECT_EQ(roles.colluders.size(), count);
    EXPECT_EQ(roles.collusion_edges.size(), count / 2);
    // Edges partition the colluders.
    std::set<rating::NodeId> seen;
    for (const auto& [a, b] : roles.collusion_edges) {
      EXPECT_TRUE(seen.insert(a).second);
      EXPECT_TRUE(seen.insert(b).second);
    }
    EXPECT_EQ(seen.size(), count);
  }
}

}  // namespace
}  // namespace p2prep::net
