// Network-churn tests: normal nodes leave/rejoin between simulation
// cycles; special nodes stay; detection remains intact under churn.
#include <gtest/gtest.h>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"

namespace p2prep::net {
namespace {

SimConfig churn_config(double leave, double rejoin) {
  SimConfig c;
  c.num_nodes = 60;
  c.num_interests = 8;
  c.sim_cycles = 6;
  c.query_cycles_per_sim_cycle = 10;
  c.churn_leave_prob = leave;
  c.churn_rejoin_prob = rejoin;
  c.seed = 77;
  return c;
}

core::DetectorConfig detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

TEST(NetChurnTest, NoChurnKeepsEveryoneOnline) {
  reputation::WeightedFeedbackEngine engine;
  Simulator sim(churn_config(0.0, 0.0), paper_roles(4, 2), engine);
  sim.run();
  EXPECT_EQ(sim.online_count(), 60u);
}

TEST(NetChurnTest, LeaveProbabilityDrainsNormalNodes) {
  reputation::WeightedFeedbackEngine engine;
  const NodeRoles roles = paper_roles(4, 2);
  Simulator sim(churn_config(1.0, 0.0), roles, engine);
  sim.run_sim_cycle();
  // All normal nodes went offline at the first boundary; the 6 specials
  // (2 pretrusted + 4 colluders) remain.
  EXPECT_EQ(sim.online_count(), 6u);
  for (rating::NodeId p : roles.pretrusted) EXPECT_TRUE(sim.online(p));
  for (rating::NodeId c : roles.colluders) EXPECT_TRUE(sim.online(c));
}

TEST(NetChurnTest, RejoinBringsNodesBack) {
  reputation::WeightedFeedbackEngine engine;
  SimConfig config = churn_config(1.0, 0.0);
  Simulator sim(config, paper_roles(4, 2), engine);
  sim.run_sim_cycle();
  ASSERT_EQ(sim.online_count(), 6u);
  // No direct setter: rebuild with rejoin probability 1 and verify the
  // population oscillates rather than staying drained.
  reputation::WeightedFeedbackEngine engine2;
  SimConfig config2 = churn_config(1.0, 1.0);
  Simulator sim2(config2, paper_roles(4, 2), engine2);
  sim2.run_sim_cycle();  // all normals leave
  sim2.run_sim_cycle();  // all rejoin (then leave again at next boundary)
  // After the second boundary every offline node rejoined before the
  // leave coin flips again — with leave=1 they immediately depart, so the
  // online count is back to 6; what we can assert robustly is that the
  // simulation stays consistent and serves traffic.
  EXPECT_GT(sim2.metrics().total_requests, 0u);
}

TEST(NetChurnTest, OfflineNodesNeitherQueryNorServe) {
  reputation::WeightedFeedbackEngine engine;
  const NodeRoles roles = paper_roles(4, 2);
  SimConfig config = churn_config(1.0, 0.0);
  config.sim_cycles = 3;
  Simulator sim(config, roles, engine);
  const auto before = sim.metrics().total_requests;
  sim.run();
  // Only the 6 special nodes interact after cycle 1; ratings for normal
  // nodes stop growing. Specifically: requests served by normal nodes in
  // later cycles must be zero — every later request lands on specials.
  (void)before;
  std::uint64_t normal_served_total = 0;
  for (rating::NodeId id = 6; id < config.num_nodes; ++id)
    normal_served_total += sim.metrics().requests_served[id];
  // Normal nodes only served during cycle 1's query cycles... which there
  // are none of (churn applies at the cycle START). So zero.
  EXPECT_EQ(normal_served_total, 0u);
  EXPECT_GT(sim.metrics().total_requests, 0u);  // specials still trade
}

TEST(NetChurnTest, DetectionSurvivesModerateChurn) {
  reputation::WeightedFeedbackEngine engine;
  const NodeRoles roles = paper_roles(6, 2);
  SimConfig config = churn_config(0.2, 0.5);
  config.sim_cycles = 8;
  core::OptimizedCollusionDetector detector(detector_config());
  Simulator sim(config, roles, engine, &detector);
  sim.run();
  for (rating::NodeId id : roles.colluders)
    EXPECT_TRUE(sim.manager().detected().contains(id)) << id;
  for (rating::NodeId id : sim.manager().detected())
    EXPECT_EQ(roles.type_of(id), NodeType::kColluder);
}

TEST(NetChurnTest, DeterministicUnderChurn) {
  auto run = [] {
    reputation::WeightedFeedbackEngine engine;
    Simulator sim(churn_config(0.3, 0.4), paper_roles(4, 2), engine);
    sim.run();
    return sim.metrics().total_requests;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace p2prep::net
