// Deliberately-misannotated negative example: this file MUST NOT compile
// under Clang with -Wthread-safety -Werror=thread-safety. It is the
// canary proving the analysis gate is actually armed — if the
// StaticAnalysis.ThreadSafetyNegative ctest check (tests/CMakeLists.txt,
// WILL_FAIL) ever sees this build succeed, the -Wthread-safety wiring is
// broken, not this file.
//
// The target is registered only under Clang and EXCLUDE_FROM_ALL, so
// regular builds never touch it.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Racy {
 public:
  // BUG (by design): touches guarded_ without acquiring mu_.
  void unguarded_write(int v) { guarded_ = v; }

  // BUG (by design): claims to require the lock but the caller below
  // invokes it bare.
  void requires_lock(int v) P2PREP_REQUIRES(mu_) { guarded_ = v; }

  void caller_without_lock() { requires_lock(1); }

 private:
  p2prep::util::Mutex mu_;
  int guarded_ P2PREP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Racy racy;
  racy.unguarded_write(42);
  racy.caller_without_lock();
  return 0;
}
