// Deliberately lock-order-inverted negative example: this file MUST NOT
// compile under Clang with -Wthread-safety -Wthread-safety-beta
// -Werror=thread-safety -Werror=thread-safety-beta. It is the canary
// proving the ACQUIRED_BEFORE/ACQUIRED_AFTER lock-hierarchy checking is
// actually armed — if the StaticAnalysis.LockOrderNegative ctest check
// (tests/CMakeLists.txt, WILL_FAIL) ever sees this build succeed, the
// -Wthread-safety-beta wiring is broken, not this file.
//
// The hierarchy mirrors the service's real one (service/service.h): an
// outer mutex declared ACQUIRED_BEFORE an inner one, then a function that
// takes them inner-first — the inversion that would deadlock against a
// correctly-ordered thread at runtime.
//
// The target is registered only under Clang and EXCLUDE_FROM_ALL, so
// regular builds never touch it.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Hierarchy {
 public:
  // Correct order, as every real call site writes it.
  void ordered() {
    p2prep::util::MutexLock outer(outer_mu_);
    p2prep::util::MutexLock inner(inner_mu_);
    ++guarded_;
  }

  // BUG (by design): acquires inner_mu_ first, violating the declared
  // ACQUIRED_AFTER(outer_mu_) ordering.
  void inverted() {
    p2prep::util::MutexLock inner(inner_mu_);
    p2prep::util::MutexLock outer(outer_mu_);
    ++guarded_;
  }

 private:
  p2prep::util::Mutex outer_mu_;
  p2prep::util::Mutex inner_mu_ P2PREP_ACQUIRED_AFTER(outer_mu_);
  int guarded_ P2PREP_GUARDED_BY(inner_mu_) = 0;
};

}  // namespace

int main() {
  Hierarchy h;
  h.ordered();
  h.inverted();
  return 0;
}
