// Deliberately lock-order-inverted negative example for the parallel-epoch
// scan protocol: this file MUST NOT compile under Clang with
// -Wthread-safety -Wthread-safety-beta -Werror=thread-safety
// -Werror=thread-safety-beta. It is the canary proving the hierarchy
// checking stays armed for the mutexes the parallel global epoch added —
// if the StaticAnalysis.ScanOrderNegative ctest check (tests/CMakeLists.txt,
// WILL_FAIL) ever sees this build succeed, the wiring is broken, not this
// file.
//
// The hierarchy mirrors the service's real one (service/service.h): the
// epoch mutex publishes scan tasks and overlap state; the per-slot apply
// mutex is a leaf that workers take to decide between applying a rating
// and buffering it into the pending list. The coordinator flips the
// deferred flag while holding only the apply mutex — taking the epoch
// mutex on top of it (as inverted() does) is the inversion that would
// deadlock a worker against a coordinator publishing scan tasks.
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class ScanHierarchy {
 public:
  // Correct order: scan state under the epoch mutex, the apply leaf taken
  // on its own afterwards — as run_scan_tasks / the worker rating path
  // write it.
  void ordered() {
    {
      p2prep::util::MutexLock epoch(epoch_mu_);
      ++scan_next_;
    }
    p2prep::util::MutexLock apply(apply_mu_);
    pending_.push_back(scan_done_);
  }

  // BUG (by design): consults scan progress under epoch_mu_ while still
  // holding the apply leaf, violating the declared
  // ACQUIRED_AFTER(epoch_mu_) ordering.
  void inverted() {
    p2prep::util::MutexLock apply(apply_mu_);
    p2prep::util::MutexLock epoch(epoch_mu_);
    pending_.push_back(scan_next_);
  }

 private:
  p2prep::util::Mutex epoch_mu_;
  p2prep::util::Mutex apply_mu_ P2PREP_ACQUIRED_AFTER(epoch_mu_);
  std::size_t scan_next_ P2PREP_GUARDED_BY(epoch_mu_) = 0;
  std::size_t scan_done_ = 0;
  std::vector<std::size_t> pending_ P2PREP_GUARDED_BY(apply_mu_);
};

}  // namespace

int main() {
  ScanHierarchy h;
  h.ordered();
  h.inverted();
  return 0;
}
