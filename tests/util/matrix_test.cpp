#include "util/matrix.h"

#include <gtest/gtest.h>

#include <numeric>

namespace p2prep::util {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, ConstructionInitializes) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 7);
}

TEST(MatrixTest, ElementAccessReadsBack) {
  Matrix<double> m(2, 2);
  m(0, 1) = 3.5;
  m(1, 0) = -1.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowSpanIsContiguousView) {
  Matrix<int> m(2, 3);
  std::iota(m.flat().begin(), m.flat().end(), 0);
  auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[0], 3);
  EXPECT_EQ(row1[2], 5);
  row1[0] = 99;
  EXPECT_EQ(m(1, 0), 99);
}

TEST(MatrixTest, FillOverwrites) {
  Matrix<int> m(2, 2, 1);
  m.fill(9);
  for (int v : m.flat()) EXPECT_EQ(v, 9);
}

TEST(MatrixTest, ResizeGrowPreservesUpperLeft) {
  Matrix<int> m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  m.resize(3, 4);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 1), 4);
  EXPECT_EQ(m(2, 3), 0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(MatrixTest, ResizeShrinkKeepsOverlap) {
  Matrix<int> m(3, 3);
  std::iota(m.flat().begin(), m.flat().end(), 0);
  m.resize(2, 2);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(0, 1), 1);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 1), 4);
}

TEST(MatrixTest, ResizeSameIsNoop) {
  Matrix<int> m(2, 2, 5);
  m.resize(2, 2);
  EXPECT_EQ(m(1, 1), 5);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 0) = 2;
  EXPECT_FALSE(a == b);
  Matrix<int> c(2, 3, 1);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace p2prep::util
