#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace p2prep::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(3.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 42.0);
}

TEST(QuantileTest, LinearInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(MeanOfTest, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
}

TEST(SummaryTest, FiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(SummaryTest, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace p2prep::util
