#include "util/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace p2prep::util {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueueTest, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(2.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(q.processed(), 2u);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule(5.0, [&] {
    q.schedule(1.0, [&] { fired_at = q.now(); });  // "in the past"
  });
  q.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, PastClampKeepsFifoOrderWithPresentEvents) {
  // Two events clamped to now() must still fire in scheduling order,
  // interleaved correctly with an event genuinely scheduled at now().
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] {
    q.schedule(0.5, [&] { order.push_back(1); });  // clamped to 2.0
    q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(1.0, [&] { order.push_back(3); });  // clamped to 2.0
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleInNegativeDelayClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule(4.0, [&] {
    q.schedule_in(-3.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_EQ(fired_at, 4.0);
}

TEST(EventQueueTest, RunUntilBoundaryIsInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, RunUntilAdvancesClockEvenWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.run_until(7.5), 0u);
  EXPECT_EQ(q.now(), 7.5);
  // A later run_until with an earlier bound must not move time backwards.
  EXPECT_EQ(q.run_until(3.0), 0u);
  EXPECT_EQ(q.now(), 7.5);
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 5.0);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, CascadedSimulationIsDeterministic) {
  auto run = [] {
    EventQueue q;
    std::vector<double> log;
    for (int i = 0; i < 10; ++i) {
      q.schedule(static_cast<double>(i % 3), [&q, &log] {
        log.push_back(q.now());
        if (log.size() < 30) q.schedule_in(1.5, [&q, &log] {
          log.push_back(q.now());
        });
      });
    }
    q.run();
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace p2prep::util
