#include "util/distributions.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace p2prep::util {
namespace {

TEST(PoissonTest, ZeroMeanIsZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(poisson(rng, 0.0), 0u);
  EXPECT_EQ(poisson(rng, -1.0), 0u);
}

class PoissonMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMomentsTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 7);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i)
    stats.add(static_cast<double>(poisson(rng, mean)));
  // Poisson: mean == variance.
  EXPECT_NEAR(stats.mean(), mean, mean * 0.05 + 0.05);
  EXPECT_NEAR(stats.variance(), mean, mean * 0.10 + 0.10);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMomentsTest,
                         ::testing::Values(0.1, 1.0, 5.0, 12.0, 50.0, 200.0));

TEST(ZipfTest, SingleOrEmptyDomain) {
  Rng rng(3);
  EXPECT_EQ(zipf(rng, 0), 0u);
  EXPECT_EQ(zipf(rng, 1), 0u);
}

TEST(ZipfTest, StaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf(rng, 100, 1.0), 100u);
}

TEST(ZipfTest, LowRanksDominate) {
  Rng rng(7);
  constexpr std::size_t kN = 1000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng, kN, 1.0)];
  // Rank 0 must beat rank 10 which must beat rank 100 (heavy skew).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, SmallSkewIsFlatter) {
  Rng rng(11);
  constexpr std::size_t kN = 100;
  std::vector<int> flat(kN, 0);
  std::vector<int> steep(kN, 0);
  Rng rng2(13);
  for (int i = 0; i < 100000; ++i) {
    ++flat[zipf(rng, kN, 0.2)];
    ++steep[zipf(rng2, kN, 1.5)];
  }
  const double flat_top = static_cast<double>(flat[0]) / 100000.0;
  const double steep_top = static_cast<double>(steep[0]) / 100000.0;
  EXPECT_LT(flat_top, steep_top);
}

}  // namespace
}  // namespace p2prep::util
