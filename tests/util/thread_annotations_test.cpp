// Tests for util/thread_annotations.h + util/mutex.h: the macros must be
// exact no-ops on non-Clang compilers (so annotated code is portable),
// and the annotated wrappers must behave like the std types they wrap.
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace p2prep::util {
namespace {

#ifndef __clang__
// On non-Clang compilers every annotation must expand to nothing — proven
// by feeding the macros arguments that could not possibly compile if they
// were evaluated: undeclared identifiers and nonsense expressions. If a
// macro leaked any token into the translation unit this file would fail
// to build, which is exactly the regression this guards against.
class NoOpProbe {
 public:
  void requires_nothing() P2PREP_REQUIRES(no_such_symbol_anywhere) {}
  void acquires_nothing() P2PREP_ACQUIRE(totally, undeclared, names) {}
  void releases_nothing() P2PREP_RELEASE(1 + not_a_variable) {}
  void excludes_nothing() P2PREP_EXCLUDES(no_such_symbol_anywhere) {}
  void no_analysis() P2PREP_NO_THREAD_SAFETY_ANALYSIS {}

  int guarded_by_ghost P2PREP_GUARDED_BY(ghost_mutex_never_declared) = 0;
  int* pt_guarded P2PREP_PT_GUARDED_BY(another_ghost) = nullptr;
};

class P2PREP_CAPABILITY("not-actually-a-capability") NotACapability {};
class P2PREP_SCOPED_CAPABILITY NotScoped {};

TEST(ThreadAnnotationsTest, MacrosAreNoOpsOffClang) {
  NoOpProbe probe;
  probe.requires_nothing();
  probe.acquires_nothing();
  probe.releases_nothing();
  probe.excludes_nothing();
  probe.no_analysis();
  probe.guarded_by_ghost = 7;
  EXPECT_EQ(probe.guarded_by_ghost, 7);
  NotACapability unused1;
  NotScoped unused2;
  (void)unused1;
  (void)unused2;
}
#endif  // !__clang__

// The wrapper types must behave like the std primitives regardless of
// compiler. A correctly-annotated miniature component exercises the full
// Mutex / MutexLock / CondVar surface under real contention.
class Counter {
 public:
  void add(int delta) {
    {
      MutexLock lock(mu_);
      value_ += delta;
    }
    changed_.notify_all();
  }

  /// Blocks until the value reaches at least `target`.
  int wait_for_at_least(int target) {
    MutexLock lock(mu_);
    while (value_ < target) changed_.wait(mu_);
    return value_;
  }

  int value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  CondVar changed_;
  int value_ P2PREP_GUARDED_BY(mu_) = 0;
};

TEST(AnnotatedMutexTest, ExcludesConcurrentCriticalSections) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(AnnotatedMutexTest, CondVarWakesWaiter) {
  Counter counter;
  std::atomic<int> observed{0};
  std::thread waiter(
      [&] { observed.store(counter.wait_for_at_least(3)); });
  counter.add(1);
  counter.add(1);
  counter.add(1);
  waiter.join();
  EXPECT_GE(observed.load(), 3);
}

TEST(AnnotatedMutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&mu] {
    // Held by the main thread: try_lock from another thread must fail
    // (std::mutex::try_lock from the owner would be UB).
    EXPECT_FALSE(mu.try_lock());
  });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(AnnotatedMutexTest, MutexLockEarlyUnlockReleasesOnce) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();  // destructor must not unlock again
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
  }
  // Scope exit after early unlock: mutex must still be free.
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace p2prep::util
