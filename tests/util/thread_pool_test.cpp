#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace p2prep::util {
namespace {

TEST(ThreadPoolTest, DefaultUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(5, 5, [&counter](std::size_t) { ++counter; });
  pool.parallel_for(7, 3, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForChunkedCoversRange) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<int> data(kN, 0);
  pool.parallel_for_chunked(0, kN, [&data](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0),
            static_cast<int>(kN));
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for(3, 8, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(hits[i].load(), (i >= 3 && i < 8) ? 1 : 0);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for_chunked(0, kN, [&sum](std::size_t lo, std::size_t hi) {
    std::int64_t local = 0;
    for (std::size_t i = lo; i < hi; ++i)
      local += static_cast<std::int64_t>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&hits](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SerialForTest, MatchesParallelSemantics) {
  std::vector<int> hits(50, 0);
  serial_for(10, 40, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(hits[i], (i >= 10 && i < 40) ? 1 : 0);
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesThroughWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [](std::size_t i) {
                                   if (i == 500) throw std::logic_error("mid");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error slot is cleared: a clean batch completes normally.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 100, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
  pool.wait_idle();  // no stale exception left behind
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsReported) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] {
      ++ran;
      throw std::runtime_error("each task throws");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
  pool.wait_idle();  // later exceptions were dropped, not queued
}

TEST(ThreadPoolTest, ConcurrentSubmissionFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(8);
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 500; ++i) pool.submit([&counter] { ++counter; });
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 8 * 500);
}

TEST(ThreadPoolTest, DestructionWithPendingTasksCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace p2prep::util
