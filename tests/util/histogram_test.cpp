#include "util/histogram.h"

#include <gtest/gtest.h>

namespace p2prep::util {
namespace {

TEST(HistogramTest, BinBoundaries) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 1.0);
}

TEST(HistogramTest, BinOfMapsCorrectly) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(0.24), 0u);
  EXPECT_EQ(h.bin_of(0.25), 1u);
  EXPECT_EQ(h.bin_of(0.5), 2u);
  EXPECT_EQ(h.bin_of(0.99), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_of(-5.0), 0u);
  EXPECT_EQ(h.bin_of(1.0), 3u);
  EXPECT_EQ(h.bin_of(100.0), 3u);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, AddAndCount) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 5);
  h.add(0.9, 3);
  EXPECT_EQ(h.count(0), 5u);
  EXPECT_EQ(h.count(1), 3u);
  EXPECT_EQ(h.total(), 8u);
}

TEST(HistogramTest, FractionSums) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_EQ(h.fraction(0), 0.0);  // empty histogram
  h.add(0.1);
  h.add(0.2);
  h.add(0.7);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 1.0 / 3.0);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('1'), std::string::npos);
}

TEST(HistogramTest, RenderEmptyDoesNotCrash) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_FALSE(h.render().empty());
}

}  // namespace
}  // namespace p2prep::util
