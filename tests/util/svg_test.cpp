#include "util/svg.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

namespace p2prep::util {
namespace {

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t hits = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++hits;
  }
  return hits;
}

TEST(SvgChartTest, BarChartContainsAllBars) {
  SvgChart chart("Reputation", "node", "value");
  chart.set_categories({"1", "2", "3"});
  chart.add_bar_series("run", {0.1, 0.5, 0.3});
  const std::string svg = chart.render();
  EXPECT_EQ(count(svg, "<rect"), 1u + 3u);  // background + 3 bars
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Reputation"), std::string::npos);
}

TEST(SvgChartTest, GroupedBarsRenderPerSeries) {
  SvgChart chart("t", "x", "y");
  chart.set_categories({"a", "b"});
  chart.add_bar_series("s1", {1.0, 2.0});
  chart.add_bar_series("s2", {2.0, 1.0});
  const std::string svg = chart.render();
  // background + 4 bars + 2 legend swatches
  EXPECT_EQ(count(svg, "<rect"), 1u + 4u + 2u);
  EXPECT_NE(svg.find("s1"), std::string::npos);
  EXPECT_NE(svg.find("s2"), std::string::npos);
}

TEST(SvgChartTest, LineChartHasPolylineAndMarkers) {
  SvgChart chart("sweep", "colluders", "%");
  chart.add_line_series("EigenTrust", {8, 18, 28}, {39, 86, 94});
  chart.add_line_series("Optimized", {8, 18, 28}, {0.2, 0.8, 1.0});
  const std::string svg = chart.render();
  EXPECT_EQ(count(svg, "<polyline"), 2u);
  EXPECT_EQ(count(svg, "<circle"), 6u);
}

TEST(SvgChartTest, TitleIsEscaped) {
  SvgChart chart("a < b & c", "x", "y");
  chart.add_line_series("s", {0, 1}, {0, 1});
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b &"), std::string::npos);
}

TEST(SvgChartTest, LogScaleHandlesWideRange) {
  SvgChart chart("cost", "n", "work");
  chart.set_log_y(true);
  chart.add_line_series("s", {1, 2, 3}, {100.0, 1e6, 1e8});
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("1e"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgChartTest, EmptyChartStillValid) {
  SvgChart chart("empty", "x", "y");
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgChartTest, ZeroValuesDoNotBreakScale) {
  SvgChart chart("zeros", "x", "y");
  chart.set_categories({"a", "b"});
  chart.add_bar_series("s", {0.0, 0.0});
  const std::string svg = chart.render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgChartTest, WriteFileRoundTrips) {
  SvgChart chart("file", "x", "y");
  chart.set_categories({"a"});
  chart.add_bar_series("s", {1.0});
  const std::string path = ::testing::TempDir() + "/chart_test.svg";
  ASSERT_TRUE(chart.write_file(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, chart.render());
}

TEST(SvgChartTest, ManyCategoriesThinLabels) {
  SvgChart chart("big", "node", "rep");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(std::to_string(i));
    values.push_back(static_cast<double>(i % 7));
  }
  chart.set_categories(labels);
  chart.add_bar_series("s", values);
  const std::string svg = chart.render();
  // Far fewer category labels than bars (decluttered axis).
  EXPECT_LT(count(svg, "font-size=\"9\""), 40u);
  EXPECT_GE(count(svg, "<rect"), 200u);
}

}  // namespace
}  // namespace p2prep::util
