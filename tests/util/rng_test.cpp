#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace p2prep::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64Test, IsConstexprAndStable) {
  constexpr std::uint64_t v = mix64(12345);
  EXPECT_EQ(v, mix64(12345));
  EXPECT_NE(v, mix64(12346));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(3.5, 7.25);
    EXPECT_GE(x, 3.5);
    EXPECT_LT(x, 7.25);
  }
}

TEST(RngTest, NextBelowZeroAndOneAreZero) {
  Rng rng(19);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowStaysBelowBound) {
  Rng rng(23);
  for (std::uint64_t bound : {2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(31);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all of -3..3 appear
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(43);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng root(47);
  Rng forked = root.fork(1);
  // The fork must not replay the parent's stream.
  Rng root2(47);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (forked.next() == root2.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForksWithDifferentIdsDiffer) {
  Rng a(53);
  Rng b(53);
  Rng fa = a.fork(1);
  Rng fb = b.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (fa.next() == fb.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

class RngBitBalanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBitBalanceTest, EveryBitIsRoughlyBalanced) {
  Rng rng(GetParam());
  constexpr int kN = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t v = rng.next();
    for (int b = 0; b < 64; ++b)
      if ((v >> b) & 1) ++ones[static_cast<std::size_t>(b)];
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[static_cast<std::size_t>(b)]) / kN,
                0.5, 0.02)
        << "bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBitBalanceTest,
                         ::testing::Values(1ull, 99ull, 0xdeadbeefull,
                                           ~0ull));

}  // namespace
}  // namespace p2prep::util
