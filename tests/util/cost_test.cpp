#include "util/cost.h"

#include <gtest/gtest.h>

namespace p2prep::util {
namespace {

TEST(CostCounterTest, StartsAtZero) {
  CostCounter c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(c.element_scans, 0u);
  EXPECT_EQ(c.checks, 0u);
  EXPECT_EQ(c.arithmetic, 0u);
  EXPECT_EQ(c.messages, 0u);
}

TEST(CostCounterTest, AddersAccumulate) {
  CostCounter c;
  c.add_scan();
  c.add_scan(4);
  c.add_check(2);
  c.add_arith(10);
  c.add_message(3);
  EXPECT_EQ(c.element_scans, 5u);
  EXPECT_EQ(c.checks, 2u);
  EXPECT_EQ(c.arithmetic, 10u);
  EXPECT_EQ(c.messages, 3u);
  EXPECT_EQ(c.total(), 20u);
}

TEST(CostCounterTest, PlusEqualsMergesFields) {
  CostCounter a;
  a.add_scan(1);
  a.add_check(2);
  CostCounter b;
  b.add_arith(3);
  b.add_message(4);
  a += b;
  EXPECT_EQ(a.element_scans, 1u);
  EXPECT_EQ(a.checks, 2u);
  EXPECT_EQ(a.arithmetic, 3u);
  EXPECT_EQ(a.messages, 4u);
}

TEST(CostCounterTest, BinaryPlusDoesNotMutate) {
  CostCounter a;
  a.add_scan(5);
  CostCounter b;
  b.add_scan(7);
  const CostCounter c = a + b;
  EXPECT_EQ(c.element_scans, 12u);
  EXPECT_EQ(a.element_scans, 5u);
  EXPECT_EQ(b.element_scans, 7u);
}

TEST(CostCounterTest, EqualityIsFieldWise) {
  CostCounter a;
  CostCounter b;
  EXPECT_EQ(a, b);
  a.add_check();
  EXPECT_NE(a, b);
  b.add_check();
  EXPECT_EQ(a, b);
}

TEST(CostCounterTest, ToStringMentionsAllFields) {
  CostCounter c;
  c.add_scan(1);
  c.add_check(2);
  c.add_arith(3);
  c.add_message(4);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("scans=1"), std::string::npos);
  EXPECT_NE(s.find("checks=2"), std::string::npos);
  EXPECT_NE(s.find("arith=3"), std::string::npos);
  EXPECT_NE(s.find("msgs=4"), std::string::npos);
  EXPECT_NE(s.find("total=10"), std::string::npos);
}

TEST(CostCounterTest, ConstexprUsable) {
  constexpr CostCounter c = [] {
    CostCounter x;
    x.add_scan(2);
    x.add_check(3);
    return x;
  }();
  static_assert(c.total() == 5);
  EXPECT_EQ(c.total(), 5u);
}

}  // namespace
}  // namespace p2prep::util
