#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace p2prep::util {
namespace {

TEST(TableTest, RenderContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
  EXPECT_NO_THROW(t.to_csv());
}

TEST(TableTest, LongRowsAreTruncated) {
  Table t({"a"});
  t.add_row({"x", "extra", "more"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.find("extra"), std::string::npos);
}

TEST(TableTest, NumFormatsDoubles) {
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  EXPECT_EQ(Table::num(0.12345, 3), "0.123");
  EXPECT_EQ(Table::num(-2.0, 1), "-2.0");
}

TEST(TableTest, NumFormatsIntegers) {
  EXPECT_EQ(Table::num(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(Table::num(std::int64_t{-5}), "-5");
  EXPECT_EQ(Table::num(42), "42");
  EXPECT_EQ(Table::num(std::size_t{7}), "7");
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t({"field"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  t.add_row({"plain"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TableTest, CsvHasHeaderRow) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.rfind("x,y\n", 0), 0u);
}

TEST(TableTest, StreamOperatorMatchesRender) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t({"h", "i"});
  t.add_row({"wide-cell-content", "x"});
  const std::string s = t.render();
  // The header line must be padded at least as wide as the widest cell.
  const std::string header_line = s.substr(0, s.find('\n'));
  EXPECT_GE(header_line.size(), std::string("wide-cell-content").size());
}

}  // namespace
}  // namespace p2prep::util
