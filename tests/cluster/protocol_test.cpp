// Codec tests for the manager-to-manager wire surface
// (cluster/protocol.h): every body round-trips canonically through its
// encode/decode pair, and every hostile-count guard rejects before the
// allocation it would otherwise size. The same guards are pinned by the
// checked-in fuzz corpus (fuzz/corpus/rpc/*mgr*); these tests give them
// named, debuggable assertions.
#include "cluster/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "rating/types.h"
#include "rpc/protocol.h"

namespace p2prep::cluster {
namespace {

using rating::Rating;
using rating::Score;

/// Encode → decode → re-encode must reproduce the bytes and consume all
/// of them (canonical codec, no trailing slack).
template <typename Body>
Body roundtrip(const Body& in) {
  std::string bytes;
  in.encode(bytes);
  rpc::Reader r(bytes);
  const auto out = Body::decode(r);
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(r.done());
  std::string bytes2;
  out->encode(bytes2);
  EXPECT_EQ(bytes, bytes2);
  return *out;
}

TEST(ClusterProtocol, InsertRoundTrip) {
  MgrInsertRequest req;
  req.source = 7;
  req.seq = 1234567;
  req.forwarded = 1;
  req.rating = Rating{3, 9, Score::kNegative, 77};
  const MgrInsertRequest out = roundtrip(req);
  EXPECT_EQ(out.source, 7u);
  EXPECT_EQ(out.seq, 1234567u);
  EXPECT_EQ(out.forwarded, 1);
  EXPECT_EQ(out.rating.rater, 3u);
  EXPECT_EQ(out.rating.ratee, 9u);

  MgrInsertResponse resp;
  resp.duplicate = 1;
  EXPECT_EQ(roundtrip(resp).duplicate, 1);
}

TEST(ClusterProtocol, InsertRejectsBadFlags) {
  MgrInsertRequest req;
  req.rating = Rating{1, 2, Score::kPositive, 1};
  std::string bytes;
  req.encode(bytes);
  bytes[16] = 2;  // forwarded byte after source+seq
  {
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrInsertRequest::decode(r).has_value());
  }
  {  // truncated
    rpc::Reader r(std::string_view(bytes).substr(0, bytes.size() - 1));
    EXPECT_FALSE(MgrInsertRequest::decode(r).has_value());
  }
  std::string resp_bytes;
  rpc::put_u8(resp_bytes, 2);  // duplicate > 1
  rpc::Reader r(resp_bytes);
  EXPECT_FALSE(MgrInsertResponse::decode(r).has_value());
}

TEST(ClusterProtocol, ReplicateRoundTrip) {
  MgrReplicateRequest req;
  req.range = 5;
  req.source = 2;
  req.seq = 99;
  req.rating = Rating{4, 6, Score::kNeutral, 12};
  const MgrReplicateRequest out = roundtrip(req);
  EXPECT_EQ(out.range, 5u);
  EXPECT_EQ(out.seq, 99u);
}

TEST(ClusterProtocol, StatePullRoundTrip) {
  MgrStatePullRequest req;
  req.range = 3;
  EXPECT_EQ(roundtrip(req).range, 3u);

  MgrStatePullResponse resp;
  resp.range = 3;
  resp.blob = std::string("\x00\x01binary\xff", 9);
  resp.seqs = {{1, 10}, {5, 2}, {9, 1}};
  const MgrStatePullResponse out = roundtrip(resp);
  EXPECT_EQ(out.blob, resp.blob);
  EXPECT_EQ(out.seqs, resp.seqs);
}

TEST(ClusterProtocol, StatePullRejectsHostileLengths) {
  {  // blob_len far beyond the bytes present (and beyond the cap)
    std::string bytes;
    rpc::put_u32(bytes, 0);
    rpc::put_u32(bytes, 0xffffffffu);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrStatePullResponse::decode(r).has_value());
  }
  {  // blob_len over kMaxStateBlobBytes even if bytes were present
    std::string bytes;
    rpc::put_u32(bytes, 0);
    rpc::put_u32(bytes, kMaxStateBlobBytes + 1);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrStatePullResponse::decode(r).has_value());
  }
  {  // seq count beyond kMaxSeqEntries with nothing behind it
    std::string bytes;
    rpc::put_u32(bytes, 0);
    rpc::put_u32(bytes, 0);
    rpc::put_u32(bytes, kMaxSeqEntries + 1);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrStatePullResponse::decode(r).has_value());
  }
}

TEST(ClusterProtocol, ColluderSetRoundTrip) {
  MgrColluderSetRequest req;
  req.epoch_seq = 42;
  req.flagged = {1, 5, 7, 1000};
  const MgrColluderSetRequest out = roundtrip(req);
  EXPECT_EQ(out.epoch_seq, 42u);
  EXPECT_EQ(out.flagged, req.flagged);

  MgrColluderSetResponse resp;
  resp.epochs_completed = 42;
  EXPECT_EQ(roundtrip(resp).epochs_completed, 42u);
}

TEST(ClusterProtocol, ColluderSetRejectsHostileCount) {
  std::string bytes;
  rpc::put_u64(bytes, 1);
  rpc::put_u32(bytes, 0xffffffffu);  // count with no ids behind it
  rpc::Reader r(bytes);
  EXPECT_FALSE(MgrColluderSetRequest::decode(r).has_value());
}

TEST(ClusterProtocol, RingInfoRoundTrip) {
  MgrRingInfoResponse resp;
  resp.replication = 2;
  resp.num_nodes = 5000;
  resp.members = {{"127.0.0.1", 7500, 1},
                  {"10.0.0.2", 7501, 0},
                  {"", 7502, 1}};  // empty host is legal on the wire
  const MgrRingInfoResponse out = roundtrip(resp);
  ASSERT_EQ(out.members.size(), 3u);
  EXPECT_EQ(out.members[0].host, "127.0.0.1");
  EXPECT_EQ(out.members[1].alive, 0);
  EXPECT_EQ(out.members[2].port, 7502);
}

TEST(ClusterProtocol, RingInfoRejectsHostileMembers) {
  const auto prefix = [] {
    std::string bytes;
    rpc::put_u32(bytes, 2);     // replication
    rpc::put_u64(bytes, 1000);  // num_nodes
    return bytes;
  };
  {  // member count beyond kMaxManagers
    std::string bytes = prefix();
    rpc::put_u32(bytes, kMaxManagers + 1);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrRingInfoResponse::decode(r).has_value());
  }
  {  // host_len beyond kMaxHostBytes
    std::string bytes = prefix();
    rpc::put_u32(bytes, 1);
    rpc::put_u16(bytes, 0xffff);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrRingInfoResponse::decode(r).has_value());
  }
  {  // alive flag outside {0,1}
    std::string bytes = prefix();
    rpc::put_u32(bytes, 1);
    rpc::put_u16(bytes, 4);
    bytes += "host";
    rpc::put_u16(bytes, 7500);
    rpc::put_u8(bytes, 2);
    rpc::Reader r(bytes);
    EXPECT_FALSE(MgrRingInfoResponse::decode(r).has_value());
  }
}

TEST(ClusterProtocol, RejoinRoundTrip) {
  MgrRejoinRequest req;
  req.index = 9;
  EXPECT_EQ(roundtrip(req).index, 9u);
}

TEST(ClusterProtocol, ResyncHintRoundTrip) {
  MgrResyncHintRequest req;
  req.range = 4;
  EXPECT_EQ(roundtrip(req).range, 4u);

  rpc::Reader r(std::string_view("\x01", 1));  // truncated u32
  EXPECT_FALSE(MgrResyncHintRequest::decode(r).has_value());
}

}  // namespace
}  // namespace p2prep::cluster
