// In-process cluster integration: three ManagerNodes on loopback with
// M = 2 replication, driven through ClusterClient and raw RPC. Covers the
// routing matrix (owner-direct, non-holder forwarding, forwarded-loop
// rejection), per-source dedup, synchronous replication with replica
// failover, the rejoin/resync path, ring discovery, the cluster-wide
// colluder-set commit, and the per-manager gauges over the GetMetrics
// wire. The multi-process variants (real kill -9) live in
// failover_test.cpp; byte-identity vs the single-process service lives in
// tests/differential/cluster_differential_test.cpp.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.h"
#include "cluster/manager_node.h"
#include "cluster/protocol.h"
#include "rpc/client.h"
#include "service/wal.h"

namespace p2prep::cluster {
namespace {

using rating::Rating;
using rating::Score;

/// Reserves a free loopback port by binding an ephemeral socket and
/// closing it. The tiny race (another process grabbing the port before
/// the manager binds it) is acceptable in tests.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr std::size_t kNumNodes = 60;
constexpr std::size_t kRingSize = 3;
constexpr std::uint32_t kReplication = 2;

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::size_t i = 0; i < kRingSize; ++i)
      ring_.push_back({"127.0.0.1", reserve_port()});
    for (std::size_t i = 0; i < kRingSize; ++i) {
      nodes_.push_back(std::make_unique<ManagerNode>(node_config(i)));
      nodes_.back()->start();
    }
  }

  void TearDown() override {
    for (auto& n : nodes_)
      if (n) n->stop();
  }

  [[nodiscard]] ManagerNodeConfig node_config(std::size_t index) const {
    ManagerNodeConfig cfg;
    cfg.index = index;
    cfg.ring = ring_;
    cfg.replication = kReplication;
    cfg.service.num_nodes = kNumNodes;
    cfg.request_timeout_ms = 2000;
    return cfg;
  }

  [[nodiscard]] ClusterClientConfig client_config(
      std::uint64_t source) const {
    ClusterClientConfig cfg;
    cfg.ring = ring_;
    cfg.replication = kReplication;
    cfg.num_nodes = kNumNodes;
    cfg.source = source;
    cfg.connect_timeout_ms = 1000;
    cfg.request_timeout_ms = 2000;
    return cfg;
  }

  /// A raw single-connection RPC client to manager `idx`.
  [[nodiscard]] rpc::RpcClient raw_client(std::size_t idx) const {
    rpc::RpcClientConfig cc;
    cc.host = ring_[idx].host;
    cc.port = ring_[idx].port;
    cc.max_frame_bytes = kClusterMaxFrameBytes;
    return rpc::RpcClient(cc);
  }

  /// A ratee owned by range `range` under the cluster's map.
  [[nodiscard]] rating::NodeId ratee_in_range(std::size_t range) const {
    ClusterClient probe(client_config(999));
    for (rating::NodeId id = 0; id < kNumNodes; ++id)
      if (probe.owner(id) == range) return id;
    ADD_FAILURE() << "no node owned by range " << range;
    return 0;
  }

  /// A rater distinct from `ratee` (identity is irrelevant to routing).
  [[nodiscard]] static rating::NodeId other_than(rating::NodeId ratee) {
    return ratee == 0 ? 1 : static_cast<rating::NodeId>(ratee - 1);
  }

  std::vector<ManagerEndpoint> ring_;
  std::vector<std::unique_ptr<ManagerNode>> nodes_;
};

TEST_F(ClusterTest, DiscoverBootstrapsFromAnyEntryNode) {
  for (std::size_t entry = 0; entry < kRingSize; ++entry) {
    const auto cfg = ClusterClient::discover(ring_[entry], 1000, 2000);
    ASSERT_TRUE(cfg.has_value()) << "entry " << entry;
    EXPECT_EQ(cfg->replication, kReplication);
    EXPECT_EQ(cfg->num_nodes, kNumNodes);
    ASSERT_EQ(cfg->ring.size(), kRingSize);
    for (std::size_t i = 0; i < kRingSize; ++i)
      EXPECT_EQ(cfg->ring[i].port, ring_[i].port);
  }
}

TEST_F(ClusterTest, HeldRangesFollowSuccessorRule) {
  // K=3, M=2: node i holds ranges i and (i+K-1)%K.
  for (std::size_t i = 0; i < kRingSize; ++i) {
    const auto held = nodes_[i]->held_ranges();
    ASSERT_EQ(held.size(), kReplication) << "node " << i;
    const std::size_t pred = (i + kRingSize - 1) % kRingSize;
    EXPECT_TRUE(held[0] == i || held[1] == i);
    EXPECT_TRUE(held[0] == pred || held[1] == pred);
  }
  // Owned keys partition the id space.
  std::uint64_t total = 0;
  for (auto& n : nodes_) total += n->metrics_snapshot().cluster_owned_keys;
  EXPECT_EQ(total, kNumNodes);
}

TEST_F(ClusterTest, InsertDedupsPerSourceSequence) {
  const rating::NodeId ratee = ratee_in_range(0);
  const Rating r{other_than(ratee), ratee, Score::kPositive, 1};
  MgrInsertRequest req;
  req.source = 42;
  req.seq = 7;
  req.rating = r;
  std::string body;
  req.encode(body);

  rpc::RpcClient c = raw_client(0);
  ASSERT_TRUE(c.connect());
  for (const std::uint8_t expect_dup : {0, 1}) {  // retry of the same seq
    std::string resp_body;
    const rpc::CallResult res =
        c.call_raw(rpc::MsgType::kMgrInsert, body, &resp_body);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.status, rpc::Status::kOk);
    rpc::Reader reader(resp_body);
    const auto resp = MgrInsertResponse::decode(reader);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->duplicate, expect_dup);
  }
  // The rating was applied once: both holders of range 0 report exactly
  // one applied rating.
  for (const std::size_t holder : {std::size_t{0}, std::size_t{1}}) {
    EXPECT_EQ(nodes_[holder]->metrics_snapshot().ratings_applied, 1u)
        << "holder " << holder;
  }
}

TEST_F(ClusterTest, NonHolderForwardsAndForwardedLoopIsRejected) {
  // Range 0 is held by nodes 0 and 1; node 2 is a pure forwarder for it.
  const rating::NodeId ratee = ratee_in_range(0);
  MgrInsertRequest req;
  req.source = 43;
  req.seq = 1;
  req.rating = Rating{other_than(ratee), ratee, Score::kPositive, 2};
  std::string body;
  req.encode(body);

  rpc::RpcClient c = raw_client(2);
  ASSERT_TRUE(c.connect());
  std::string resp_body;
  rpc::CallResult res = c.call_raw(rpc::MsgType::kMgrInsert, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kOk);
  EXPECT_EQ(nodes_[2]->metrics_snapshot().cluster_forwards, 1u);
  EXPECT_EQ(nodes_[0]->metrics_snapshot().ratings_applied, 1u);

  // A frame already marked forwarded that lands on a non-holder is a
  // routing bug; the node answers kInternal instead of relaying again.
  req.seq = 2;
  req.forwarded = 1;
  body.clear();
  req.encode(body);
  res = c.call_raw(rpc::MsgType::kMgrInsert, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kInternal);
}

TEST_F(ClusterTest, ReplicaServesInsertsAndQueriesAfterPrimaryStops) {
  ClusterClient client(client_config(1));
  const rating::NodeId ratee = ratee_in_range(1);
  const Rating before{other_than(ratee), ratee, Score::kPositive, 1};
  ASSERT_TRUE(client.insert(before));

  // Kill range 1's primary (node 1); node 2 is the surviving holder.
  nodes_[1]->stop();
  nodes_[1].reset();

  const Rating after{other_than(ratee), ratee, Score::kPositive, 2};
  ASSERT_TRUE(client.insert(after));
  EXPECT_EQ(client.failovers(), 1u);

  rpc::QueryReputationResponse q;
  ASSERT_TRUE(client.query(ratee, &q));
  EXPECT_EQ(q.shard, 1u);
  // Both acknowledged ratings live on the survivor.
  EXPECT_EQ(nodes_[2]->metrics_snapshot().ratings_applied, 2u);
  EXPECT_GE(nodes_[2]->metrics_snapshot().cluster_failovers, 1u);
}

TEST_F(ClusterTest, RestartedManagerResyncsFromPeers) {
  ClusterClient client(client_config(2));
  const rating::NodeId ratee = ratee_in_range(1);
  ASSERT_TRUE(client.insert({other_than(ratee), ratee, Score::kPositive, 1}));

  nodes_[1]->stop();
  nodes_[1].reset();
  // Ingest continues against the survivor while node 1 is down.
  ASSERT_TRUE(client.insert({other_than(ratee), ratee, Score::kNegative, 2}));
  ASSERT_TRUE(client.insert({other_than(ratee), ratee, Score::kPositive, 3}));

  // Restart (volatile: all state must come from the peer resync).
  nodes_[1] = std::make_unique<ManagerNode>(node_config(1));
  nodes_[1]->start();

  // The restarted node serves range 1 with the full history: its state
  // blob matches the survivor's byte for byte.
  rpc::RpcClient fresh = raw_client(1);
  ASSERT_TRUE(fresh.connect());
  MgrStatePullRequest pull;
  pull.range = 1;
  std::string body;
  pull.encode(body);
  std::string from_restarted;
  rpc::CallResult res =
      fresh.call_raw(rpc::MsgType::kMgrStatePull, body, &from_restarted);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, rpc::Status::kOk);

  rpc::RpcClient survivor = raw_client(2);
  ASSERT_TRUE(survivor.connect());
  std::string from_survivor;
  res = survivor.call_raw(rpc::MsgType::kMgrStatePull, body, &from_survivor);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, rpc::Status::kOk);

  rpc::Reader r1(from_restarted);
  rpc::Reader r2(from_survivor);
  const auto s1 = MgrStatePullResponse::decode(r1);
  const auto s2 = MgrStatePullResponse::decode(r2);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->blob, s2->blob);
  EXPECT_EQ(s1->seqs, s2->seqs);
  ASSERT_TRUE(service::parse_checkpoint(s1->blob).has_value());
}

TEST_F(ClusterTest, StatePullFromNonHolderIsRejected) {
  // Node 0 does not hold range 1 (held by 1 and 2).
  rpc::RpcClient c = raw_client(0);
  ASSERT_TRUE(c.connect());
  MgrStatePullRequest pull;
  pull.range = 1;
  std::string body;
  pull.encode(body);
  std::string resp_body;
  const rpc::CallResult res =
      c.call_raw(rpc::MsgType::kMgrStatePull, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);
}

TEST_F(ClusterTest, ColluderSetCommitsEpochClusterWideAndIsIdempotent) {
  ClusterClient client(client_config(3));
  const rating::NodeId ratee = ratee_in_range(0);
  for (rating::Tick t = 1; t <= 4; ++t)
    ASSERT_TRUE(client.insert({other_than(ratee), ratee,
                               Score::kPositive, t}));

  ASSERT_TRUE(client.push_colluders(1, {}));
  ASSERT_TRUE(client.push_colluders(2, {ratee}));
  ASSERT_TRUE(client.push_colluders(2, {ratee}));  // replayed commit: no-op

  for (std::size_t i = 0; i < kRingSize; ++i)
    EXPECT_EQ(nodes_[i]->metrics_snapshot().epochs_completed, 2u)
        << "node " << i;

  rpc::QueryReputationResponse q;
  ASSERT_TRUE(client.query(ratee, &q));
  EXPECT_EQ(q.epoch, 2u);
  EXPECT_EQ(q.suspected, 1u);
}

TEST_F(ClusterTest, ReplicateAndStatePullRejectHostileRange) {
  rpc::RpcClient c = raw_client(0);
  ASSERT_TRUE(c.connect());
  // Ranges >= the ring size never name a store; before validation the
  // modular holds() arithmetic could alias them to a held offset (e.g.
  // range 7 in a ring of 3) and dereference a null store.
  for (const std::uint32_t hostile : {std::uint32_t{kRingSize},
                                      std::uint32_t{7}, 0xffffffffu}) {
    MgrReplicateRequest rep;
    rep.range = hostile;
    rep.source = 50;
    rep.seq = 1;
    rep.rating = Rating{0, 1, Score::kPositive, 1};
    std::string body;
    rep.encode(body);
    std::string resp_body;
    rpc::CallResult res =
        c.call_raw(rpc::MsgType::kMgrReplicate, body, &resp_body);
    ASSERT_TRUE(res.ok) << "range " << hostile;
    EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);

    MgrStatePullRequest pull;
    pull.range = hostile;
    body.clear();
    pull.encode(body);
    res = c.call_raw(rpc::MsgType::kMgrStatePull, body, &resp_body);
    ASSERT_TRUE(res.ok) << "range " << hostile;
    EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);

    MgrResyncHintRequest hint;
    hint.range = hostile;
    body.clear();
    hint.encode(body);
    res = c.call_raw(rpc::MsgType::kMgrResyncHint, body, &resp_body);
    ASSERT_TRUE(res.ok) << "range " << hostile;
    EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);
  }
  // Nothing was applied anywhere.
  for (std::size_t i = 0; i < kRingSize; ++i)
    EXPECT_EQ(nodes_[i]->metrics_snapshot().ratings_applied, 0u);
}

TEST_F(ClusterTest, ColluderSetRejectsHostileFlaggedId) {
  rpc::RpcClient c = raw_client(0);
  ASSERT_TRUE(c.connect());
  MgrColluderSetRequest req;
  req.epoch_seq = 1;
  req.flagged = {static_cast<rating::NodeId>(kNumNodes)};  // out of range
  std::string body;
  req.encode(body);
  std::string resp_body;
  const rpc::CallResult res =
      c.call_raw(rpc::MsgType::kMgrColluderSet, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);
  EXPECT_EQ(nodes_[0]->metrics_snapshot().epochs_completed, 0u);
}

TEST_F(ClusterTest, ColluderSetRejectsEpochJumpBeyondWindow) {
  rpc::RpcClient c = raw_client(0);
  ASSERT_TRUE(c.connect());
  MgrColluderSetRequest req;
  req.epoch_seq = ~std::uint64_t{0};  // hostile: would wedge every later epoch
  std::string body;
  req.encode(body);
  std::string resp_body;
  const rpc::CallResult res =
      c.call_raw(rpc::MsgType::kMgrColluderSet, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);
  EXPECT_EQ(nodes_[0]->metrics_snapshot().epochs_completed, 0u);

  // The cluster is not wedged: the next legitimate epoch still commits.
  ClusterClient client(client_config(5));
  ASSERT_TRUE(client.push_colluders(1, {}));
  for (std::size_t i = 0; i < kRingSize; ++i)
    EXPECT_EQ(nodes_[i]->metrics_snapshot().epochs_completed, 1u);
}

TEST_F(ClusterTest, ResyncHintCatchesUpStaleHolder) {
  // Plant a copy on node 0 only: handle_replicate never re-replicates,
  // so node 1 (the other holder of range 0) is now one rating behind —
  // the state a slow replica is in after missing a copy.
  const rating::NodeId ratee = ratee_in_range(0);
  MgrReplicateRequest rep;
  rep.range = 0;
  rep.source = 51;
  rep.seq = 1;
  rep.rating = Rating{other_than(ratee), ratee, Score::kPositive, 1};
  std::string body;
  rep.encode(body);
  rpc::RpcClient c0 = raw_client(0);
  ASSERT_TRUE(c0.connect());
  std::string resp_body;
  rpc::CallResult res = c0.call_raw(rpc::MsgType::kMgrReplicate, body, &resp_body);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, rpc::Status::kOk);
  EXPECT_EQ(nodes_[0]->metrics_snapshot().ratings_applied, 1u);
  EXPECT_EQ(nodes_[1]->metrics_snapshot().ratings_applied, 0u);

  // The hint makes node 1 pull range 0 from node 0 and adopt its copy.
  rpc::RpcClient c1 = raw_client(1);
  ASSERT_TRUE(c1.connect());
  MgrResyncHintRequest hint;
  hint.range = 0;
  body.clear();
  hint.encode(body);
  res = c1.call_raw(rpc::MsgType::kMgrResyncHint, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kOk);
  EXPECT_EQ(nodes_[1]->metrics_snapshot().ratings_applied, 1u);

  // Both holders now serve byte-identical state.
  MgrStatePullRequest pull;
  pull.range = 0;
  body.clear();
  pull.encode(body);
  std::string from0, from1;
  ASSERT_EQ(c0.call_raw(rpc::MsgType::kMgrStatePull, body, &from0).status,
            rpc::Status::kOk);
  ASSERT_EQ(c1.call_raw(rpc::MsgType::kMgrStatePull, body, &from1).status,
            rpc::Status::kOk);
  EXPECT_EQ(from0, from1);

  // A hint for a range the receiver does not hold is hostile.
  hint.range = 1;  // node 0 does not hold range 1
  body.clear();
  hint.encode(body);
  res = c0.call_raw(rpc::MsgType::kMgrResyncHint, body, &resp_body);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, rpc::Status::kInvalidArgument);
}

TEST_F(ClusterTest, ReplicationDebtIsRepaidWhenPeerReturns) {
  // Kill range 1's primary, then ack an insert through the surviving
  // holder: the copy to the dead peer fails and is recorded as debt.
  nodes_[1]->stop();
  nodes_[1].reset();
  const rating::NodeId ratee = ratee_in_range(1);
  ClusterClient client(client_config(6));
  ASSERT_TRUE(client.insert({other_than(ratee), ratee, Score::kPositive, 1}));
  EXPECT_EQ(nodes_[2]->metrics_snapshot().cluster_replica_lag, 1u);

  // The peer comes back (resyncs on start, as a restart would).
  nodes_[1] = std::make_unique<ManagerNode>(node_config(1));
  nodes_[1]->start();

  // The next insert through the survivor replicates successfully, which
  // triggers the resync hint toward the recovered peer and repays the
  // recorded debt — without any further restart.
  MgrInsertRequest ins;
  ins.source = 52;
  ins.seq = 1;
  ins.rating = Rating{other_than(ratee), ratee, Score::kNegative, 2};
  std::string body;
  ins.encode(body);
  rpc::RpcClient c2 = raw_client(2);
  ASSERT_TRUE(c2.connect());
  std::string resp_body;
  const rpc::CallResult res =
      c2.call_raw(rpc::MsgType::kMgrInsert, body, &resp_body);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, rpc::Status::kOk);
  EXPECT_EQ(nodes_[2]->metrics_snapshot().cluster_replica_lag, 0u);

  // Both holders of range 1 serve the same bytes again.
  MgrStatePullRequest pull;
  pull.range = 1;
  body.clear();
  pull.encode(body);
  rpc::RpcClient c1 = raw_client(1);
  ASSERT_TRUE(c1.connect());
  std::string from1, from2;
  ASSERT_EQ(c1.call_raw(rpc::MsgType::kMgrStatePull, body, &from1).status,
            rpc::Status::kOk);
  ASSERT_EQ(c2.call_raw(rpc::MsgType::kMgrStatePull, body, &from2).status,
            rpc::Status::kOk);
  EXPECT_EQ(from1, from2);
}

TEST_F(ClusterTest, RejoinAloneRepaysReplicationDebt) {
  // Same debt setup as above: range 1's primary dies, a failover insert
  // through the survivor records one owed copy.
  nodes_[1]->stop();
  nodes_[1].reset();
  const rating::NodeId ratee = ratee_in_range(1);
  ClusterClient client(client_config(7));
  ASSERT_TRUE(client.insert({other_than(ratee), ratee, Score::kPositive, 1}));
  ASSERT_EQ(nodes_[2]->metrics_snapshot().cluster_replica_lag, 1u);

  // The peer restarts and broadcasts its rejoin — and nothing else: no
  // insert ever touches the shared range again. The survivor must repay
  // the debt off the rejoin alone (it repairs after answering the
  // broadcast), or an idle cluster would report phantom lag forever.
  nodes_[1] = std::make_unique<ManagerNode>(node_config(1));
  nodes_[1]->start();
  std::uint64_t lag = 1;
  for (int tries = 0; tries < 100; ++tries) {
    lag = nodes_[2]->metrics_snapshot().cluster_replica_lag;
    if (lag == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(lag, 0u);

  // Both holders of range 1 serve the same bytes.
  MgrStatePullRequest pull;
  pull.range = 1;
  std::string body;
  pull.encode(body);
  rpc::RpcClient c1 = raw_client(1);
  rpc::RpcClient c2 = raw_client(2);
  ASSERT_TRUE(c1.connect());
  ASSERT_TRUE(c2.connect());
  std::string from1, from2;
  ASSERT_EQ(c1.call_raw(rpc::MsgType::kMgrStatePull, body, &from1).status,
            rpc::Status::kOk);
  ASSERT_EQ(c2.call_raw(rpc::MsgType::kMgrStatePull, body, &from2).status,
            rpc::Status::kOk);
  EXPECT_EQ(from1, from2);
}

TEST_F(ClusterTest, GaugesTravelTheGetMetricsWire) {
  ClusterClient client(client_config(4));
  // Generate one forward: raw insert at a non-holder of range 0.
  const rating::NodeId ratee = ratee_in_range(0);
  MgrInsertRequest req;
  req.source = 44;
  req.seq = 1;
  req.rating = Rating{other_than(ratee), ratee, Score::kPositive, 1};
  std::string body;
  req.encode(body);
  rpc::RpcClient c = raw_client(2);
  ASSERT_TRUE(c.connect());
  std::string resp_body;
  ASSERT_TRUE(c.call_raw(rpc::MsgType::kMgrInsert, body, &resp_body).ok);

  std::uint64_t owned_total = 0;
  for (std::size_t i = 0; i < kRingSize; ++i) {
    service::ServiceMetrics wire;
    ASSERT_TRUE(client.get_metrics(i, &wire));
    const service::ServiceMetrics local = nodes_[i]->metrics_snapshot();
    // The wire snapshot and the in-process snapshot agree on the stable
    // gauges (counters that cannot move between the two reads here).
    EXPECT_EQ(wire.cluster_owned_keys, local.cluster_owned_keys);
    EXPECT_EQ(wire.cluster_forwards, local.cluster_forwards);
    EXPECT_EQ(wire.cluster_failovers, local.cluster_failovers);
    EXPECT_EQ(wire.cluster_replica_lag, local.cluster_replica_lag);
    EXPECT_EQ(wire.current_shard_count, kRingSize);
    owned_total += wire.cluster_owned_keys;
  }
  EXPECT_EQ(owned_total, kNumNodes);
  service::ServiceMetrics m2;
  ASSERT_TRUE(client.get_metrics(2, &m2));
  EXPECT_EQ(m2.cluster_forwards, 1u);
}

}  // namespace
}  // namespace p2prep::cluster
