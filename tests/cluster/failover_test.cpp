// Multi-process failover: real `p2prep_cli manager` processes on
// loopback, a real SIGKILL mid-ingest. Pins the acceptance claims of the
// cluster subsystem:
//   * a 3-manager M=2 cluster keeps acknowledging inserts after the
//     primary of a range is killed -9 (client-side failover), with zero
//     acknowledged-rating loss — every acked rating is applied exactly
//     once somewhere in the cluster;
//   * the killed manager restarts from its data-dir, resyncs from the
//     surviving holders, and its range state matches the survivor's byte
//     for byte (modulo WAL-position fields, which legitimately differ
//     after a recovery);
//   * the whole killed-and-recovered cluster's state matches a
//     never-killed control cluster fed the same trace.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.h"
#include "cluster/protocol.h"
#include "service/wal.h"
#include "tests/differential/trace_gen.h"

namespace p2prep::cluster {
namespace {

namespace fs = std::filesystem;

std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

bool port_open(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const bool ok =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

bool wait_for_port(std::uint16_t port, int timeout_ms = 15000) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    if (port_open(port)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

std::string ring_spec(const std::vector<ManagerEndpoint>& ring) {
  std::string spec;
  for (const auto& ep : ring) {
    if (!spec.empty()) spec += ',';
    spec += ep.host + ':' + std::to_string(ep.port);
  }
  return spec;
}

/// One `p2prep_cli manager` child process.
class ManagerProcess {
 public:
  ManagerProcess() = default;
  ~ManagerProcess() { kill_now(); }

  void spawn(std::size_t index, const std::vector<ManagerEndpoint>& ring,
             std::size_t num_nodes, const fs::path& data_dir) {
    const std::vector<std::string> args = {
        "p2prep_cli",    "manager",
        "--index",       std::to_string(index),
        "--ring",        ring_spec(ring),
        "--replication", "2",
        "--nodes",       std::to_string(num_nodes),
        "--data-dir",    data_dir.string()};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::execv(P2PREP_CLI_PATH, argv.data());
      ::_exit(127);  // exec failed
    }
    ASSERT_TRUE(wait_for_port(ring[index].port))
        << "manager " << index << " never opened port " << ring[index].port;
  }

  /// SIGKILL — the crash under test, and the teardown hammer.
  void kill_now() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  [[nodiscard]] bool running() const noexcept { return pid_ > 0; }

 private:
  pid_t pid_ = -1;
};

/// Canonical state bytes with the WAL-position fields zeroed: a recovered
/// node's wal_generation legitimately differs from a never-restarted one,
/// but everything else must match byte for byte.
std::string normalized(const std::string& blob) {
  auto ckpt = service::parse_checkpoint(blob);
  EXPECT_TRUE(ckpt.has_value()) << "state blob is not a valid checkpoint";
  if (!ckpt) return {};
  ckpt->wal_generation = 0;
  ckpt->wal_records_applied = 0;
  return service::encode_checkpoint(*ckpt);
}

constexpr std::size_t kRingSize = 3;

class ClusterFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("p2prep_cluster_failover_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  struct Cluster {
    std::vector<ManagerEndpoint> ring;
    std::vector<ManagerProcess> procs{kRingSize};
    fs::path dir;
  };

  void start_cluster(Cluster& c, const std::string& name,
                     std::size_t num_nodes) {
    c.dir = root_ / name;
    for (std::size_t i = 0; i < kRingSize; ++i)
      c.ring.push_back({"127.0.0.1", reserve_port()});
    for (std::size_t i = 0; i < kRingSize; ++i)
      c.procs[i].spawn(i, c.ring, num_nodes,
                       c.dir / ("mgr" + std::to_string(i)));
  }

  static ClusterClientConfig client_config(const Cluster& c,
                                           std::size_t num_nodes,
                                           std::uint64_t source) {
    ClusterClientConfig cfg;
    cfg.ring = c.ring;
    cfg.replication = 2;
    cfg.num_nodes = num_nodes;
    cfg.source = source;
    cfg.connect_timeout_ms = 1000;
    cfg.request_timeout_ms = 5000;
    return cfg;
  }

  fs::path root_;
};

TEST_F(ClusterFailoverTest, Kill9MidIngestLosesNoAcknowledgedRating) {
  const testgen::Trace t = testgen::make_trace(7);
  Cluster live;
  start_cluster(live, "live", t.n);
  Cluster control;
  start_cluster(control, "control", t.n);

  ClusterClient live_client(client_config(live, t.n, 1));
  ClusterClient control_client(client_config(control, t.n, 1));

  // Ingest the first half, then SIGKILL manager 1 — the primary of range
  // 1 and a replica of range 0 — and keep ingesting. Every insert after
  // the kill must still be acknowledged (range-1 inserts by the surviving
  // holder, range-0 inserts by a primary running with a dead replica).
  std::uint64_t acked = 0;
  const std::size_t half = t.ratings.size() / 2;
  for (std::size_t i = 0; i < t.ratings.size(); ++i) {
    if (i == half) live.procs[1].kill_now();
    ASSERT_TRUE(live_client.insert(t.ratings[i])) << "rating " << i;
    ++acked;
    ASSERT_TRUE(control_client.insert(t.ratings[i])) << "rating " << i;
  }
  ASSERT_EQ(acked, t.ratings.size());
  EXPECT_GT(live_client.failovers(), 0u);

  // Zero acknowledged loss: summing applied_total over the three ranges
  // (one authoritative copy each) accounts for every acked rating exactly
  // once.
  std::uint64_t applied = 0;
  std::vector<std::string> live_blobs(kRingSize);
  for (std::size_t range = 0; range < kRingSize; ++range) {
    const auto state = live_client.pull_state(range);
    ASSERT_TRUE(state.has_value()) << "range " << range;
    const auto ckpt = service::parse_checkpoint(state->blob);
    ASSERT_TRUE(ckpt.has_value()) << "range " << range;
    applied += ckpt->applied_total;
    live_blobs[range] = state->blob;
  }
  EXPECT_EQ(applied, acked);

  // The killed-and-failed-over cluster holds the same state as the
  // never-killed control cluster, range by range.
  for (std::size_t range = 0; range < kRingSize; ++range) {
    const auto state = control_client.pull_state(range);
    ASSERT_TRUE(state.has_value()) << "range " << range;
    EXPECT_EQ(normalized(live_blobs[range]), normalized(state->blob))
        << "range " << range << " diverged from the control cluster";
  }

  // Restart the killed manager over its surviving data-dir: it recovers
  // from disk, resyncs the writes it missed from the live holders, and
  // serves range 1 with state byte-identical to the survivor's.
  live.procs[1].spawn(1, live.ring, t.n, live.dir / "mgr1");
  ClusterClient fresh(client_config(live, t.n, 2));
  rpc::RpcClientConfig cc;
  cc.host = live.ring[1].host;
  cc.port = live.ring[1].port;
  cc.max_frame_bytes = kClusterMaxFrameBytes;
  rpc::RpcClient direct(cc);
  ASSERT_TRUE(direct.connect());
  MgrStatePullRequest pull;
  pull.range = 1;
  std::string body;
  pull.encode(body);
  std::string resp_body;
  const rpc::CallResult res =
      direct.call_raw(rpc::MsgType::kMgrStatePull, body, &resp_body);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.status, rpc::Status::kOk);
  rpc::Reader reader(resp_body);
  const auto restarted = MgrStatePullResponse::decode(reader);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_EQ(normalized(restarted->blob), normalized(live_blobs[1]))
      << "restarted manager diverged from the copy that served the outage";

  // And the revived cluster keeps taking writes on the primary again.
  const rating::NodeId some = 0;
  const rating::NodeId other = 1;
  ASSERT_TRUE(fresh.insert({some, other, rating::Score::kPositive,
                            static_cast<rating::Tick>(1u << 20)}));
}

}  // namespace
}  // namespace p2prep::cluster
