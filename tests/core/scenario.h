// Test-only helper: builds RatingMatrix scenarios declaratively.
#pragma once

#include <cstddef>
#include <vector>

#include "rating/matrix.h"
#include "rating/store.h"
#include "rating/types.h"

namespace p2prep::core::testing {

class Scenario {
 public:
  explicit Scenario(std::size_t n) : store_(n), reps_(n, 0.0) {}

  /// `rater` rates `ratee` `count` times with the given score.
  Scenario& rate(rating::NodeId rater, rating::NodeId ratee,
                 std::size_t count, rating::Score score) {
    for (std::size_t k = 0; k < count; ++k) {
      store_.ingest({.rater = rater, .ratee = ratee, .score = score,
                     .time = static_cast<rating::Tick>(k)});
    }
    return *this;
  }

  /// Mutual positive bombardment — the collusion signature.
  Scenario& collude(rating::NodeId a, rating::NodeId b, std::size_t count) {
    rate(a, b, count, rating::Score::kPositive);
    rate(b, a, count, rating::Score::kPositive);
    return *this;
  }

  /// `raters` in [lo, hi) each rate `ratee` once; a fraction `positive` of
  /// them positively, the rest negatively (deterministic split).
  Scenario& crowd(rating::NodeId lo, rating::NodeId hi, rating::NodeId ratee,
                  double positive_fraction) {
    std::size_t index = 0;
    const auto span = static_cast<std::size_t>(hi - lo);
    const auto positives =
        static_cast<std::size_t>(positive_fraction * static_cast<double>(span));
    for (rating::NodeId r = lo; r < hi; ++r, ++index) {
      if (r == ratee) continue;
      rate(r, ratee, 1,
           index < positives ? rating::Score::kPositive
                             : rating::Score::kNegative);
    }
    return *this;
  }

  Scenario& set_rep(rating::NodeId id, double rep) {
    reps_.at(id) = rep;
    return *this;
  }

  Scenario& set_all_reps(double rep) {
    for (auto& r : reps_) r = rep;
    return *this;
  }

  [[nodiscard]] rating::RatingMatrix build(double high_rep_threshold = 0.05)
      const {
    return rating::RatingMatrix::build(store_, reps_, high_rep_threshold);
  }

  [[nodiscard]] const rating::RatingStore& store() const { return store_; }

 private:
  rating::RatingStore store_;
  std::vector<double> reps_;
};

}  // namespace p2prep::core::testing
