#include "core/formula.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace p2prep::core {
namespace {

TEST(Formula1Test, AllPositiveFromEveryone) {
  // a = b = 1: R = N (every rating +1).
  EXPECT_DOUBLE_EQ(formula1_reputation(1.0, 1.0, 100, 30), 100.0);
}

TEST(Formula1Test, AllNegativeFromEveryone) {
  EXPECT_DOUBLE_EQ(formula1_reputation(0.0, 0.0, 100, 30), -100.0);
}

TEST(Formula1Test, PartnerOnlyRatings) {
  // N_i == N_(i,j): complement empty, R = (2a-1) N.
  EXPECT_DOUBLE_EQ(formula1_reputation(1.0, 0.0, 50, 50), 50.0);
  EXPECT_DOUBLE_EQ(formula1_reputation(0.5, 0.9, 50, 50), 0.0);
}

TEST(Formula1Test, MatchesDirectCount) {
  // 40 ratings from j (36 positive), 60 from others (6 positive):
  // R = (36 - 4) + (6 - 54) = -16.
  const double r = formula1_reputation(0.9, 0.1, 100, 40);
  EXPECT_DOUBLE_EQ(r, -16.0);
}

TEST(Formula2BoundsTest, KnownValues) {
  const Formula2Bounds b = formula2_bounds(0.8, 0.2, 100, 40);
  EXPECT_DOUBLE_EQ(b.lower, 2.0 * 0.8 * 40 - 100);   // -36
  EXPECT_DOUBLE_EQ(b.upper, 2.0 * 0.2 * 60 + 80 - 100);  // 4
}

TEST(Formula2BoundsTest, UpperAtLeastLowerInColluderRegion) {
  // Whenever T_a <= 1 and T_b >= 0 the interval is nonempty iff
  // T_a * N_ij <= T_b * (N_i - N_ij) + N_ij, which holds for T_a <= 1.
  for (std::uint64_t n_i : {10ull, 100ull, 1000ull}) {
    for (std::uint64_t n_ij = 1; n_ij <= n_i; n_ij += 7) {
      const Formula2Bounds b = formula2_bounds(0.8, 0.2, n_i, n_ij);
      EXPECT_LE(b.lower, b.upper);
    }
  }
}

TEST(Formula2SatisfiedTest, ColluderSignatureIsInside) {
  // a = 0.98, b = 0.02 (the paper's crawled averages): inside.
  const double r = formula1_reputation(0.98, 0.02, 500, 200);
  EXPECT_TRUE(formula2_satisfied(r, 0.8, 0.2, 500, 200));
}

TEST(Formula2SatisfiedTest, HonestNodeIsOutside) {
  // b = 0.8: everyone likes this node, reputation too high for the bound.
  const double r = formula1_reputation(0.9, 0.8, 500, 40);
  EXPECT_FALSE(formula2_satisfied(r, 0.8, 0.2, 500, 40));
}

TEST(Formula2SatisfiedTest, UnpopularPartnerIsBelowLower) {
  // Partner rates mostly negative (a = 0.1): below the lower bound.
  const double r = formula1_reputation(0.1, 0.1, 500, 200);
  EXPECT_FALSE(formula2_satisfied(r, 0.8, 0.2, 500, 200));
}

TEST(Formula2SatisfiedTest, InclusiveAdmitsBoundary) {
  // Pure partner-only all-positive: a = 1, N_i = N_ij; R = N_i sits exactly
  // on the upper bound. Strict rejects, inclusive accepts.
  const double r = formula1_reputation(1.0, 0.0, 50, 50);
  EXPECT_TRUE(formula2_satisfied(r, 0.8, 0.2, 50, 50, /*inclusive=*/true));
  EXPECT_FALSE(formula2_satisfied(r, 0.8, 0.2, 50, 50, /*inclusive=*/false));
}

TEST(Formula2SatisfiedTest, PropertyFormula1InsideBoundsForColluderRegion) {
  // For every (a, b) with a >= T_a, b < T_b, Formula (1)'s reputation lies
  // within the inclusive Formula (2) interval (the containment that makes
  // Optimized a safe replacement for Basic).
  util::Rng rng(7);
  constexpr double kTa = 0.8;
  constexpr double kTb = 0.2;
  for (int trial = 0; trial < 5000; ++trial) {
    const double a = rng.uniform(kTa, 1.0);
    const double b = rng.uniform(0.0, kTb);
    const auto n_i = static_cast<std::uint64_t>(rng.uniform_int(1, 2000));
    const auto n_ij = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_i)));
    const double r = formula1_reputation(a, b, n_i, n_ij);
    EXPECT_TRUE(formula2_satisfied(r, kTa, kTb, n_i, n_ij))
        << "a=" << a << " b=" << b << " n_i=" << n_i << " n_ij=" << n_ij;
  }
}

TEST(Formula2SatisfiedTest, PropertyFarOutsideRegionRejected) {
  // b far above T_b pushes the reputation above the upper bound whenever a
  // meaningful share of ratings comes from others.
  util::Rng rng(11);
  for (int trial = 0; trial < 5000; ++trial) {
    const double a = rng.uniform(0.8, 1.0);
    const double b = rng.uniform(0.6, 1.0);
    const auto n_i = static_cast<std::uint64_t>(rng.uniform_int(100, 2000));
    const auto n_ij = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_i / 2)));
    const double r = formula1_reputation(a, b, n_i, n_ij);
    EXPECT_FALSE(formula2_satisfied(r, 0.8, 0.2, n_i, n_ij))
        << "a=" << a << " b=" << b << " n_i=" << n_i << " n_ij=" << n_ij;
  }
}

TEST(Formula2SatisfiedTest, ZeroRatings) {
  // Degenerate: no ratings at all. Bounds are [−0, 0]; R = 0 is inside
  // (inclusive) — callers gate on N_(i,j) >= T_N before asking.
  EXPECT_TRUE(formula2_satisfied(0.0, 0.8, 0.2, 0, 0, true));
  EXPECT_FALSE(formula2_satisfied(0.0, 0.8, 0.2, 0, 0, false));
}

}  // namespace
}  // namespace p2prep::core
