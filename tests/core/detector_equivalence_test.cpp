// Cross-method properties: on +/-1 rating workloads the Optimized method
// never misses a pair the Basic method flags (Formula (2) describes a
// superset region), and on collusion-structured workloads the two methods
// flag identical pairs while Optimized does asymptotically less work —
// the paper's "much lower computation cost without compromising the
// collusion detection performance".
#include <gtest/gtest.h>

#include <algorithm>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "tests/core/scenario.h"
#include "util/rng.h"

namespace p2prep::core {
namespace {

using testing::Scenario;

DetectorConfig config() {
  DetectorConfig c;
  c.positive_fraction_min = 0.8;
  // 0.21 rather than a round 0.2: small complement samples often produce
  // the exact fraction 1/5, and b == T_b is the one boundary where the two
  // methods legitimately differ (strict < in Basic, inclusive Formula (2)
  // upper bound in Optimized). An unrealizable threshold keeps the
  // equality property exact without weakening it.
  c.complement_fraction_max = 0.21;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  // Compare the raw pairwise predicates.
  c.flag_accomplices = false;
  return c;
}

std::vector<std::uint64_t> keys(const DetectionReport& r) {
  std::vector<std::uint64_t> out;
  for (const auto& e : r.pairs) out.push_back(pair_key(e.first, e.second));
  std::sort(out.begin(), out.end());
  return out;
}

/// Random rating world with planted colluders: nodes rate random targets
/// with quality-dependent scores; colluding pairs bombard each other.
rating::RatingMatrix random_world(std::uint64_t seed, std::size_t n,
                                  std::size_t colluder_pairs) {
  util::Rng rng(seed);
  Scenario s(n);
  for (std::size_t p = 0; p < colluder_pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    // >= 40 mutual positives: organic negatives between partners can then
    // never drag the pair's positive fraction near the T_a boundary, where
    // Basic and Optimized may legitimately disagree.
    s.collude(a, b, 40 + rng.next_below(40));
  }
  // Organic ratings: every node rates a handful of random targets.
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    const std::size_t outgoing = 1 + rng.next_below(8);
    for (std::size_t k = 0; k < outgoing; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      // Colluders provide uniformly poor service: their complement samples
      // are tiny (a handful of ratings), so any positive noise would land
      // them on the wrong side of T_b and make these logical property
      // tests flaky. The simulator tests cover noisy service quality.
      const bool target_is_colluder = ratee < 2 * colluder_pairs;
      const double positive_prob = target_is_colluder ? 0.0 : 0.85;
      const std::size_t burst = 1 + rng.next_below(3);
      for (std::size_t r = 0; r < burst; ++r) {
        s.rate(rater, ratee, 1,
               rng.chance(positive_prob) ? rating::Score::kPositive
                                         : rating::Score::kNegative);
      }
    }
  }
  // Everyone is high-reputed so the detectors examine every row.
  s.set_all_reps(0.2);
  return s.build();
}

TEST(DetectorEquivalenceTest, OptimizedIsSupersetOfBasicOnRandomWorlds) {
  // Paper-literal mode: Formula (2) describes a superset of the Basic
  // (a, b) region. (In joint-complement mode the two methods evaluate the
  // same predicate and are exactly equal — covered below.)
  DetectorConfig c = config();
  c.joint_complement = false;
  BasicCollusionDetector basic(c);
  OptimizedCollusionDetector optimized(c);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto matrix = random_world(seed, 60, 4);
    const auto kb = keys(basic.detect(matrix));
    const auto ko = keys(optimized.detect(matrix));
    EXPECT_TRUE(std::includes(ko.begin(), ko.end(), kb.begin(), kb.end()))
        << "seed " << seed << ": Basic found a pair Optimized missed";
  }
}

TEST(DetectorEquivalenceTest, IdenticalOnCollusionWorkloads) {
  // On the structured workloads of the paper's evaluation the two methods
  // agree exactly (Sec. V-B: "Unoptimized and Optimized generate the same
  // results in collusion detection").
  const DetectorConfig c = config();
  BasicCollusionDetector basic(c);
  OptimizedCollusionDetector optimized(c);
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto matrix = random_world(seed, 80, 6);
    EXPECT_EQ(keys(basic.detect(matrix)), keys(optimized.detect(matrix)))
        << "seed " << seed;
  }
}

TEST(DetectorEquivalenceTest, BothFindAllPlantedPairs) {
  const DetectorConfig c = config();
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    const auto matrix = random_world(seed, 100, 5);
    const auto rb = BasicCollusionDetector(c).detect(matrix);
    const auto ro = OptimizedCollusionDetector(c).detect(matrix);
    for (std::size_t p = 0; p < 5; ++p) {
      const auto a = static_cast<rating::NodeId>(2 * p);
      const auto b = static_cast<rating::NodeId>(2 * p + 1);
      EXPECT_TRUE(rb.contains(a, b)) << "basic seed " << seed << " pair " << p;
      EXPECT_TRUE(ro.contains(a, b))
          << "optimized seed " << seed << " pair " << p;
    }
  }
}

TEST(DetectorEquivalenceTest, OptimizedCostAsymptoticallySmaller) {
  const DetectorConfig c = config();
  // Growing n with everything high-reputed: Basic is O(m n^2) because each
  // triggered pair costs a row scan; Optimized is O(m n). Compare scan
  // growth between two sizes.
  const auto m1 = random_world(7, 60, 6);
  const auto m2 = random_world(7, 240, 6);
  const auto b1 = BasicCollusionDetector(c).detect(m1).cost;
  const auto b2 = BasicCollusionDetector(c).detect(m2).cost;
  const auto o1 = OptimizedCollusionDetector(c).detect(m1).cost;
  const auto o2 = OptimizedCollusionDetector(c).detect(m2).cost;

  EXPECT_GT(b1.total(), o1.total());
  EXPECT_GT(b2.total(), o2.total());
  // Optimized scan growth is ~(n2/n1)^2 only because m also grows with n
  // here (all rows live): scans ~ m*n. Check it stays near 16x while the
  // advantage over Basic persists at scale.
  const double opt_growth = static_cast<double>(o2.total()) /
                            static_cast<double>(o1.total());
  EXPECT_LT(opt_growth, 20.0);
  EXPECT_GT(static_cast<double>(b2.total()) / static_cast<double>(o2.total()),
            static_cast<double>(b1.total()) /
                static_cast<double>(o1.total()) * 0.8);
}

TEST(DetectorEquivalenceTest, ThresholdTighteningMonotonic) {
  // Raising T_a (or lowering T_b) can only shrink the detected set.
  const auto matrix = random_world(3, 80, 6);
  DetectorConfig loose = config();
  loose.positive_fraction_min = 0.7;
  loose.complement_fraction_max = 0.3;
  DetectorConfig tight = config();
  tight.positive_fraction_min = 0.95;
  tight.complement_fraction_max = 0.1;
  const auto kl = keys(BasicCollusionDetector(loose).detect(matrix));
  const auto kt = keys(BasicCollusionDetector(tight).detect(matrix));
  EXPECT_TRUE(std::includes(kl.begin(), kl.end(), kt.begin(), kt.end()));
}

}  // namespace
}  // namespace p2prep::core
